//! AVX2/FMA/F16C register-tile kernels (x86_64).
//!
//! `NR = 8` maps one tile row onto exactly one 256-bit vector (8 × f32 /
//! 8 × i32) — the whole `MR × NR` accumulator lives in four `ymm`
//! registers per dtype. Every function here is `unsafe` because it is
//! compiled with `#[target_feature]`; callers in [`super`] check
//! `is_x86_feature_detected!` first (see `simd_available`).

use core::arch::x86_64::*;

use utensor::F16;

use crate::blocked::{MR, NR};

/// f32 tile: `acc[r] += a[p*MR+r] * b[p*NR..]` for `p` in `0..kc`.
///
/// Deliberately *not* fused: separate `vmulps` + `vaddps` performs the
/// same two IEEE roundings per element as the scalar `acc += a * b`,
/// making every lane bit-identical to the scalar tile.
///
/// # Safety
/// Requires AVX2; `pa.len() >= kc * MR`, `pb.len() >= kc * NR`.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn tile_f32(acc: &mut [[f32; NR]; MR], pa: &[f32], pb: &[f32], kc: usize) {
    let mut v = [_mm256_setzero_ps(); MR];
    for (vr, row) in v.iter_mut().zip(acc.iter()) {
        *vr = _mm256_loadu_ps(row.as_ptr());
    }
    for p in 0..kc {
        let vb = _mm256_loadu_ps(pb.as_ptr().add(p * NR));
        for (r, vr) in v.iter_mut().enumerate() {
            let va = _mm256_set1_ps(*pa.get_unchecked(p * MR + r));
            *vr = _mm256_add_ps(*vr, _mm256_mul_ps(va, vb));
        }
    }
    for (row, vr) in acc.iter_mut().zip(v.iter()) {
        _mm256_storeu_ps(row.as_mut_ptr(), *vr);
    }
}

/// F16 tile with per-MAC [`F16::mul_add`] semantics: widen to f32
/// (exact), one f32 FMA (`vfmadd`), then round-to-nearest-even back to
/// binary16 (`vcvtps2ph`). Bit-identical to the software path for all
/// finite values and infinities; NaN payloads may differ (both quiet).
///
/// # Safety
/// Requires AVX2+FMA+F16C; `pa.len() >= kc * MR`, `pb.len() >= kc * NR`.
#[target_feature(enable = "avx2", enable = "fma", enable = "f16c")]
pub(super) unsafe fn tile_f16(acc: &mut [[F16; NR]; MR], pa: &[F16], pb: &[F16], kc: usize) {
    const RN: i32 = _MM_FROUND_TO_NEAREST_INT;
    // Sound: F16 is #[repr(transparent)] over u16.
    let mut v = [_mm256_setzero_ps(); MR];
    for (vr, row) in v.iter_mut().zip(acc.iter()) {
        *vr = _mm256_cvtph_ps(_mm_loadu_si128(row.as_ptr() as *const __m128i));
    }
    for p in 0..kc {
        let vb = _mm256_cvtph_ps(_mm_loadu_si128(pb.as_ptr().add(p * NR) as *const __m128i));
        for (r, vr) in v.iter_mut().enumerate() {
            let va = _mm256_set1_ps(pa.get_unchecked(p * MR + r).to_f32());
            let fused = _mm256_fmadd_ps(va, vb, *vr);
            // Round to binary16 and widen back, so the running sum holds
            // exactly the value the scalar F16 accumulator would.
            *vr = _mm256_cvtph_ps(_mm256_cvtps_ph::<RN>(fused));
        }
    }
    for (row, vr) in acc.iter_mut().zip(v.iter()) {
        _mm_storeu_si128(row.as_mut_ptr() as *mut __m128i, _mm256_cvtps_ph::<RN>(*vr));
    }
}

/// QUInt8 tile: exact `i16 × i16 → i32` multiply-accumulate. Products of
/// zero-point-subtracted operands fit in 17 bits and a `KC`-panel sums at
/// most 256 of them, so the `i32` lanes cannot overflow; integer
/// arithmetic makes the result unconditionally bit-identical to scalar.
///
/// # Safety
/// Requires AVX2; `pa.len() >= kc * MR`, `pb.len() >= kc * NR`.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn tile_i16(acc: &mut [[i32; NR]; MR], pa: &[i16], pb: &[i16], kc: usize) {
    let mut v = [_mm256_setzero_si256(); MR];
    for (vr, row) in v.iter_mut().zip(acc.iter()) {
        *vr = _mm256_loadu_si256(row.as_ptr() as *const __m256i);
    }
    for p in 0..kc {
        let vb16 = _mm_loadu_si128(pb.as_ptr().add(p * NR) as *const __m128i);
        let vb = _mm256_cvtepi16_epi32(vb16);
        for (r, vr) in v.iter_mut().enumerate() {
            let a = *pa.get_unchecked(p * MR + r) as i32;
            if a == 0 {
                // Padded edge rows multiply by zero; skipping the exact
                // no-op matches the scalar kernel's fast path.
                continue;
            }
            let va = _mm256_set1_epi32(a);
            *vr = _mm256_add_epi32(*vr, _mm256_mullo_epi32(va, vb));
        }
    }
    for (row, vr) in acc.iter_mut().zip(v.iter()) {
        _mm256_storeu_si256(row.as_mut_ptr() as *mut __m256i, *vr);
    }
}
