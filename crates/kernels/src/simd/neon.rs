//! NEON register-tile kernels (aarch64).
//!
//! `NR = 8` maps one tile row onto two 128-bit vectors (2 × 4 f32 /
//! 2 × 4 i32). Advanced SIMD is architecturally mandatory on AArch64,
//! so these paths need no runtime detection — only the compile-time
//! arch gate in [`super`].
//!
//! The F16 tile has **no** NEON implementation: reproducing the software
//! `F16::mul_add` contract (f32 FMA, then round-to-nearest-even
//! narrowing per MAC) needs FEAT_FP16 conversion sequences that this
//! repository cannot compile-test; `super::tile_f16` reports
//! "unhandled" on aarch64 and the scalar tile runs instead.

use core::arch::aarch64::*;

use crate::blocked::{MR, NR};

/// f32 tile, separate multiply-then-add (`fmul` + `fadd`, never fused)
/// so every lane is bit-identical to the scalar `acc += a * b` loop.
///
/// # Safety
/// `pa.len() >= kc * MR`, `pb.len() >= kc * NR`.
pub(super) unsafe fn tile_f32(acc: &mut [[f32; NR]; MR], pa: &[f32], pb: &[f32], kc: usize) {
    let mut lo = [vdupq_n_f32(0.0); MR];
    let mut hi = [vdupq_n_f32(0.0); MR];
    for r in 0..MR {
        lo[r] = vld1q_f32(acc[r].as_ptr());
        hi[r] = vld1q_f32(acc[r].as_ptr().add(4));
    }
    for p in 0..kc {
        let b0 = vld1q_f32(pb.as_ptr().add(p * NR));
        let b1 = vld1q_f32(pb.as_ptr().add(p * NR + 4));
        for r in 0..MR {
            let va = vdupq_n_f32(*pa.get_unchecked(p * MR + r));
            lo[r] = vaddq_f32(lo[r], vmulq_f32(va, b0));
            hi[r] = vaddq_f32(hi[r], vmulq_f32(va, b1));
        }
    }
    for r in 0..MR {
        vst1q_f32(acc[r].as_mut_ptr(), lo[r]);
        vst1q_f32(acc[r].as_mut_ptr().add(4), hi[r]);
    }
}

/// QUInt8 tile: `smlal` widening multiply-accumulate — exact
/// `i16 × i16 → i32`, unconditionally bit-identical to scalar.
///
/// # Safety
/// `pa.len() >= kc * MR`, `pb.len() >= kc * NR`.
pub(super) unsafe fn tile_i16(acc: &mut [[i32; NR]; MR], pa: &[i16], pb: &[i16], kc: usize) {
    let mut lo = [vdupq_n_s32(0); MR];
    let mut hi = [vdupq_n_s32(0); MR];
    for r in 0..MR {
        lo[r] = vld1q_s32(acc[r].as_ptr());
        hi[r] = vld1q_s32(acc[r].as_ptr().add(4));
    }
    for p in 0..kc {
        let vb = vld1q_s16(pb.as_ptr().add(p * NR));
        let b0 = vget_low_s16(vb);
        let b1 = vget_high_s16(vb);
        for r in 0..MR {
            let a = *pa.get_unchecked(p * MR + r);
            if a == 0 {
                // Padded edge rows multiply by zero; skipping the exact
                // no-op matches the scalar kernel's fast path.
                continue;
            }
            let va = vdup_n_s16(a);
            lo[r] = vmlal_s16(lo[r], va, b0);
            hi[r] = vmlal_s16(hi[r], va, b1);
        }
    }
    for r in 0..MR {
        vst1q_s32(acc[r].as_mut_ptr(), lo[r]);
        vst1q_s32(acc[r].as_mut_ptr().add(4), hi[r]);
    }
}
