//! Fully-connected (inner product) layers.
//!
//! As the paper notes (§2.1), an FC layer is a convolution whose filter
//! covers the whole input and whose output-channel count equals the number
//! of output neurons. The implementation flattens the input and runs the
//! GEMM directly: `weights [out × in] × input [in × n_batch]`.
//!
//! Channel-wise distribution slices the weight rows (output neurons),
//! exactly like convolution filters.

use utensor::{DType, QuantParams, Shape, Tensor, TensorError};

use crate::gemm::{gemm_f16_into, gemm_f32_into, gemm_quint8_into};

/// Fully-connected layer: `input` (any shape with `n` as dim 0) ×
/// `weights [out_features, in_features]` → `[n, out_features, 1, 1]`.
///
/// `in_features` must equal the input's per-batch element count. Dtype and
/// quantization rules match [`crate::conv2d`].
pub fn fully_connected(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&[f32]>,
    relu: bool,
    out_params: Option<QuantParams>,
) -> Result<Tensor, TensorError> {
    if weights.dtype() != input.dtype() {
        return Err(TensorError::DTypeMismatch {
            expected: input.dtype(),
            found: weights.dtype(),
        });
    }
    let ws = weights.shape();
    if ws.rank() != 2 {
        return Err(TensorError::BadConcat(format!(
            "fc weights must be rank-2 [out, in], got {ws}"
        )));
    }
    let (out_f, in_f) = (ws.dim(0), ws.dim(1));
    let n = if input.shape().rank() >= 1 {
        input.shape().dim(0)
    } else {
        1
    };
    let per_batch = input.numel() / n.max(1);
    if per_batch != in_f || input.numel() != n * in_f {
        return Err(TensorError::ShapeMismatch {
            expected: Shape::new(vec![n, in_f]),
            found: input.shape().clone(),
        });
    }
    if let Some(bias) = bias {
        if bias.len() != out_f {
            return Err(TensorError::LengthMismatch {
                shape: Shape::new(vec![out_f]),
                len: bias.len(),
            });
        }
    }
    let out_shape = Shape::nchw(n, out_f, 1, 1);

    // GEMM scratch (the blocked path's pack buffers, the quantized
    // accumulator) comes from the per-thread arena.
    let mut arena = crate::arena::take_thread_arena();
    let result = match input.dtype() {
        DType::F32 => {
            if out_params.is_some() {
                return Err(TensorError::BadQuantParams(
                    "out_params given for a float FC".into(),
                ));
            }
            let w = weights.as_f32()?;
            let x = input.as_f32()?;
            let mut out = vec![0.0f32; n * out_f];
            for b in 0..n {
                let c = &mut out[b * out_f..(b + 1) * out_f];
                let xb = &x[b * in_f..(b + 1) * in_f];
                if crate::blocked::blocked_kernels_enabled() {
                    crate::blocked::gemm_f32_blocked(
                        c, out_f, in_f, 1, w, xb, bias, relu, &mut arena,
                    );
                } else {
                    gemm_f32_into(c, out_f, in_f, 1, w, xb, bias, relu);
                }
            }
            Tensor::from_f32(out_shape, out)
        }
        DType::F16 => {
            if out_params.is_some() {
                return Err(TensorError::BadQuantParams(
                    "out_params given for a float FC".into(),
                ));
            }
            let w = weights.as_f16()?;
            let x = input.as_f16()?;
            let mut out = vec![utensor::F16::ZERO; n * out_f];
            for b in 0..n {
                let c = &mut out[b * out_f..(b + 1) * out_f];
                let xb = &x[b * in_f..(b + 1) * in_f];
                if crate::blocked::blocked_kernels_enabled() {
                    crate::blocked::gemm_f16_blocked(
                        c, out_f, in_f, 1, w, xb, bias, relu, &mut arena,
                    );
                } else {
                    gemm_f16_into(c, out_f, in_f, 1, w, xb, bias, relu);
                }
            }
            Tensor::new(out_shape, utensor::TensorData::F16(out))
        }
        DType::QUInt8 => {
            let out_params = out_params.ok_or_else(|| {
                TensorError::BadQuantParams("QUInt8 FC needs output quantization params".into())
            })?;
            let (w, w_p) = weights.as_quint8()?;
            let (x, x_p) = input.as_quint8()?;
            let mut out = vec![0u8; n * out_f];
            let mut res: Result<(), TensorError> = Ok(());
            for b in 0..n {
                let c = &mut out[b * out_f..(b + 1) * out_f];
                let xb = &x[b * in_f..(b + 1) * in_f];
                let r = if crate::blocked::blocked_kernels_enabled() {
                    crate::blocked::gemm_quint8_blocked(
                        c, out_f, in_f, 1, w, w_p, xb, x_p, bias, out_params, relu, &mut arena,
                    )
                } else {
                    gemm_quint8_into(
                        c,
                        out_f,
                        in_f,
                        1,
                        w,
                        w_p,
                        xb,
                        x_p,
                        bias,
                        out_params,
                        relu,
                        &mut arena.acc_i32,
                    )
                };
                if let Err(e) = r {
                    res = Err(e);
                    break;
                }
            }
            res.and_then(|()| Tensor::from_quantized(out_shape, out, out_params))
        }
    };
    crate::arena::restore_thread_arena(arena);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(i: usize) -> f32 {
        (((i * 2654435761) % 997) as f32 - 498.0) / 498.0
    }

    #[test]
    fn matches_manual_dot_product() {
        let input = Tensor::from_f32(Shape::nchw(1, 3, 1, 1), vec![1.0, 2.0, 3.0]).unwrap();
        let weights =
            Tensor::from_f32(Shape::new(vec![2, 3]), vec![1.0, 0.0, 0.0, 0.5, 0.5, 0.5]).unwrap();
        let out = fully_connected(&input, &weights, Some(&[10.0, -10.0]), false, None).unwrap();
        assert_eq!(out.shape().dims(), &[1, 2, 1, 1]);
        assert_eq!(out.as_f32().unwrap(), &[11.0, -7.0]);
    }

    #[test]
    fn accepts_conv_shaped_input() {
        // FC over a [1, 2, 2, 2] feature map = dot with 8 flattened values.
        let input =
            Tensor::from_f32(Shape::nchw(1, 2, 2, 2), (0..8).map(|i| i as f32).collect()).unwrap();
        let weights = Tensor::from_f32(Shape::new(vec![1, 8]), vec![1.0; 8]).unwrap();
        let out = fully_connected(&input, &weights, None, false, None).unwrap();
        assert_eq!(out.as_f32().unwrap(), &[28.0]);
    }

    #[test]
    fn row_split_merge_equals_whole_fc() {
        // μLayer invariant for FC layers: splitting output neurons.
        let input =
            Tensor::from_f32(Shape::nchw(1, 10, 1, 1), (0..10).map(pseudo).collect()).unwrap();
        let weights = Tensor::from_f32(
            Shape::new(vec![6, 10]),
            (0..60).map(|i| pseudo(i + 7)).collect(),
        )
        .unwrap();
        let bias: Vec<f32> = (0..6).map(|i| pseudo(i + 100)).collect();
        let whole = fully_connected(&input, &weights, Some(&bias), true, None).unwrap();
        let w_lo = weights.slice_axis(0, 0, 2).unwrap();
        let w_hi = weights.slice_axis(0, 2, 6).unwrap();
        let lo = fully_connected(&input, &w_lo, Some(&bias[..2]), true, None).unwrap();
        let hi = fully_connected(&input, &w_hi, Some(&bias[2..]), true, None).unwrap();
        let merged = Tensor::concat_axis(1, &[&lo, &hi]).unwrap();
        assert!(merged.bit_equal(&whole));
    }

    #[test]
    fn quint8_fc_tracks_f32() {
        let xs: Vec<f32> = (0..16).map(pseudo).collect();
        let ws: Vec<f32> = (0..64).map(|i| pseudo(i + 3)).collect();
        let input = Tensor::from_f32(Shape::nchw(1, 16, 1, 1), xs.clone()).unwrap();
        let weights = Tensor::from_f32(Shape::new(vec![4, 16]), ws.clone()).unwrap();
        let f_out = fully_connected(&input, &weights, None, false, None).unwrap();
        let qp = QuantParams::from_range(-1.0, 1.0).unwrap();
        let q_in = input.cast(DType::QUInt8, Some(qp)).unwrap();
        let q_w = weights.cast(DType::QUInt8, Some(qp)).unwrap();
        let out_p = QuantParams::from_data(f_out.as_f32().unwrap()).unwrap();
        let q_out = fully_connected(&q_in, &q_w, None, false, Some(out_p)).unwrap();
        assert!(q_out.max_abs_diff(&f_out) < 0.15);
    }

    #[test]
    fn batch_rows_independent() {
        let input =
            Tensor::from_f32(Shape::nchw(2, 3, 1, 1), (0..6).map(|i| i as f32).collect()).unwrap();
        let weights = Tensor::from_f32(Shape::new(vec![2, 3]), vec![1.0; 6]).unwrap();
        let out = fully_connected(&input, &weights, None, false, None).unwrap();
        assert_eq!(out.shape().dims(), &[2, 2, 1, 1]);
        assert_eq!(out.as_f32().unwrap(), &[3.0, 3.0, 12.0, 12.0]);
    }

    #[test]
    fn shape_errors() {
        let input = Tensor::from_f32(Shape::nchw(1, 4, 1, 1), vec![0.0; 4]).unwrap();
        let bad_rank = Tensor::from_f32(Shape::new(vec![2, 2, 1]), vec![0.0; 4]).unwrap();
        assert!(fully_connected(&input, &bad_rank, None, false, None).is_err());
        let wrong_in = Tensor::from_f32(Shape::new(vec![2, 5]), vec![0.0; 10]).unwrap();
        assert!(fully_connected(&input, &wrong_in, None, false, None).is_err());
        let weights = Tensor::from_f32(Shape::new(vec![2, 4]), vec![0.0; 8]).unwrap();
        assert!(fully_connected(&input, &weights, Some(&[0.0; 3]), false, None).is_err());
    }
}
