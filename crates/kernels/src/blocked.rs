//! Cache-blocked, packed GEMM micro-kernels.
//!
//! The naive GEMMs in [`crate::gemm`] stream the whole `B` matrix from
//! memory once per row of `A` — fine as a numerics oracle, hostile to real
//! caches. These kernels implement the standard GotoBLAS/gemmlowp
//! structure the paper's backends (ACL, gemmlowp) use on device:
//!
//! - `K` is cut into panels of [`KC`] so one packed `A`-panel and one
//!   packed `B`-panel fit in cache together;
//! - within a panel, `A` is packed into `MR`-row interleaved micro-panels
//!   and `B` into `NR`-column micro-panels, so the inner loop reads both
//!   operands contiguously;
//! - an `MR × NR` register-tile accumulator takes one multiply-add per
//!   operand pair before anything is written back.
//!
//! Pack buffers come from a [`ScratchArena`], so steady-state execution
//! does not allocate.
//!
//! ## Determinism and equivalence
//!
//! For **QUInt8**, products and sums live in `i32`; integer addition is
//! associative, so the blocked kernel is **bit-identical** to
//! [`crate::gemm::gemm_quint8`] for every shape — blocking, packing, and
//! output-channel splits cannot perturb a single bit.
//!
//! For **f32/F16**, each output element accumulates its `K` products in
//! ascending `p` order *within* a panel and panel sums are then added in
//! ascending panel order. That association depends only on [`KC`] — a
//! compile-time constant — never on the `m`/`n` tiling or on how many
//! worker threads split the output rows. Results are therefore
//! deterministic and thread-count-independent, and ULP-close (identical
//! when `k <= KC`) to the naive kernels.
//!
//! The register-tile inner loops optionally dispatch to arch-gated SIMD
//! implementations ([`crate::simd`], selected per thread via
//! [`crate::dispatch::set_kernel_path`]). Those tiles are bit-identical
//! to the scalar tiles here — same operations, same order — so the path
//! choice never changes results, only speed.
//!
//! ## Opting in
//!
//! The classic entry points ([`crate::conv2d`], [`crate::fully_connected`])
//! keep the naive loops by default so golden vectors and the simulated
//! co-execution stay byte-stable. The real-execution backend
//! (`crates/exec`) calls [`set_blocked_kernels`] on each worker thread;
//! the flag is thread-local, so enabling it on a pool never changes the
//! numerics of other threads.

use std::cell::Cell;

use utensor::quant::requantize;
use utensor::{FixedPointMultiplier, QuantParams, TensorError, F16};

use crate::arena::ScratchArena;

/// `K`-panel size: accumulation association is fixed by this constant.
pub const KC: usize = 256;
/// Register-tile rows (output channels per micro-kernel).
pub const MR: usize = 4;
/// Register-tile columns (output positions per micro-kernel).
pub const NR: usize = 8;

thread_local! {
    static BLOCKED_ENABLED: Cell<bool> = const { Cell::new(false) };
}

/// Routes this thread's `conv2d`/`fully_connected` GEMMs through the
/// blocked kernels (`true`) or the naive reference loops (`false`,
/// the default). Returns the previous setting.
pub fn set_blocked_kernels(on: bool) -> bool {
    BLOCKED_ENABLED.with(|f| f.replace(on))
}

/// Whether this thread currently routes GEMMs through the blocked kernels.
pub fn blocked_kernels_enabled() -> bool {
    BLOCKED_ENABLED.with(|f| f.get())
}

/// Packs the `B` panel rows `p0..p0+kc` into `NR`-column micro-panels
/// (zero-padded on the right edge).
fn pack_b<T: Copy>(pb: &mut Vec<T>, b: &[T], n: usize, p0: usize, kc: usize, zero: T) {
    let n_tiles = n.div_ceil(NR);
    pb.clear();
    pb.resize(n_tiles * kc * NR, zero);
    for jt in 0..n_tiles {
        let j0 = jt * NR;
        let jw = NR.min(n - j0);
        let panel = &mut pb[jt * kc * NR..(jt + 1) * kc * NR];
        for p in 0..kc {
            let src = &b[(p0 + p) * n + j0..(p0 + p) * n + j0 + jw];
            panel[p * NR..p * NR + jw].copy_from_slice(src);
        }
    }
}

/// Packs the `A` panel columns `p0..p0+kc` into `MR`-row interleaved
/// micro-panels (zero-padded on the bottom edge).
fn pack_a<T: Copy>(pa: &mut Vec<T>, a: &[T], m: usize, k: usize, p0: usize, kc: usize, zero: T) {
    let m_tiles = m.div_ceil(MR);
    pa.clear();
    pa.resize(m_tiles * kc * MR, zero);
    for it in 0..m_tiles {
        let i0 = it * MR;
        let iw = MR.min(m - i0);
        let panel = &mut pa[it * kc * MR..(it + 1) * kc * MR];
        for r in 0..iw {
            let row = &a[(i0 + r) * k + p0..(i0 + r) * k + p0 + kc];
            for (p, &v) in row.iter().enumerate() {
                panel[p * MR + r] = v;
            }
        }
    }
}

/// Blocked [`crate::gemm::gemm_f32`] writing into a caller-provided
/// `m*n` buffer. Same contract; ULP-close results (identical association
/// when `k <= KC`).
#[allow(clippy::too_many_arguments)]
pub fn gemm_f32_blocked(
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    relu: bool,
    arena: &mut ScratchArena,
) {
    assert_eq!(a.len(), m * k, "gemm_f32_blocked: A length");
    assert_eq!(b.len(), k * n, "gemm_f32_blocked: B length");
    assert_eq!(c.len(), m * n, "gemm_f32_blocked: C length");
    if let Some(bias) = bias {
        assert_eq!(bias.len(), m, "gemm_f32_blocked: bias length");
    }
    c.iter_mut().for_each(|v| *v = 0.0);
    let simd = crate::dispatch::active_kernel_path() == crate::dispatch::KernelPath::Simd;
    let (m_tiles, n_tiles) = (m.div_ceil(MR), n.div_ceil(NR));
    let mut p0 = 0;
    while p0 < k {
        let kc = KC.min(k - p0);
        pack_b(&mut arena.pack_b_f32, b, n, p0, kc, 0.0f32);
        pack_a(&mut arena.pack_a_f32, a, m, k, p0, kc, 0.0f32);
        for it in 0..m_tiles {
            let i0 = it * MR;
            let iw = MR.min(m - i0);
            let pa_panel = &arena.pack_a_f32[it * kc * MR..(it + 1) * kc * MR];
            for jt in 0..n_tiles {
                let j0 = jt * NR;
                let jw = NR.min(n - j0);
                let pb_panel = &arena.pack_b_f32[jt * kc * NR..(jt + 1) * kc * NR];
                let mut acc = [[0.0f32; NR]; MR];
                if !(simd && crate::simd::tile_f32(&mut acc, pa_panel, pb_panel, kc)) {
                    for p in 0..kc {
                        let avals = &pa_panel[p * MR..(p + 1) * MR];
                        let bvals = &pb_panel[p * NR..(p + 1) * NR];
                        for (r, &ar) in avals.iter().enumerate() {
                            for (x, &bv) in bvals.iter().enumerate() {
                                acc[r][x] += ar * bv;
                            }
                        }
                    }
                }
                for r in 0..iw {
                    let row = &mut c[(i0 + r) * n + j0..(i0 + r) * n + j0 + jw];
                    for (cv, &av) in row.iter_mut().zip(acc[r].iter()) {
                        *cv += av;
                    }
                }
            }
        }
        p0 += kc;
    }
    for i in 0..m {
        let row = &mut c[i * n..(i + 1) * n];
        if let Some(bias) = bias {
            for cv in row.iter_mut() {
                *cv += bias[i];
            }
        }
        if relu {
            for cv in row.iter_mut() {
                if *cv < 0.0 {
                    *cv = 0.0;
                }
            }
        }
    }
}

/// Blocked [`crate::gemm::gemm_f16`] writing into a caller-provided
/// `m*n` buffer. Every MAC rounds to binary16 via a fused multiply-add,
/// like the naive kernel.
#[allow(clippy::too_many_arguments)]
pub fn gemm_f16_blocked(
    c: &mut [F16],
    m: usize,
    k: usize,
    n: usize,
    a: &[F16],
    b: &[F16],
    bias: Option<&[f32]>,
    relu: bool,
    arena: &mut ScratchArena,
) {
    assert_eq!(a.len(), m * k, "gemm_f16_blocked: A length");
    assert_eq!(b.len(), k * n, "gemm_f16_blocked: B length");
    assert_eq!(c.len(), m * n, "gemm_f16_blocked: C length");
    if let Some(bias) = bias {
        assert_eq!(bias.len(), m, "gemm_f16_blocked: bias length");
    }
    c.iter_mut().for_each(|v| *v = F16::ZERO);
    let simd = crate::dispatch::active_kernel_path() == crate::dispatch::KernelPath::Simd;
    let (m_tiles, n_tiles) = (m.div_ceil(MR), n.div_ceil(NR));
    let mut p0 = 0;
    while p0 < k {
        let kc = KC.min(k - p0);
        pack_b(&mut arena.pack_b_f16, b, n, p0, kc, F16::ZERO);
        pack_a(&mut arena.pack_a_f16, a, m, k, p0, kc, F16::ZERO);
        for it in 0..m_tiles {
            let i0 = it * MR;
            let iw = MR.min(m - i0);
            let pa_panel = &arena.pack_a_f16[it * kc * MR..(it + 1) * kc * MR];
            for jt in 0..n_tiles {
                let j0 = jt * NR;
                let jw = NR.min(n - j0);
                let pb_panel = &arena.pack_b_f16[jt * kc * NR..(jt + 1) * kc * NR];
                let mut acc = [[F16::ZERO; NR]; MR];
                if !(simd && crate::simd::tile_f16(&mut acc, pa_panel, pb_panel, kc)) {
                    for p in 0..kc {
                        let avals = &pa_panel[p * MR..(p + 1) * MR];
                        let bvals = &pb_panel[p * NR..(p + 1) * NR];
                        for (r, &ar) in avals.iter().enumerate() {
                            for (x, &bv) in bvals.iter().enumerate() {
                                acc[r][x] = ar.mul_add(bv, acc[r][x]);
                            }
                        }
                    }
                }
                for r in 0..iw {
                    let row = &mut c[(i0 + r) * n + j0..(i0 + r) * n + j0 + jw];
                    for (cv, &av) in row.iter_mut().zip(acc[r].iter()) {
                        *cv += av;
                    }
                }
            }
        }
        p0 += kc;
    }
    for i in 0..m {
        let row = &mut c[i * n..(i + 1) * n];
        if let Some(bias) = bias {
            let hb = F16::from_f32(bias[i]);
            for cv in row.iter_mut() {
                *cv += hb;
            }
        }
        if relu {
            for cv in row.iter_mut() {
                if *cv < F16::ZERO {
                    *cv = F16::ZERO;
                }
            }
        }
    }
}

/// Blocked [`crate::gemm::gemm_quint8`] writing into a caller-provided
/// `m*n` buffer. **Bit-identical** to the naive kernel for every shape:
/// all accumulation happens in `i32`, where addition is associative.
///
/// Operands are packed zero-point-subtracted into `i16` (the gemmlowp
/// trick: `u8 - zero_point` always fits in `i16`, and `i16 × i16`
/// products accumulate exactly in `i32`).
#[allow(clippy::too_many_arguments)]
pub fn gemm_quint8_blocked(
    c: &mut [u8],
    m: usize,
    k: usize,
    n: usize,
    a: &[u8],
    a_params: QuantParams,
    b: &[u8],
    b_params: QuantParams,
    bias: Option<&[f32]>,
    out_params: QuantParams,
    relu: bool,
    arena: &mut ScratchArena,
) -> Result<(), TensorError> {
    assert_eq!(a.len(), m * k, "gemm_quint8_blocked: A length");
    assert_eq!(b.len(), k * n, "gemm_quint8_blocked: B length");
    assert_eq!(c.len(), m * n, "gemm_quint8_blocked: C length");
    if let Some(bias) = bias {
        assert_eq!(bias.len(), m, "gemm_quint8_blocked: bias length");
    }
    let acc_scale = a_params.scale as f64 * b_params.scale as f64;
    if acc_scale <= 0.0 || !acc_scale.is_finite() {
        return Err(TensorError::BadQuantParams(format!(
            "accumulator scale {acc_scale} invalid"
        )));
    }
    let multiplier = FixedPointMultiplier::from_real(acc_scale / out_params.scale as f64)?;
    let a_zp = a_params.zero_point as i16;
    let b_zp = b_params.zero_point as i16;
    let out_zp = out_params.zero_point;

    let acc = &mut arena.acc_i32;
    acc.clear();
    acc.resize(m * n, 0);
    let simd = crate::dispatch::active_kernel_path() == crate::dispatch::KernelPath::Simd;
    let (m_tiles, n_tiles) = (m.div_ceil(MR), n.div_ceil(NR));
    let mut p0 = 0;
    while p0 < k {
        let kc = KC.min(k - p0);
        // Pack with the zero point pre-subtracted, so padded lanes (value
        // 0) contribute nothing to the i32 accumulators.
        pack_b_sub(&mut arena.pack_b_i16, b, n, p0, kc, b_zp);
        pack_a_sub(&mut arena.pack_a_i16, a, m, k, p0, kc, a_zp);
        for it in 0..m_tiles {
            let i0 = it * MR;
            let iw = MR.min(m - i0);
            let pa_panel = &arena.pack_a_i16[it * kc * MR..(it + 1) * kc * MR];
            for jt in 0..n_tiles {
                let j0 = jt * NR;
                let jw = NR.min(n - j0);
                let pb_panel = &arena.pack_b_i16[jt * kc * NR..(jt + 1) * kc * NR];
                let mut tile = [[0i32; NR]; MR];
                if !(simd && crate::simd::tile_i16(&mut tile, pa_panel, pb_panel, kc)) {
                    for p in 0..kc {
                        let avals = &pa_panel[p * MR..(p + 1) * MR];
                        let bvals = &pb_panel[p * NR..(p + 1) * NR];
                        for (r, &ar) in avals.iter().enumerate() {
                            let ar = ar as i32;
                            if ar == 0 {
                                continue;
                            }
                            for (x, &bv) in bvals.iter().enumerate() {
                                tile[r][x] += ar * bv as i32;
                            }
                        }
                    }
                }
                for r in 0..iw {
                    let row = &mut acc[(i0 + r) * n + j0..(i0 + r) * n + j0 + jw];
                    for (av, &tv) in row.iter_mut().zip(tile[r].iter()) {
                        *av += tv;
                    }
                }
            }
        }
        p0 += kc;
    }
    for i in 0..m {
        let qb = bias.map_or(0, |b| (b[i] as f64 / acc_scale).round() as i32);
        let acc_row = &acc[i * n..(i + 1) * n];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (cv, &av) in c_row.iter_mut().zip(acc_row) {
            let mut q = requantize(av + qb, &multiplier, out_zp);
            if relu && q < out_zp {
                q = out_zp;
            }
            *cv = q;
        }
    }
    Ok(())
}

/// [`pack_b`] with the zero point subtracted into `i16` lanes.
fn pack_b_sub(pb: &mut Vec<i16>, b: &[u8], n: usize, p0: usize, kc: usize, zp: i16) {
    let n_tiles = n.div_ceil(NR);
    pb.clear();
    pb.resize(n_tiles * kc * NR, 0);
    for jt in 0..n_tiles {
        let j0 = jt * NR;
        let jw = NR.min(n - j0);
        let panel = &mut pb[jt * kc * NR..(jt + 1) * kc * NR];
        for p in 0..kc {
            let src = &b[(p0 + p) * n + j0..(p0 + p) * n + j0 + jw];
            for (dst, &v) in panel[p * NR..p * NR + jw].iter_mut().zip(src) {
                *dst = v as i16 - zp;
            }
        }
    }
}

/// [`pack_a`] with the zero point subtracted into `i16` lanes.
fn pack_a_sub(pa: &mut Vec<i16>, a: &[u8], m: usize, k: usize, p0: usize, kc: usize, zp: i16) {
    let m_tiles = m.div_ceil(MR);
    pa.clear();
    pa.resize(m_tiles * kc * MR, 0);
    for it in 0..m_tiles {
        let i0 = it * MR;
        let iw = MR.min(m - i0);
        let panel = &mut pa[it * kc * MR..(it + 1) * kc * MR];
        for r in 0..iw {
            let row = &a[(i0 + r) * k + p0..(i0 + r) * k + p0 + kc];
            for (p, &v) in row.iter().enumerate() {
                panel[p * MR + r] = v as i16 - zp;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm_f16, gemm_f32, gemm_quint8};

    fn pseudo(i: usize) -> f32 {
        (((i * 2654435761) % 997) as f32 - 498.0) / 498.0
    }

    #[test]
    fn f32_blocked_matches_naive_small() {
        // k <= KC: one panel, identical accumulation order, bit-equal.
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (4, 8, 8), (5, 9, 11), (17, 32, 13)] {
            let a: Vec<f32> = (0..m * k).map(pseudo).collect();
            let b: Vec<f32> = (0..k * n).map(|i| pseudo(i + 31)).collect();
            let bias: Vec<f32> = (0..m).map(|i| pseudo(i + 77)).collect();
            let want = gemm_f32(m, k, n, &a, &b, Some(&bias), true);
            let mut got = vec![0.0f32; m * n];
            let mut arena = ScratchArena::new();
            gemm_f32_blocked(&mut got, m, k, n, &a, &b, Some(&bias), true, &mut arena);
            assert_eq!(got, want, "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn f32_blocked_multi_panel_is_ulp_close() {
        // k > KC: panel sums re-associate; results stay ULP-close.
        let (m, k, n) = (3, KC * 2 + 17, 5);
        let a: Vec<f32> = (0..m * k).map(pseudo).collect();
        let b: Vec<f32> = (0..k * n).map(|i| pseudo(i + 13)).collect();
        let want = gemm_f32(m, k, n, &a, &b, None, false);
        let mut got = vec![0.0f32; m * n];
        let mut arena = ScratchArena::new();
        gemm_f32_blocked(&mut got, m, k, n, &a, &b, None, false, &mut arena);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-4 * (1.0 + w.abs()), "got {g}, want {w}");
        }
    }

    #[test]
    fn f16_blocked_matches_naive_small() {
        let (m, k, n) = (6, 40, 9);
        let a: Vec<F16> = (0..m * k).map(|i| F16::from_f32(pseudo(i))).collect();
        let b: Vec<F16> = (0..k * n).map(|i| F16::from_f32(pseudo(i + 5))).collect();
        let bias: Vec<f32> = (0..m).map(|i| pseudo(i + 50)).collect();
        let want = gemm_f16(m, k, n, &a, &b, Some(&bias), false);
        let mut got = vec![F16::ZERO; m * n];
        let mut arena = ScratchArena::new();
        gemm_f16_blocked(&mut got, m, k, n, &a, &b, Some(&bias), false, &mut arena);
        assert_eq!(got, want);
    }

    #[test]
    fn quint8_blocked_bit_identical_even_multi_panel() {
        let (m, k, n) = (5, KC + 33, 7);
        let a: Vec<u8> = (0..m * k).map(|i| (i * 37 % 251) as u8).collect();
        let b: Vec<u8> = (0..k * n).map(|i| (i * 91 % 253) as u8).collect();
        let a_p = QuantParams::from_range(-1.0, 1.0).unwrap();
        let b_p = QuantParams::from_range(-2.0, 2.0).unwrap();
        let out_p = QuantParams::from_range(-40.0, 40.0).unwrap();
        let bias: Vec<f32> = (0..m).map(|i| pseudo(i + 9)).collect();
        let want = gemm_quint8(m, k, n, &a, a_p, &b, b_p, Some(&bias), out_p, true).unwrap();
        let mut got = vec![0u8; m * n];
        let mut arena = ScratchArena::new();
        gemm_quint8_blocked(
            &mut got,
            m,
            k,
            n,
            &a,
            a_p,
            &b,
            b_p,
            Some(&bias),
            out_p,
            true,
            &mut arena,
        )
        .unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn flag_is_thread_local_and_restores() {
        assert!(!blocked_kernels_enabled());
        let prev = set_blocked_kernels(true);
        assert!(!prev);
        assert!(blocked_kernels_enabled());
        std::thread::spawn(|| assert!(!blocked_kernels_enabled()))
            .join()
            .unwrap();
        set_blocked_kernels(false);
        assert!(!blocked_kernels_enabled());
    }
}
