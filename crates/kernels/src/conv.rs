//! 2-D convolution (standard and depthwise) over [`Tensor`]s.
//!
//! The deployment path lowers convolution to im2col + GEMM per batch
//! element, matching how ACL/gemmlowp execute it on the paper's SoCs. A
//! naive direct convolution ([`conv2d_naive_f32`]) serves as the
//! independent oracle for the test suites.
//!
//! Channel-wise workload distribution (§3.2) does not need special kernel
//! support: the executor slices the *filter* tensor along output channels
//! (axis 0) and calls the same [`conv2d`] on each part.

use utensor::{DType, QuantParams, Shape, Tensor, TensorError, F16};

use crate::gemm::{gemm_f16_into, gemm_f32_into, gemm_quint8_into};
use crate::im2col::im2col_into;
use crate::out_dim;

/// Geometry and fusion options of a convolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Symmetric zero padding in both spatial dimensions.
    pub pad: usize,
    /// Fused ReLU on the output.
    pub relu: bool,
}

impl Conv2dParams {
    /// A unit-stride, unpadded convolution without ReLU.
    pub fn unit() -> Conv2dParams {
        Conv2dParams {
            stride: 1,
            pad: 0,
            relu: false,
        }
    }
}

pub(crate) fn conv_output_shape(
    input: &Shape,
    filters: &Shape,
    p: &Conv2dParams,
) -> Result<Shape, TensorError> {
    if input.rank() != 4 || filters.rank() != 4 {
        return Err(TensorError::BadConcat(format!(
            "conv2d expects rank-4 input/filters, got {input} and {filters}"
        )));
    }
    if input.c() != filters.dim(1) {
        return Err(TensorError::ShapeMismatch {
            expected: input.with_dim(1, filters.dim(1)),
            found: input.clone(),
        });
    }
    let oh = out_dim(input.h(), filters.dim(2), p.stride, p.pad);
    let ow = out_dim(input.w(), filters.dim(3), p.stride, p.pad);
    match (oh, ow) {
        (Some(oh), Some(ow)) => Ok(Shape::nchw(input.n(), filters.dim(0), oh, ow)),
        _ => Err(TensorError::BadConcat(format!(
            "conv window {filters} does not fit input {input} with stride {} pad {}",
            p.stride, p.pad
        ))),
    }
}

/// 2-D convolution: `input` NCHW × `filters` OIHW → NCHW.
///
/// `input` and `filters` must share a dtype. For `QUInt8`, `out_params`
/// (the pre-trained output quantization range, §4.2) is required; for the
/// float types it must be `None`. The f32 `bias` has one entry per output
/// channel.
pub fn conv2d(
    input: &Tensor,
    filters: &Tensor,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    out_params: Option<QuantParams>,
) -> Result<Tensor, TensorError> {
    if filters.dtype() != input.dtype() {
        return Err(TensorError::DTypeMismatch {
            expected: input.dtype(),
            found: filters.dtype(),
        });
    }
    // 1×1 stride-1 unpadded convolutions skip the im2col copy on threads
    // that opted into the direct paths; bit-identical (same GEMM, same
    // bytes), so the routing never changes results.
    if crate::dispatch::direct_conv_enabled()
        && crate::pointwise::is_pointwise(filters.shape(), params)
    {
        return crate::pointwise::pointwise_conv2d(input, filters, bias, params, out_params);
    }
    let out_shape = conv_output_shape(input.shape(), filters.shape(), params)?;
    if let Some(bias) = bias {
        if bias.len() != out_shape.c() {
            return Err(TensorError::LengthMismatch {
                shape: Shape::new(vec![out_shape.c()]),
                len: bias.len(),
            });
        }
    }

    let (n, ic, h, w) = (
        input.shape().n(),
        input.shape().c(),
        input.shape().h(),
        input.shape().w(),
    );
    let (oc, kh, kw) = (
        filters.shape().dim(0),
        filters.shape().dim(2),
        filters.shape().dim(3),
    );
    let (oh, ow) = (out_shape.h(), out_shape.w());
    let k = ic * kh * kw;
    let cols = oh * ow;
    let plane = ic * h * w;

    // Patch matrices and the quantized accumulator row come from the
    // per-thread scratch arena: repeated convolutions (one per layer per
    // frame) reuse capacity instead of allocating in the hot loop.
    let mut arena = crate::arena::take_thread_arena();
    let result = match input.dtype() {
        DType::F32 => {
            if out_params.is_some() {
                return Err(TensorError::BadQuantParams(
                    "out_params given for a float convolution".into(),
                ));
            }
            let x = input.as_f32()?;
            let f = filters.as_f32()?;
            let mut out = vec![0.0f32; out_shape.numel()];
            // Move the patch buffer out so the blocked kernel can borrow
            // the arena's pack buffers mutably alongside it.
            let mut patches = std::mem::take(&mut arena.patches_f32);
            for b in 0..n {
                im2col_into(
                    &mut patches,
                    &x[b * plane..(b + 1) * plane],
                    ic,
                    h,
                    w,
                    kh,
                    kw,
                    params.stride,
                    params.pad,
                    0.0f32,
                );
                let c = &mut out[b * oc * cols..(b + 1) * oc * cols];
                if crate::blocked::blocked_kernels_enabled() {
                    crate::blocked::gemm_f32_blocked(
                        c,
                        oc,
                        k,
                        cols,
                        f,
                        &patches,
                        bias,
                        params.relu,
                        &mut arena,
                    );
                } else {
                    gemm_f32_into(c, oc, k, cols, f, &patches, bias, params.relu);
                }
            }
            arena.patches_f32 = patches;
            Tensor::from_f32(out_shape, out)
        }
        DType::F16 => {
            if out_params.is_some() {
                return Err(TensorError::BadQuantParams(
                    "out_params given for a float convolution".into(),
                ));
            }
            let x = input.as_f16()?;
            let f = filters.as_f16()?;
            let mut out: Vec<F16> = vec![F16::ZERO; out_shape.numel()];
            let mut patches = std::mem::take(&mut arena.patches_f16);
            for b in 0..n {
                im2col_into(
                    &mut patches,
                    &x[b * plane..(b + 1) * plane],
                    ic,
                    h,
                    w,
                    kh,
                    kw,
                    params.stride,
                    params.pad,
                    F16::ZERO,
                );
                let c = &mut out[b * oc * cols..(b + 1) * oc * cols];
                if crate::blocked::blocked_kernels_enabled() {
                    crate::blocked::gemm_f16_blocked(
                        c,
                        oc,
                        k,
                        cols,
                        f,
                        &patches,
                        bias,
                        params.relu,
                        &mut arena,
                    );
                } else {
                    gemm_f16_into(c, oc, k, cols, f, &patches, bias, params.relu);
                }
            }
            arena.patches_f16 = patches;
            Tensor::new(out_shape, utensor::TensorData::F16(out))
        }
        DType::QUInt8 => {
            let out_params = out_params.ok_or_else(|| {
                TensorError::BadQuantParams("QUInt8 conv needs output quantization params".into())
            })?;
            let (x, x_p) = input.as_quint8()?;
            let (f, f_p) = filters.as_quint8()?;
            let mut out: Vec<u8> = vec![0u8; out_shape.numel()];
            let mut patches = std::mem::take(&mut arena.patches_u8);
            let mut res: Result<(), TensorError> = Ok(());
            for b in 0..n {
                im2col_into(
                    &mut patches,
                    &x[b * plane..(b + 1) * plane],
                    ic,
                    h,
                    w,
                    kh,
                    kw,
                    params.stride,
                    params.pad,
                    x_p.zero_point,
                );
                let c = &mut out[b * oc * cols..(b + 1) * oc * cols];
                let r = if crate::blocked::blocked_kernels_enabled() {
                    crate::blocked::gemm_quint8_blocked(
                        c,
                        oc,
                        k,
                        cols,
                        f,
                        f_p,
                        &patches,
                        x_p,
                        bias,
                        out_params,
                        params.relu,
                        &mut arena,
                    )
                } else {
                    gemm_quint8_into(
                        c,
                        oc,
                        k,
                        cols,
                        f,
                        f_p,
                        &patches,
                        x_p,
                        bias,
                        out_params,
                        params.relu,
                        &mut arena.acc_i32,
                    )
                };
                if let Err(e) = r {
                    res = Err(e);
                    break;
                }
            }
            arena.patches_u8 = patches;
            res.and_then(|()| Tensor::from_quantized(out_shape, out, out_params))
        }
    };
    crate::arena::restore_thread_arena(arena);
    result
}

/// Naive direct f32 convolution: the independent test oracle.
///
/// Deliberately written as the textbook seven-deep loop with no lowering
/// so that bugs in `im2col`/GEMM cannot hide.
pub fn conv2d_naive_f32(
    input: &Tensor,
    filters: &Tensor,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
) -> Result<Tensor, TensorError> {
    let out_shape = conv_output_shape(input.shape(), filters.shape(), params)?;
    let x = input.as_f32()?;
    let f = filters.as_f32()?;
    let (n, ic, h, w) = (
        input.shape().n(),
        input.shape().c(),
        input.shape().h(),
        input.shape().w(),
    );
    let (oc, kh, kw) = (
        filters.shape().dim(0),
        filters.shape().dim(2),
        filters.shape().dim(3),
    );
    let (oh, ow) = (out_shape.h(), out_shape.w());

    let mut out = vec![0.0f32; out_shape.numel()];
    for b in 0..n {
        for o in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ci in 0..ic {
                        for ky in 0..kh {
                            let iy = (oy * params.stride + ky) as isize - params.pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * params.stride + kx) as isize - params.pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let xi = ((b * ic + ci) * h + iy as usize) * w + ix as usize;
                                let fi = ((o * ic + ci) * kh + ky) * kw + kx;
                                acc += x[xi] * f[fi];
                            }
                        }
                    }
                    if let Some(bias) = bias {
                        acc += bias[o];
                    }
                    if params.relu && acc < 0.0 {
                        acc = 0.0;
                    }
                    out[((b * oc + o) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    Tensor::from_f32(out_shape, out)
}

/// Depthwise 2-D convolution: `input` NCHW × `filters` `[c,1,kh,kw]` →
/// NCHW with the same channel count (MobileNet v1's dw layers).
///
/// For channel-wise distribution the executor slices *both* the input
/// channels and the filters, since each output channel depends only on
/// its own input channel.
pub fn depthwise_conv2d(
    input: &Tensor,
    filters: &Tensor,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    out_params: Option<QuantParams>,
) -> Result<Tensor, TensorError> {
    if filters.dtype() != input.dtype() {
        return Err(TensorError::DTypeMismatch {
            expected: input.dtype(),
            found: filters.dtype(),
        });
    }
    let fs = filters.shape();
    if fs.rank() != 4 || fs.dim(1) != 1 || fs.dim(0) != input.shape().c() {
        return Err(TensorError::BadConcat(format!(
            "depthwise filters must be [c,1,kh,kw] with c = input channels; got {fs} for input {}",
            input.shape()
        )));
    }
    let c = input.shape().c();
    if let Some(bias) = bias {
        if bias.len() != c {
            return Err(TensorError::LengthMismatch {
                shape: Shape::new(vec![c]),
                len: bias.len(),
            });
        }
    }

    // Threads that opted in take the one-pass direct kernel; it is
    // bit-identical to the per-channel im2col path below.
    if crate::dispatch::direct_conv_enabled() {
        return crate::depthwise::depthwise_conv2d_direct(input, filters, bias, params, out_params);
    }

    // Implemented by running a 1-input-channel standard convolution per
    // channel and concatenating: correctness-first, and it reuses the
    // already-tested conv2d path for every dtype.
    let mut parts: Vec<Tensor> = Vec::with_capacity(c);
    for ci in 0..c {
        let xin = input.slice_axis(1, ci, ci + 1)?;
        let fil = filters.slice_axis(0, ci, ci + 1)?;
        let b = bias.map(|b| &b[ci..ci + 1]);
        parts.push(conv2d(&xin, &fil, b, params, out_params)?);
    }
    let refs: Vec<&Tensor> = parts.iter().collect();
    Tensor::concat_axis(1, &refs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor_from(shape: Shape, f: impl Fn(usize) -> f32) -> Tensor {
        let n = shape.numel();
        Tensor::from_f32(shape, (0..n).map(f).collect()).unwrap()
    }

    fn pseudo(i: usize) -> f32 {
        (((i * 2654435761) % 1000) as f32 - 500.0) / 500.0
    }

    #[test]
    fn im2col_gemm_matches_naive() {
        for (ic, oc, h, w, kh, stride, pad) in [
            (1usize, 1usize, 5usize, 5usize, 3usize, 1usize, 0usize),
            (3, 4, 7, 6, 3, 1, 1),
            (2, 5, 9, 9, 5, 2, 2),
            (4, 2, 8, 8, 1, 1, 0),
            (2, 3, 6, 6, 3, 3, 0),
        ] {
            let input = tensor_from(Shape::nchw(2, ic, h, w), pseudo);
            let filters = tensor_from(Shape::oihw(oc, ic, kh, kh), |i| pseudo(i + 77));
            let bias: Vec<f32> = (0..oc).map(|i| pseudo(i + 999)).collect();
            let p = Conv2dParams {
                stride,
                pad,
                relu: false,
            };
            let fast = conv2d(&input, &filters, Some(&bias), &p, None).unwrap();
            let slow = conv2d_naive_f32(&input, &filters, Some(&bias), &p).unwrap();
            assert_eq!(fast.shape(), slow.shape());
            assert!(
                fast.max_abs_diff(&slow) < 1e-4,
                "mismatch for ic={ic} oc={oc} k={kh} s={stride} p={pad}"
            );
        }
    }

    #[test]
    fn relu_fusion_matches_naive() {
        let input = tensor_from(Shape::nchw(1, 2, 5, 5), pseudo);
        let filters = tensor_from(Shape::oihw(3, 2, 3, 3), |i| pseudo(i + 13));
        let p = Conv2dParams {
            stride: 1,
            pad: 1,
            relu: true,
        };
        let fast = conv2d(&input, &filters, None, &p, None).unwrap();
        let slow = conv2d_naive_f32(&input, &filters, None, &p).unwrap();
        assert!(fast.max_abs_diff(&slow) < 1e-4);
        assert!(fast.as_f32().unwrap().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn f16_conv_tracks_f32() {
        let input = tensor_from(Shape::nchw(1, 3, 6, 6), pseudo);
        let filters = tensor_from(Shape::oihw(4, 3, 3, 3), |i| pseudo(i + 5));
        let p = Conv2dParams {
            stride: 1,
            pad: 1,
            relu: false,
        };
        let f32_out = conv2d(&input, &filters, None, &p, None).unwrap();
        let h_in = input.cast(DType::F16, None).unwrap();
        let h_fil = filters.cast(DType::F16, None).unwrap();
        let f16_out = conv2d(&h_in, &h_fil, None, &p, None).unwrap();
        assert_eq!(f16_out.dtype(), DType::F16);
        // 27-term accumulations of O(1) values: a loose but meaningful bound.
        assert!(f16_out.max_abs_diff(&f32_out) < 0.06);
    }

    #[test]
    fn quint8_conv_tracks_f32() {
        let input = tensor_from(Shape::nchw(1, 3, 6, 6), pseudo);
        let filters = tensor_from(Shape::oihw(4, 3, 3, 3), |i| pseudo(i + 5));
        let p = Conv2dParams {
            stride: 1,
            pad: 1,
            relu: false,
        };
        let f32_out = conv2d(&input, &filters, None, &p, None).unwrap();
        let out_range = QuantParams::from_data(f32_out.as_f32().unwrap()).unwrap();
        let q_in = input
            .cast(
                DType::QUInt8,
                Some(QuantParams::from_range(-1.0, 1.0).unwrap()),
            )
            .unwrap();
        let q_fil = filters
            .cast(
                DType::QUInt8,
                Some(QuantParams::from_range(-1.0, 1.0).unwrap()),
            )
            .unwrap();
        let q_out = conv2d(&q_in, &q_fil, None, &p, Some(out_range)).unwrap();
        assert_eq!(q_out.dtype(), DType::QUInt8);
        // 27 accumulations; each input/filter has <= scale/2 error.
        assert!(
            q_out.max_abs_diff(&f32_out) < 0.25,
            "diff = {}",
            q_out.max_abs_diff(&f32_out)
        );
    }

    #[test]
    fn channel_split_merge_equals_whole_conv() {
        // THE μLayer invariant: conv with filters split along output
        // channels, then concatenated, is bit-identical to the whole conv.
        let input = tensor_from(Shape::nchw(1, 3, 8, 8), pseudo);
        let filters = tensor_from(Shape::oihw(8, 3, 3, 3), |i| pseudo(i + 31));
        let bias: Vec<f32> = (0..8).map(|i| pseudo(i + 400)).collect();
        let p = Conv2dParams {
            stride: 1,
            pad: 1,
            relu: true,
        };
        let whole = conv2d(&input, &filters, Some(&bias), &p, None).unwrap();
        for cut in [0usize, 2, 4, 6, 8] {
            let f_lo = filters.slice_axis(0, 0, cut).unwrap();
            let f_hi = filters.slice_axis(0, cut, 8).unwrap();
            let mut parts = Vec::new();
            if cut > 0 {
                parts.push(conv2d(&input, &f_lo, Some(&bias[..cut]), &p, None).unwrap());
            }
            if cut < 8 {
                parts.push(conv2d(&input, &f_hi, Some(&bias[cut..]), &p, None).unwrap());
            }
            let refs: Vec<&Tensor> = parts.iter().collect();
            let merged = Tensor::concat_axis(1, &refs).unwrap();
            assert!(merged.bit_equal(&whole), "cut = {cut}");
        }
    }

    #[test]
    fn channel_split_merge_equals_whole_conv_quint8() {
        let input = tensor_from(Shape::nchw(1, 2, 6, 6), pseudo)
            .cast(
                DType::QUInt8,
                Some(QuantParams::from_range(-1.0, 1.0).unwrap()),
            )
            .unwrap();
        let filters = tensor_from(Shape::oihw(6, 2, 3, 3), |i| pseudo(i + 3))
            .cast(
                DType::QUInt8,
                Some(QuantParams::from_range(-1.0, 1.0).unwrap()),
            )
            .unwrap();
        let out_p = QuantParams::from_range(-4.0, 4.0).unwrap();
        let p = Conv2dParams {
            stride: 1,
            pad: 0,
            relu: false,
        };
        let whole = conv2d(&input, &filters, None, &p, Some(out_p)).unwrap();
        let f_lo = filters.slice_axis(0, 0, 2).unwrap();
        let f_hi = filters.slice_axis(0, 2, 6).unwrap();
        let lo = conv2d(&input, &f_lo, None, &p, Some(out_p)).unwrap();
        let hi = conv2d(&input, &f_hi, None, &p, Some(out_p)).unwrap();
        let merged = Tensor::concat_axis(1, &[&lo, &hi]).unwrap();
        assert!(merged.bit_equal(&whole));
    }

    #[test]
    fn shape_errors() {
        let input = tensor_from(Shape::nchw(1, 3, 5, 5), pseudo);
        // Channel mismatch.
        let bad_filters = tensor_from(Shape::oihw(2, 4, 3, 3), pseudo);
        assert!(conv2d(&input, &bad_filters, None, &Conv2dParams::unit(), None).is_err());
        // Window larger than input.
        let big = tensor_from(Shape::oihw(2, 3, 9, 9), pseudo);
        assert!(conv2d(&input, &big, None, &Conv2dParams::unit(), None).is_err());
        // Bias length.
        let filters = tensor_from(Shape::oihw(2, 3, 3, 3), pseudo);
        assert!(conv2d(
            &input,
            &filters,
            Some(&[0.0; 5]),
            &Conv2dParams::unit(),
            None
        )
        .is_err());
        // dtype mismatch between input and filters.
        let h_fil = filters.cast(DType::F16, None).unwrap();
        assert!(conv2d(&input, &h_fil, None, &Conv2dParams::unit(), None).is_err());
        // QUInt8 without out_params.
        let q_in = input.cast(DType::QUInt8, None).unwrap();
        let q_fil = filters.cast(DType::QUInt8, None).unwrap();
        assert!(conv2d(&q_in, &q_fil, None, &Conv2dParams::unit(), None).is_err());
        // Float with out_params.
        assert!(conv2d(
            &input,
            &filters,
            None,
            &Conv2dParams::unit(),
            Some(QuantParams::default())
        )
        .is_err());
    }

    #[test]
    fn depthwise_matches_per_channel_naive() {
        let c = 4;
        let input = tensor_from(Shape::nchw(1, c, 6, 6), pseudo);
        let filters = tensor_from(Shape::new(vec![c, 1, 3, 3]), |i| pseudo(i + 9));
        let bias: Vec<f32> = (0..c).map(pseudo).collect();
        let p = Conv2dParams {
            stride: 1,
            pad: 1,
            relu: false,
        };
        let out = depthwise_conv2d(&input, &filters, Some(&bias), &p, None).unwrap();
        assert_eq!(out.shape().dims(), &[1, c, 6, 6]);
        // Oracle: each channel is an independent 1-channel conv.
        for ci in 0..c {
            let xin = input.slice_axis(1, ci, ci + 1).unwrap();
            let fil = filters.slice_axis(0, ci, ci + 1).unwrap();
            let want = conv2d_naive_f32(&xin, &fil, Some(&bias[ci..ci + 1]), &p).unwrap();
            let got = out.slice_axis(1, ci, ci + 1).unwrap();
            assert!(got.max_abs_diff(&want) < 1e-5);
        }
    }

    #[test]
    fn depthwise_rejects_bad_filter_shape() {
        let input = tensor_from(Shape::nchw(1, 4, 6, 6), pseudo);
        let filters = tensor_from(Shape::new(vec![4, 2, 3, 3]), pseudo);
        assert!(depthwise_conv2d(&input, &filters, None, &Conv2dParams::unit(), None).is_err());
        let wrong_c = tensor_from(Shape::new(vec![3, 1, 3, 3]), pseudo);
        assert!(depthwise_conv2d(&input, &wrong_c, None, &Conv2dParams::unit(), None).is_err());
    }

    #[test]
    fn batch_dimension_is_independent() {
        // Running batch 2 equals running each batch element separately.
        let input = tensor_from(Shape::nchw(2, 2, 5, 5), pseudo);
        let filters = tensor_from(Shape::oihw(3, 2, 3, 3), |i| pseudo(i + 21));
        let p = Conv2dParams {
            stride: 1,
            pad: 0,
            relu: false,
        };
        let both = conv2d(&input, &filters, None, &p, None).unwrap();
        for b in 0..2 {
            let single = conv2d(
                &input.slice_axis(0, b, b + 1).unwrap(),
                &filters,
                None,
                &p,
                None,
            )
            .unwrap();
            let part = both.slice_axis(0, b, b + 1).unwrap();
            assert!(part.bit_equal(&single), "batch {b}");
        }
    }
}
