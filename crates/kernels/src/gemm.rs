//! General matrix multiplication in the three μLayer data types.
//!
//! Convolutional and fully-connected layers lower to GEMM (§6: the paper
//! uses ACL's GEMM for floats and gemmlowp for QUInt8). All GEMMs compute
//! `C = A × B (+ bias, + ReLU)` where `A` is `m×k` (filters), `B` is `k×n`
//! (im2col patches), `C` is `m×n` (output channels × spatial positions),
//! and the optional bias has one entry per row of `C`.
//!
//! The QUInt8 GEMM follows gemmlowp exactly: subtract zero points, multiply
//! into an `i32` accumulator, add an `i32` bias (the f32 bias pre-scaled by
//! `1 / (scale_a * scale_b)`), then requantize with a fixed-point
//! multiplier `M = scale_a * scale_b / scale_out` and the output zero
//! point. This is the requantization step of §4.1.

use utensor::quant::requantize;
use utensor::{FixedPointMultiplier, QuantParams, TensorError, F16};

/// `C[m×n] = A[m×k] × B[k×n] (+ bias[m]) (then ReLU)`, in f32.
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions (programmer
/// error, not data error).
pub fn gemm_f32(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    relu: bool,
) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    gemm_f32_into(&mut c, m, k, n, a, b, bias, relu);
    c
}

/// [`gemm_f32`] writing into a caller-provided `m*n` buffer (overwritten,
/// not accumulated into).
#[allow(clippy::too_many_arguments)]
pub fn gemm_f32_into(
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    relu: bool,
) {
    assert_eq!(a.len(), m * k, "gemm_f32: A length");
    assert_eq!(b.len(), k * n, "gemm_f32: B length");
    assert_eq!(c.len(), m * n, "gemm_f32: C length");
    if let Some(bias) = bias {
        assert_eq!(bias.len(), m, "gemm_f32: bias length");
    }
    c.iter_mut().for_each(|v| *v = 0.0);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
        if let Some(bias) = bias {
            for cv in c_row.iter_mut() {
                *cv += bias[i];
            }
        }
        if relu {
            for cv in c_row.iter_mut() {
                if *cv < 0.0 {
                    *cv = 0.0;
                }
            }
        }
    }
}

/// `C = A × B (+ bias) (then ReLU)` with every operation rounded to
/// binary16, modeling a GPU computing in OpenCL `half`.
///
/// The bias is given in f32 and narrowed once before accumulation.
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
pub fn gemm_f16(
    m: usize,
    k: usize,
    n: usize,
    a: &[F16],
    b: &[F16],
    bias: Option<&[f32]>,
    relu: bool,
) -> Vec<F16> {
    let mut c = vec![F16::ZERO; m * n];
    gemm_f16_into(&mut c, m, k, n, a, b, bias, relu);
    c
}

/// [`gemm_f16`] writing into a caller-provided `m*n` buffer (overwritten,
/// not accumulated into).
#[allow(clippy::too_many_arguments)]
pub fn gemm_f16_into(
    c: &mut [F16],
    m: usize,
    k: usize,
    n: usize,
    a: &[F16],
    b: &[F16],
    bias: Option<&[f32]>,
    relu: bool,
) {
    assert_eq!(a.len(), m * k, "gemm_f16: A length");
    assert_eq!(b.len(), k * n, "gemm_f16: B length");
    assert_eq!(c.len(), m * n, "gemm_f16: C length");
    if let Some(bias) = bias {
        assert_eq!(bias.len(), m, "gemm_f16: bias length");
    }
    c.iter_mut().for_each(|v| *v = F16::ZERO);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                // One FMA per MAC: product and accumulate round once,
                // like a hardware half FMA.
                *cv = av.mul_add(bv, *cv);
            }
        }
        if let Some(bias) = bias {
            let hb = F16::from_f32(bias[i]);
            for cv in c_row.iter_mut() {
                *cv += hb;
            }
        }
        if relu {
            for cv in c_row.iter_mut() {
                if *cv < F16::ZERO {
                    *cv = F16::ZERO;
                }
            }
        }
    }
}

/// Quantized `C = A × B` with gemmlowp semantics.
///
/// `a` is quantized with `a_params`, `b` with `b_params`; the f32 `bias`
/// is scaled into the `i32` accumulator domain; the result is requantized
/// to `out_params`. With `relu`, outputs clamp at the output zero point
/// (quantized ReLU).
///
/// Returns an error if the requantization multiplier cannot be built from
/// the given scales.
///
/// # Panics
///
/// Panics if slice lengths disagree with the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_quint8(
    m: usize,
    k: usize,
    n: usize,
    a: &[u8],
    a_params: QuantParams,
    b: &[u8],
    b_params: QuantParams,
    bias: Option<&[f32]>,
    out_params: QuantParams,
    relu: bool,
) -> Result<Vec<u8>, TensorError> {
    let mut c = vec![0u8; m * n];
    // Accumulator row from the per-thread arena: repeated calls (one per
    // layer per frame on the exec backend) stop allocating once warm.
    let mut arena = crate::arena::take_thread_arena();
    let mut acc = std::mem::take(&mut arena.acc_i32);
    let res = gemm_quint8_into(
        &mut c, m, k, n, a, a_params, b, b_params, bias, out_params, relu, &mut acc,
    );
    arena.acc_i32 = acc;
    crate::arena::restore_thread_arena(arena);
    res.map(|()| c)
}

/// [`gemm_quint8`] writing into a caller-provided `m*n` buffer, with the
/// `i32` accumulator row borrowed from the caller (typically a
/// [`crate::arena::ScratchArena`] slot).
#[allow(clippy::too_many_arguments)]
pub fn gemm_quint8_into(
    c: &mut [u8],
    m: usize,
    k: usize,
    n: usize,
    a: &[u8],
    a_params: QuantParams,
    b: &[u8],
    b_params: QuantParams,
    bias: Option<&[f32]>,
    out_params: QuantParams,
    relu: bool,
    acc: &mut Vec<i32>,
) -> Result<(), TensorError> {
    assert_eq!(a.len(), m * k, "gemm_quint8: A length");
    assert_eq!(b.len(), k * n, "gemm_quint8: B length");
    assert_eq!(c.len(), m * n, "gemm_quint8: C length");
    if let Some(bias) = bias {
        assert_eq!(bias.len(), m, "gemm_quint8: bias length");
    }
    let acc_scale = a_params.scale as f64 * b_params.scale as f64;
    if acc_scale <= 0.0 || !acc_scale.is_finite() {
        return Err(TensorError::BadQuantParams(format!(
            "accumulator scale {acc_scale} invalid"
        )));
    }
    let multiplier = FixedPointMultiplier::from_real(acc_scale / out_params.scale as f64)?;
    let a_zp = a_params.zero_point as i32;
    let b_zp = b_params.zero_point as i32;
    let out_zp = out_params.zero_point;

    acc.clear();
    acc.resize(n, 0);
    for i in 0..m {
        acc.iter_mut().for_each(|v| *v = 0);
        let a_row = &a[i * k..(i + 1) * k];
        for (p, &av) in a_row.iter().enumerate() {
            let a_val = av as i32 - a_zp;
            if a_val == 0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (accv, &bv) in acc.iter_mut().zip(b_row) {
                *accv += a_val * (bv as i32 - b_zp);
            }
        }
        if let Some(bias) = bias {
            let qb = (bias[i] as f64 / acc_scale).round() as i32;
            for accv in acc.iter_mut() {
                *accv += qb;
            }
        }
        let c_row = &mut c[i * n..(i + 1) * n];
        for (cv, &accv) in c_row.iter_mut().zip(acc.iter()) {
            let mut q = requantize(accv, &multiplier, out_zp);
            if relu && q < out_zp {
                q = out_zp;
            }
            *cv = q;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// f64 oracle for all GEMM variants.
    fn gemm_ref(
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        b: &[f64],
        bias: Option<&[f64]>,
    ) -> Vec<f64> {
        let mut c = vec![0.0f64; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a[i * k + p] * b[p * n + j];
                }
                if let Some(bias) = bias {
                    s += bias[i];
                }
                c[i * n + j] = s;
            }
        }
        c
    }

    fn test_data(m: usize, k: usize, n: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 37 % 17) as f32 - 8.0) / 8.0)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 23 % 19) as f32 - 9.0) / 9.0)
            .collect();
        let bias: Vec<f32> = (0..m).map(|i| (i as f32 - 2.0) / 4.0).collect();
        (a, b, bias)
    }

    #[test]
    fn f32_matches_reference() {
        let (m, k, n) = (5, 7, 6);
        let (a, b, bias) = test_data(m, k, n);
        let got = gemm_f32(m, k, n, &a, &b, Some(&bias), false);
        let a64: Vec<f64> = a.iter().map(|&v| v as f64).collect();
        let b64: Vec<f64> = b.iter().map(|&v| v as f64).collect();
        let bias64: Vec<f64> = bias.iter().map(|&v| v as f64).collect();
        let want = gemm_ref(m, k, n, &a64, &b64, Some(&bias64));
        for (g, w) in got.iter().zip(&want) {
            assert!((*g as f64 - w).abs() < 1e-5, "got {g}, want {w}");
        }
    }

    #[test]
    fn f32_relu_clamps() {
        let a = vec![1.0f32, -1.0];
        let b = vec![2.0f32];
        let c = gemm_f32(2, 1, 1, &a, &b, None, true);
        assert_eq!(c, vec![2.0, 0.0]);
    }

    #[test]
    fn f32_skips_zero_weights() {
        // Zero-weight fast path must not change results.
        let a = vec![0.0f32, 1.0, 0.0, 2.0];
        let b = vec![3.0f32, 4.0];
        let c = gemm_f32(2, 2, 1, &a, &b, None, false);
        assert_eq!(c, vec![4.0, 8.0]);
    }

    #[test]
    fn f16_close_to_f32_for_small_problems() {
        let (m, k, n) = (4, 9, 5);
        let (a, b, bias) = test_data(m, k, n);
        let ah: Vec<F16> = a.iter().map(|&v| F16::from_f32(v)).collect();
        let bh: Vec<F16> = b.iter().map(|&v| F16::from_f32(v)).collect();
        let got = gemm_f16(m, k, n, &ah, &bh, Some(&bias), false);
        let want = gemm_f32(m, k, n, &a, &b, Some(&bias), false);
        for (g, w) in got.iter().zip(&want) {
            // k=9 accumulations of O(1) values: error stays within a few
            // f16 ulps of the result magnitude.
            assert!(
                (g.to_f32() - w).abs() < 0.02 * (1.0 + w.abs()),
                "got {g}, want {w}"
            );
        }
    }

    #[test]
    fn f16_arithmetic_actually_rounds() {
        // Accumulating 4096 copies of 1.0 in f16 saturates at 2048 because
        // 2048 + 1 rounds back to 2048 — proving we do not accumulate in
        // f32 internally.
        let k = 4096;
        let a = vec![F16::ONE; k];
        let b = vec![F16::ONE; k];
        let got = gemm_f16(1, k, 1, &a, &b, None, false);
        assert_eq!(got[0].to_f32(), 2048.0);
    }

    #[test]
    fn f16_relu_and_bias() {
        let a = vec![F16::ONE, F16::NEG_ONE];
        let b = vec![F16::from_f32(3.0)];
        let got = gemm_f16(2, 1, 1, &a, &b, Some(&[-1.0, -1.0]), true);
        assert_eq!(got[0].to_f32(), 2.0);
        assert_eq!(got[1].to_f32(), 0.0);
    }

    #[test]
    fn quint8_matches_float_within_scale() {
        let (m, k, n) = (4, 8, 5);
        let (a, b, bias) = test_data(m, k, n);
        let a_p = QuantParams::from_range(-1.0, 1.0).unwrap();
        let b_p = QuantParams::from_range(-1.0, 1.0).unwrap();
        let a_q = a_p.quantize_slice(&a);
        let b_q = b_p.quantize_slice(&b);
        // Use the float result to pick a sound output range.
        let want = gemm_f32(m, k, n, &a, &b, Some(&bias), false);
        let lo = want.iter().cloned().fold(f32::MAX, f32::min);
        let hi = want.iter().cloned().fold(f32::MIN, f32::max);
        let out_p = QuantParams::from_range(lo, hi).unwrap();
        let got = gemm_quint8(m, k, n, &a_q, a_p, &b_q, b_p, Some(&bias), out_p, false).unwrap();
        for (g, w) in got.iter().zip(&want) {
            let deq = out_p.dequantize(*g);
            // Error budget: input quantization error propagated through k
            // accumulations plus half an output step.
            let tol = out_p.scale * 0.51 + (a_p.scale + b_p.scale) * k as f32 * 0.5;
            assert!((deq - w).abs() <= tol, "deq {deq}, want {w}, tol {tol}");
        }
    }

    #[test]
    fn quint8_exact_on_grid() {
        // Integers on the quantization grid multiply exactly.
        let a_p = QuantParams::from_range(-8.0, 8.0).unwrap();
        let b_p = QuantParams::from_range(-8.0, 8.0).unwrap();
        let out_p = QuantParams::from_range(-64.0, 64.0).unwrap();
        // Values exactly representable: multiples of the scale.
        let av = [a_p.dequantize(200), a_p.dequantize(100)];
        let bv = [b_p.dequantize(50)];
        let a_q = [200u8, 100];
        let b_q = [50u8];
        let got = gemm_quint8(2, 1, 1, &a_q, a_p, &b_q, b_p, None, out_p, false).unwrap();
        for (g, (a, b)) in got.iter().zip(av.iter().zip(bv.iter().cycle())) {
            let deq = out_p.dequantize(*g);
            let want = a * b;
            assert!(
                (deq - want).abs() <= out_p.scale * 0.51,
                "deq {deq}, want {want}"
            );
        }
    }

    #[test]
    fn quint8_relu_clamps_at_zero_point() {
        let a_p = QuantParams::from_range(-1.0, 1.0).unwrap();
        let b_p = QuantParams::from_range(-1.0, 1.0).unwrap();
        let out_p = QuantParams::from_range(-1.0, 1.0).unwrap();
        let a_q = [a_p.quantize(-1.0), a_p.quantize(1.0)];
        let b_q = [b_p.quantize(1.0)];
        let got = gemm_quint8(2, 1, 1, &a_q, a_p, &b_q, b_p, None, out_p, true).unwrap();
        // First output is -1 before ReLU -> clamps to zero point (real 0).
        assert_eq!(got[0], out_p.zero_point);
        assert!(out_p.dequantize(got[1]) > 0.9);
    }

    #[test]
    fn quint8_saturates_at_rails() {
        let a_p = QuantParams::from_range(-10.0, 10.0).unwrap();
        let b_p = QuantParams::from_range(-10.0, 10.0).unwrap();
        // Deliberately narrow output range.
        let out_p = QuantParams::from_range(-1.0, 1.0).unwrap();
        let a_q = [a_p.quantize(10.0), a_p.quantize(-10.0)];
        let b_q = [b_p.quantize(10.0)];
        let got = gemm_quint8(2, 1, 1, &a_q, a_p, &b_q, b_p, None, out_p, false).unwrap();
        assert_eq!(got[0], 255);
        assert_eq!(got[1], 0);
    }

    #[test]
    fn quint8_bias_lands_in_accumulator_domain() {
        let a_p = QuantParams::from_range(0.0, 2.0).unwrap();
        let b_p = QuantParams::from_range(0.0, 2.0).unwrap();
        let out_p = QuantParams::from_range(0.0, 8.0).unwrap();
        let a_q = [a_p.quantize(1.0)];
        let b_q = [b_p.quantize(2.0)];
        let got = gemm_quint8(1, 1, 1, &a_q, a_p, &b_q, b_p, Some(&[3.0]), out_p, false).unwrap();
        let deq = out_p.dequantize(got[0]);
        assert!((deq - 5.0).abs() < out_p.scale, "deq = {deq}");
    }
}
