//! Direct (im2col-free) depthwise convolution.
//!
//! The generic [`crate::depthwise_conv2d`] runs a 1-input-channel
//! standard convolution per channel: one arena round-trip, one im2col,
//! one GEMM, and one output tensor *per channel*, plus a final concat.
//! Correct, but catastrophically slow for MobileNet's dw layers, whose
//! per-channel GEMM is a degenerate `1 × (kh·kw) × (oh·ow)`.
//!
//! This module computes the whole depthwise output in one pass over the
//! input, with zero intermediate allocation. Each output pixel
//! accumulates its `kh·kw` taps in exactly the order — and with exactly
//! the zero-weight / zero-point short-circuits — of the corresponding
//! naive GEMM over im2col patches:
//!
//! - **f32**: taps in `(ky, kx)` row-major order, skipping zero weights;
//!   padded taps contribute `w * 0.0`, like a zero patch entry.
//! - **F16**: one [`F16::mul_add`] per tap, no skips, padded taps use
//!   [`F16::ZERO`] — the same MAC sequence as [`crate::gemm::gemm_f16_into`].
//! - **QUInt8**: exact `i32` accumulation of zero-point-subtracted
//!   products; padded patch entries equal the input zero point, so their
//!   contribution is exactly zero, like the explicit skip.
//!
//! The result is **bit-identical** to the im2col path for every dtype
//! (for floats: identical to the naive-GEMM dispatch; the blocked
//! dispatch is itself bit-identical to naive at depthwise sizes, where
//! `kh·kw ≤ KC` always holds). The equivalence harness enforces this.

use utensor::quant::requantize;
use utensor::{DType, FixedPointMultiplier, QuantParams, Shape, Tensor, TensorError, F16};

use crate::conv::Conv2dParams;
use crate::out_dim;

/// Validates shapes and computes the output shape of a depthwise conv
/// (`input` NCHW × `filters` `[c,1,kh,kw]`).
fn depthwise_output_shape(
    input: &Shape,
    filters: &Shape,
    p: &Conv2dParams,
) -> Result<Shape, TensorError> {
    if input.rank() != 4 || filters.rank() != 4 || filters.dim(1) != 1 {
        return Err(TensorError::BadConcat(format!(
            "depthwise expects NCHW input and [c,1,kh,kw] filters, got {input} and {filters}"
        )));
    }
    if filters.dim(0) != input.c() {
        return Err(TensorError::BadConcat(format!(
            "depthwise filters {filters} do not match input channels of {input}"
        )));
    }
    let oh = out_dim(input.h(), filters.dim(2), p.stride, p.pad);
    let ow = out_dim(input.w(), filters.dim(3), p.stride, p.pad);
    match (oh, ow) {
        (Some(oh), Some(ow)) => Ok(Shape::nchw(input.n(), input.c(), oh, ow)),
        _ => Err(TensorError::BadConcat(format!(
            "depthwise window {filters} does not fit input {input} with stride {} pad {}",
            p.stride, p.pad
        ))),
    }
}

/// Geometry of one channel plane, shared by the per-dtype loops.
#[derive(Clone, Copy)]
struct PlaneGeom {
    h: usize,
    w: usize,
    oh: usize,
    ow: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
}

impl PlaneGeom {
    /// Input row for output row `oy`, tap `ky`; `None` when padded.
    #[inline]
    fn iy(&self, oy: usize, ky: usize) -> Option<usize> {
        let iy = (oy * self.stride + ky) as isize - self.pad as isize;
        (0..self.h as isize).contains(&iy).then_some(iy as usize)
    }

    /// Input column for output column `ox`, tap `kx`; `None` when padded.
    #[inline]
    fn ix(&self, ox: usize, kx: usize) -> Option<usize> {
        let ix = (ox * self.stride + kx) as isize - self.pad as isize;
        (0..self.w as isize).contains(&ix).then_some(ix as usize)
    }
}

fn dw_plane_f32(
    out: &mut [f32],
    x: &[f32],
    f: &[f32],
    g: &PlaneGeom,
    bias: Option<f32>,
    relu: bool,
) {
    for oy in 0..g.oh {
        for ox in 0..g.ow {
            let mut acc = 0.0f32;
            for ky in 0..g.kh {
                let iy = g.iy(oy, ky);
                for kx in 0..g.kw {
                    let wv = f[ky * g.kw + kx];
                    if wv == 0.0 {
                        continue;
                    }
                    let xv = match (iy, g.ix(ox, kx)) {
                        (Some(iy), Some(ix)) => x[iy * g.w + ix],
                        _ => 0.0,
                    };
                    acc += wv * xv;
                }
            }
            // Guarded like the GEMM epilogue: an unconditional `+ 0.0`
            // would flip a `-0.0` result.
            if let Some(bv) = bias {
                acc += bv;
            }
            if relu && acc < 0.0 {
                acc = 0.0;
            }
            out[oy * g.ow + ox] = acc;
        }
    }
}

fn dw_plane_f16(
    out: &mut [F16],
    x: &[F16],
    f: &[F16],
    g: &PlaneGeom,
    bias: Option<F16>,
    relu: bool,
) {
    for oy in 0..g.oh {
        for ox in 0..g.ow {
            let mut acc = F16::ZERO;
            for ky in 0..g.kh {
                let iy = g.iy(oy, ky);
                for kx in 0..g.kw {
                    let wv = f[ky * g.kw + kx];
                    let xv = match (iy, g.ix(ox, kx)) {
                        (Some(iy), Some(ix)) => x[iy * g.w + ix],
                        _ => F16::ZERO,
                    };
                    acc = wv.mul_add(xv, acc);
                }
            }
            if let Some(bv) = bias {
                acc += bv;
            }
            if relu && acc < F16::ZERO {
                acc = F16::ZERO;
            }
            out[oy * g.ow + ox] = acc;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn dw_plane_quint8(
    out: &mut [u8],
    x: &[u8],
    f: &[u8],
    g: &PlaneGeom,
    f_zp: i32,
    x_zp: i32,
    qbias: i32,
    multiplier: &FixedPointMultiplier,
    out_zp: u8,
    relu: bool,
) {
    for oy in 0..g.oh {
        for ox in 0..g.ow {
            let mut acc = 0i32;
            for ky in 0..g.kh {
                let iy = g.iy(oy, ky);
                for kx in 0..g.kw {
                    let wv = f[ky * g.kw + kx] as i32 - f_zp;
                    if wv == 0 {
                        continue;
                    }
                    let xv = match (iy, g.ix(ox, kx)) {
                        (Some(iy), Some(ix)) => x[iy * g.w + ix] as i32 - x_zp,
                        _ => 0,
                    };
                    acc += wv * xv;
                }
            }
            let mut q = requantize(acc + qbias, multiplier, out_zp);
            if relu && q < out_zp {
                q = out_zp;
            }
            out[oy * g.ow + ox] = q;
        }
    }
}

/// Direct depthwise 2-D convolution: same contract as
/// [`crate::depthwise_conv2d`], computed in one im2col-free pass.
pub fn depthwise_conv2d_direct(
    input: &Tensor,
    filters: &Tensor,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    out_params: Option<QuantParams>,
) -> Result<Tensor, TensorError> {
    if filters.dtype() != input.dtype() {
        return Err(TensorError::DTypeMismatch {
            expected: input.dtype(),
            found: filters.dtype(),
        });
    }
    let out_shape = depthwise_output_shape(input.shape(), filters.shape(), params)?;
    let c = input.shape().c();
    if let Some(bias) = bias {
        if bias.len() != c {
            return Err(TensorError::LengthMismatch {
                shape: Shape::new(vec![c]),
                len: bias.len(),
            });
        }
    }
    let (n, h, w) = (input.shape().n(), input.shape().h(), input.shape().w());
    let (kh, kw) = (filters.shape().dim(2), filters.shape().dim(3));
    let (oh, ow) = (out_shape.h(), out_shape.w());
    let g = PlaneGeom {
        h,
        w,
        oh,
        ow,
        kh,
        kw,
        stride: params.stride,
        pad: params.pad,
    };
    let in_plane = h * w;
    let out_plane = oh * ow;
    let taps = kh * kw;

    match input.dtype() {
        DType::F32 => {
            if out_params.is_some() {
                return Err(TensorError::BadQuantParams(
                    "out_params given for a float convolution".into(),
                ));
            }
            let x = input.as_f32()?;
            let f = filters.as_f32()?;
            let mut out = vec![0.0f32; out_shape.numel()];
            for b in 0..n {
                for ci in 0..c {
                    let xp = &x[(b * c + ci) * in_plane..(b * c + ci + 1) * in_plane];
                    let op = &mut out[(b * c + ci) * out_plane..(b * c + ci + 1) * out_plane];
                    let fp = &f[ci * taps..(ci + 1) * taps];
                    let bv = bias.map(|b| b[ci]);
                    dw_plane_f32(op, xp, fp, &g, bv, params.relu);
                }
            }
            Tensor::from_f32(out_shape, out)
        }
        DType::F16 => {
            if out_params.is_some() {
                return Err(TensorError::BadQuantParams(
                    "out_params given for a float convolution".into(),
                ));
            }
            let x = input.as_f16()?;
            let f = filters.as_f16()?;
            let mut out = vec![F16::ZERO; out_shape.numel()];
            for b in 0..n {
                for ci in 0..c {
                    let xp = &x[(b * c + ci) * in_plane..(b * c + ci + 1) * in_plane];
                    let op = &mut out[(b * c + ci) * out_plane..(b * c + ci + 1) * out_plane];
                    let fp = &f[ci * taps..(ci + 1) * taps];
                    let bv = bias.map(|b| F16::from_f32(b[ci]));
                    dw_plane_f16(op, xp, fp, &g, bv, params.relu);
                }
            }
            Tensor::new(out_shape, utensor::TensorData::F16(out))
        }
        DType::QUInt8 => {
            let out_params = out_params.ok_or_else(|| {
                TensorError::BadQuantParams("QUInt8 conv needs output quantization params".into())
            })?;
            let (x, x_p) = input.as_quint8()?;
            let (f, f_p) = filters.as_quint8()?;
            let acc_scale = f_p.scale as f64 * x_p.scale as f64;
            if acc_scale <= 0.0 || !acc_scale.is_finite() {
                return Err(TensorError::BadQuantParams(format!(
                    "accumulator scale {acc_scale} invalid"
                )));
            }
            let multiplier = FixedPointMultiplier::from_real(acc_scale / out_params.scale as f64)?;
            let mut out = vec![0u8; out_shape.numel()];
            for b in 0..n {
                for ci in 0..c {
                    let xp = &x[(b * c + ci) * in_plane..(b * c + ci + 1) * in_plane];
                    let op = &mut out[(b * c + ci) * out_plane..(b * c + ci + 1) * out_plane];
                    let fp = &f[ci * taps..(ci + 1) * taps];
                    let qb = bias.map_or(0, |b| (b[ci] as f64 / acc_scale).round() as i32);
                    dw_plane_quint8(
                        op,
                        xp,
                        fp,
                        &g,
                        f_p.zero_point as i32,
                        x_p.zero_point as i32,
                        qb,
                        &multiplier,
                        out_params.zero_point,
                        params.relu,
                    );
                }
            }
            Tensor::from_quantized(out_shape, out, out_params)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor_from(shape: Shape, f: impl Fn(usize) -> f32) -> Tensor {
        let n = shape.numel();
        Tensor::from_f32(shape, (0..n).map(f).collect()).unwrap()
    }

    fn pseudo(i: usize) -> f32 {
        (((i * 2654435761) % 1000) as f32 - 500.0) / 500.0
    }

    #[test]
    fn direct_f32_bit_identical_to_im2col_path() {
        for (c, h, w, kk, stride, pad) in [
            (3usize, 6usize, 6usize, 3usize, 1usize, 1usize),
            (1, 5, 7, 3, 2, 0),
            (5, 9, 9, 5, 2, 2),
            (4, 4, 4, 1, 1, 0),
        ] {
            let input = tensor_from(Shape::nchw(2, c, h, w), pseudo);
            let filters = tensor_from(Shape::new(vec![c, 1, kk, kk]), |i| pseudo(i + 17));
            let bias: Vec<f32> = (0..c).map(|i| pseudo(i + 91)).collect();
            let p = Conv2dParams {
                stride,
                pad,
                relu: true,
            };
            let want = crate::depthwise_conv2d(&input, &filters, Some(&bias), &p, None).unwrap();
            let got = depthwise_conv2d_direct(&input, &filters, Some(&bias), &p, None).unwrap();
            assert!(got.bit_equal(&want), "c={c} k={kk} s={stride} p={pad}");
        }
    }

    #[test]
    fn direct_quint8_bit_identical_to_im2col_path() {
        let c = 4;
        let input = tensor_from(Shape::nchw(1, c, 7, 7), pseudo)
            .cast(
                DType::QUInt8,
                Some(QuantParams::from_range(-1.0, 1.0).unwrap()),
            )
            .unwrap();
        let filters = tensor_from(Shape::new(vec![c, 1, 3, 3]), |i| pseudo(i + 7))
            .cast(
                DType::QUInt8,
                Some(QuantParams::from_range(-1.0, 1.0).unwrap()),
            )
            .unwrap();
        let bias: Vec<f32> = (0..c).map(|i| pseudo(i + 201)).collect();
        let out_p = QuantParams::from_range(-4.0, 4.0).unwrap();
        let p = Conv2dParams {
            stride: 2,
            pad: 1,
            relu: true,
        };
        let want = crate::depthwise_conv2d(&input, &filters, Some(&bias), &p, Some(out_p)).unwrap();
        let got = depthwise_conv2d_direct(&input, &filters, Some(&bias), &p, Some(out_p)).unwrap();
        assert!(got.bit_equal(&want));
    }

    #[test]
    fn direct_f16_bit_identical_to_im2col_path() {
        let c = 3;
        let input = tensor_from(Shape::nchw(1, c, 6, 6), pseudo)
            .cast(DType::F16, None)
            .unwrap();
        let filters = tensor_from(Shape::new(vec![c, 1, 3, 3]), |i| pseudo(i + 5))
            .cast(DType::F16, None)
            .unwrap();
        let p = Conv2dParams {
            stride: 1,
            pad: 1,
            relu: false,
        };
        let want = crate::depthwise_conv2d(&input, &filters, None, &p, None).unwrap();
        let got = depthwise_conv2d_direct(&input, &filters, None, &p, None).unwrap();
        assert!(got.bit_equal(&want));
    }

    #[test]
    fn direct_rejects_bad_shapes() {
        let input = tensor_from(Shape::nchw(1, 4, 6, 6), pseudo);
        let not_depthwise = tensor_from(Shape::new(vec![4, 2, 3, 3]), pseudo);
        let p = Conv2dParams::unit();
        assert!(depthwise_conv2d_direct(&input, &not_depthwise, None, &p, None).is_err());
        let wrong_c = tensor_from(Shape::new(vec![3, 1, 3, 3]), pseudo);
        assert!(depthwise_conv2d_direct(&input, &wrong_c, None, &p, None).is_err());
        let filters = tensor_from(Shape::new(vec![4, 1, 3, 3]), pseudo);
        assert!(depthwise_conv2d_direct(&input, &filters, Some(&[0.0; 2]), &p, None).is_err());
        // QUInt8 without out_params.
        let q_in = input.cast(DType::QUInt8, None).unwrap();
        let q_fil = filters.cast(DType::QUInt8, None).unwrap();
        assert!(depthwise_conv2d_direct(&q_in, &q_fil, None, &p, None).is_err());
        // Float with out_params.
        assert!(
            depthwise_conv2d_direct(&input, &filters, None, &p, Some(QuantParams::default()))
                .is_err()
        );
    }
}
