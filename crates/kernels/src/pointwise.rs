//! Direct pointwise (1×1) convolution.
//!
//! For a 1×1 kernel with stride 1 and no padding, the im2col patch
//! matrix *is* the input plane: `im2col` degenerates to an identity
//! copy of `ic × (h·w)` elements. MobileNet spends most of its MACs in
//! exactly these layers, so the copy is pure overhead — this module
//! feeds the input plane to the GEMM directly.
//!
//! Because the *same* GEMM kernel (naive or blocked, per the
//! [`crate::blocked::set_blocked_kernels`] thread flag) runs on the
//! *same* operand bytes, the result is unconditionally **bit-identical**
//! to [`crate::conv2d`] in every dtype and on every kernel path.

use utensor::{DType, QuantParams, Shape, Tensor, TensorError, F16};

use crate::conv::{conv_output_shape, Conv2dParams};
use crate::gemm::{gemm_f16_into, gemm_f32_into, gemm_quint8_into};

/// Whether a convolution is eligible for the direct pointwise path.
pub fn is_pointwise(filters: &Shape, params: &Conv2dParams) -> bool {
    filters.rank() == 4
        && filters.dim(2) == 1
        && filters.dim(3) == 1
        && params.stride == 1
        && params.pad == 0
}

/// Direct 1×1 convolution: same contract as [`crate::conv2d`], without
/// the im2col copy. Errors if the geometry is not pointwise.
pub fn pointwise_conv2d(
    input: &Tensor,
    filters: &Tensor,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    out_params: Option<QuantParams>,
) -> Result<Tensor, TensorError> {
    if !is_pointwise(filters.shape(), params) {
        return Err(TensorError::BadConcat(format!(
            "pointwise_conv2d requires 1x1 stride-1 pad-0 geometry, got {} stride {} pad {}",
            filters.shape(),
            params.stride,
            params.pad
        )));
    }
    if filters.dtype() != input.dtype() {
        return Err(TensorError::DTypeMismatch {
            expected: input.dtype(),
            found: filters.dtype(),
        });
    }
    let out_shape = conv_output_shape(input.shape(), filters.shape(), params)?;
    if let Some(bias) = bias {
        if bias.len() != out_shape.c() {
            return Err(TensorError::LengthMismatch {
                shape: Shape::new(vec![out_shape.c()]),
                len: bias.len(),
            });
        }
    }
    let (n, ic) = (input.shape().n(), input.shape().c());
    let oc = filters.shape().dim(0);
    let cols = out_shape.h() * out_shape.w();
    let plane = ic * cols;

    let mut arena = crate::arena::take_thread_arena();
    let result = match input.dtype() {
        DType::F32 => {
            if out_params.is_some() {
                return Err(TensorError::BadQuantParams(
                    "out_params given for a float convolution".into(),
                ));
            }
            let x = input.as_f32()?;
            let f = filters.as_f32()?;
            let mut out = vec![0.0f32; out_shape.numel()];
            for b in 0..n {
                let xb = &x[b * plane..(b + 1) * plane];
                let c = &mut out[b * oc * cols..(b + 1) * oc * cols];
                if crate::blocked::blocked_kernels_enabled() {
                    crate::blocked::gemm_f32_blocked(
                        c,
                        oc,
                        ic,
                        cols,
                        f,
                        xb,
                        bias,
                        params.relu,
                        &mut arena,
                    );
                } else {
                    gemm_f32_into(c, oc, ic, cols, f, xb, bias, params.relu);
                }
            }
            Tensor::from_f32(out_shape, out)
        }
        DType::F16 => {
            if out_params.is_some() {
                return Err(TensorError::BadQuantParams(
                    "out_params given for a float convolution".into(),
                ));
            }
            let x = input.as_f16()?;
            let f = filters.as_f16()?;
            let mut out = vec![F16::ZERO; out_shape.numel()];
            for b in 0..n {
                let xb = &x[b * plane..(b + 1) * plane];
                let c = &mut out[b * oc * cols..(b + 1) * oc * cols];
                if crate::blocked::blocked_kernels_enabled() {
                    crate::blocked::gemm_f16_blocked(
                        c,
                        oc,
                        ic,
                        cols,
                        f,
                        xb,
                        bias,
                        params.relu,
                        &mut arena,
                    );
                } else {
                    gemm_f16_into(c, oc, ic, cols, f, xb, bias, params.relu);
                }
            }
            Tensor::new(out_shape, utensor::TensorData::F16(out))
        }
        DType::QUInt8 => {
            let out_params = out_params.ok_or_else(|| {
                TensorError::BadQuantParams("QUInt8 conv needs output quantization params".into())
            })?;
            let (x, x_p) = input.as_quint8()?;
            let (f, f_p) = filters.as_quint8()?;
            let mut out = vec![0u8; out_shape.numel()];
            let mut res: Result<(), TensorError> = Ok(());
            for b in 0..n {
                let xb = &x[b * plane..(b + 1) * plane];
                let c = &mut out[b * oc * cols..(b + 1) * oc * cols];
                let r = if crate::blocked::blocked_kernels_enabled() {
                    crate::blocked::gemm_quint8_blocked(
                        c,
                        oc,
                        ic,
                        cols,
                        f,
                        f_p,
                        xb,
                        x_p,
                        bias,
                        out_params,
                        params.relu,
                        &mut arena,
                    )
                } else {
                    gemm_quint8_into(
                        c,
                        oc,
                        ic,
                        cols,
                        f,
                        f_p,
                        xb,
                        x_p,
                        bias,
                        out_params,
                        params.relu,
                        &mut arena.acc_i32,
                    )
                };
                if let Err(e) = r {
                    res = Err(e);
                    break;
                }
            }
            res.and_then(|()| Tensor::from_quantized(out_shape, out, out_params))
        }
    };
    crate::arena::restore_thread_arena(arena);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor_from(shape: Shape, f: impl Fn(usize) -> f32) -> Tensor {
        let n = shape.numel();
        Tensor::from_f32(shape, (0..n).map(f).collect()).unwrap()
    }

    fn pseudo(i: usize) -> f32 {
        (((i * 2654435761) % 1000) as f32 - 500.0) / 500.0
    }

    #[test]
    fn eligibility() {
        let p = Conv2dParams::unit();
        assert!(is_pointwise(&Shape::oihw(8, 4, 1, 1), &p));
        assert!(!is_pointwise(&Shape::oihw(8, 4, 3, 3), &p));
        let strided = Conv2dParams {
            stride: 2,
            pad: 0,
            relu: false,
        };
        assert!(!is_pointwise(&Shape::oihw(8, 4, 1, 1), &strided));
        let padded = Conv2dParams {
            stride: 1,
            pad: 1,
            relu: false,
        };
        assert!(!is_pointwise(&Shape::oihw(8, 4, 1, 1), &padded));
    }

    #[test]
    fn bit_identical_to_conv2d_all_dtypes() {
        let input = tensor_from(Shape::nchw(2, 5, 6, 7), pseudo);
        let filters = tensor_from(Shape::oihw(9, 5, 1, 1), |i| pseudo(i + 3));
        let bias: Vec<f32> = (0..9).map(|i| pseudo(i + 44)).collect();
        let p = Conv2dParams {
            stride: 1,
            pad: 0,
            relu: true,
        };
        // f32
        let want = crate::conv2d(&input, &filters, Some(&bias), &p, None).unwrap();
        let got = pointwise_conv2d(&input, &filters, Some(&bias), &p, None).unwrap();
        assert!(got.bit_equal(&want));
        // F16
        let h_in = input.cast(DType::F16, None).unwrap();
        let h_fil = filters.cast(DType::F16, None).unwrap();
        let want = crate::conv2d(&h_in, &h_fil, Some(&bias), &p, None).unwrap();
        let got = pointwise_conv2d(&h_in, &h_fil, Some(&bias), &p, None).unwrap();
        assert!(got.bit_equal(&want));
        // QUInt8
        let qp = QuantParams::from_range(-1.0, 1.0).unwrap();
        let q_in = input.cast(DType::QUInt8, Some(qp)).unwrap();
        let q_fil = filters.cast(DType::QUInt8, Some(qp)).unwrap();
        let out_p = QuantParams::from_range(-8.0, 8.0).unwrap();
        let want = crate::conv2d(&q_in, &q_fil, Some(&bias), &p, Some(out_p)).unwrap();
        let got = pointwise_conv2d(&q_in, &q_fil, Some(&bias), &p, Some(out_p)).unwrap();
        assert!(got.bit_equal(&want));
    }

    #[test]
    fn bit_identical_on_blocked_path_too() {
        let input = tensor_from(Shape::nchw(1, 8, 9, 9), pseudo);
        let filters = tensor_from(Shape::oihw(6, 8, 1, 1), |i| pseudo(i + 11));
        let p = Conv2dParams::unit();
        let prev = crate::blocked::set_blocked_kernels(true);
        let want = crate::conv2d(&input, &filters, None, &p, None).unwrap();
        let got = pointwise_conv2d(&input, &filters, None, &p, None).unwrap();
        crate::blocked::set_blocked_kernels(prev);
        assert!(got.bit_equal(&want));
    }

    #[test]
    fn rejects_non_pointwise_geometry() {
        let input = tensor_from(Shape::nchw(1, 3, 5, 5), pseudo);
        let filters3 = tensor_from(Shape::oihw(2, 3, 3, 3), pseudo);
        assert!(pointwise_conv2d(&input, &filters3, None, &Conv2dParams::unit(), None).is_err());
    }
}
