//! Per-thread kernel-path dispatch.
//!
//! Like [`crate::blocked::set_blocked_kernels`], every knob here is
//! **thread-local**: the `uexec` worker pools configure each worker once
//! at spawn, and nothing a pool selects can change the numerics of any
//! other thread (in particular the golden-vector / simulation paths,
//! which always run naive scalar kernels).
//!
//! Three layers stack:
//!
//! 1. [`set_blocked_kernels`](crate::blocked::set_blocked_kernels) —
//!    naive loops vs blocked packed GEMM (PR 5);
//! 2. [`set_kernel_path`] — within the blocked GEMM, scalar register
//!    tiles vs arch-gated SIMD tiles ([`crate::simd`]);
//! 3. [`set_direct_conv`] — im2col+GEMM convolution vs the direct
//!    depthwise/pointwise kernels.
//!
//! The resolved path ([`active_kernel_path`]) never yields
//! [`KernelPath::Simd`] on a host without the required CPU features:
//! forcing `Simd` there silently degrades to `Scalar` (callers that want
//! to surface the degradation — e.g. `repro measure` — compare the
//! resolved path against the request and warn).

use std::cell::Cell;

use crate::simd;

/// The resolved inner-kernel implementation a thread is running.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelPath {
    /// Portable scalar register tiles (the PR 5 blocked kernels).
    Scalar,
    /// Arch-gated SIMD register tiles (AVX2 / NEON).
    Simd,
}

impl KernelPath {
    /// Stable lowercase name, used in reports and `BENCH_exec.json`.
    pub fn as_str(&self) -> &'static str {
        match self {
            KernelPath::Scalar => "scalar",
            KernelPath::Simd => "simd",
        }
    }
}

/// A *requested* kernel path, before runtime feature detection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PathChoice {
    /// Use SIMD when the host supports it, scalar otherwise.
    #[default]
    Auto,
    /// Always the scalar tiles, even on SIMD-capable hosts.
    Scalar,
    /// Request SIMD; degrades to scalar when unsupported.
    Simd,
}

impl PathChoice {
    /// Parses `"auto"` / `"scalar"` / `"simd"` (the `--kernel-path`
    /// flag values). Returns `None` for anything else.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(PathChoice::Auto),
            "scalar" => Some(PathChoice::Scalar),
            "simd" => Some(PathChoice::Simd),
            _ => None,
        }
    }

    /// Stable lowercase name (inverse of [`PathChoice::parse`]).
    pub fn as_str(&self) -> &'static str {
        match self {
            PathChoice::Auto => "auto",
            PathChoice::Scalar => "scalar",
            PathChoice::Simd => "simd",
        }
    }

    /// Reads `UKERNELS_KERNEL_PATH` (`auto` | `scalar` | `simd`);
    /// `Auto` when unset or invalid. This is how `ci.sh` forces the
    /// whole test suite through the scalar tiles in its first pass.
    pub fn from_env() -> Self {
        std::env::var("UKERNELS_KERNEL_PATH")
            .ok()
            .and_then(|s| Self::parse(&s))
            .unwrap_or_default()
    }

    /// Resolves this choice against runtime CPU detection — the path a
    /// worker thread configured with this choice will actually run.
    pub fn resolve(self) -> KernelPath {
        match self {
            PathChoice::Scalar => KernelPath::Scalar,
            PathChoice::Auto | PathChoice::Simd => {
                if simd::simd_available() {
                    KernelPath::Simd
                } else {
                    KernelPath::Scalar
                }
            }
        }
    }
}

thread_local! {
    static PATH: Cell<PathChoice> = Cell::new(PathChoice::from_env());
    static DIRECT_CONV: Cell<bool> = const { Cell::new(false) };
}

/// Sets this thread's kernel-path choice; returns the previous one.
pub fn set_kernel_path(choice: PathChoice) -> PathChoice {
    PATH.with(|c| c.replace(choice))
}

/// This thread's requested kernel path (default: `UKERNELS_KERNEL_PATH`
/// env, else `Auto`).
pub fn kernel_path_choice() -> PathChoice {
    PATH.with(|c| c.get())
}

/// Resolves this thread's choice against runtime CPU detection.
pub fn active_kernel_path() -> KernelPath {
    kernel_path_choice().resolve()
}

/// Routes this thread's depthwise and 1×1 convolutions through the
/// direct (im2col-free) kernels. Returns the previous setting.
pub fn set_direct_conv(on: bool) -> bool {
    DIRECT_CONV.with(|c| c.replace(on))
}

/// Whether this thread routes eligible convolutions through the direct
/// kernels (default `false`: the im2col+GEMM deployment path).
pub fn direct_conv_enabled() -> bool {
    DIRECT_CONV.with(|c| c.get())
}

/// Every fast path registered on this host, as `op/dtype/impl` keys.
///
/// The equivalence harness (`tests/equivalence.rs`) fails if any key
/// returned here has no differential test cell, so a new fast path
/// cannot land without pinning itself to the golden scalar reference.
pub fn registered_fast_paths() -> Vec<&'static str> {
    let mut paths = vec![
        "gemm/f32/blocked-scalar",
        "gemm/f16/blocked-scalar",
        "gemm/quint8/blocked-scalar",
        "depthwise/f32/direct",
        "depthwise/f16/direct",
        "depthwise/quint8/direct",
        "pointwise/f32/direct",
        "pointwise/f16/direct",
        "pointwise/quint8/direct",
    ];
    if simd::simd_available() {
        paths.push("gemm/f32/blocked-simd");
        paths.push("gemm/quint8/blocked-simd");
    }
    if simd::simd_f16_available() {
        paths.push("gemm/f16/blocked-simd");
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for choice in [PathChoice::Auto, PathChoice::Scalar, PathChoice::Simd] {
            assert_eq!(PathChoice::parse(choice.as_str()), Some(choice));
        }
        assert_eq!(PathChoice::parse("avx2"), None);
    }

    #[test]
    fn forced_scalar_always_resolves_scalar() {
        let prev = set_kernel_path(PathChoice::Scalar);
        assert_eq!(active_kernel_path(), KernelPath::Scalar);
        set_kernel_path(prev);
    }

    #[test]
    fn simd_resolution_follows_detection() {
        let prev = set_kernel_path(PathChoice::Simd);
        let resolved = active_kernel_path();
        if simd::simd_available() {
            assert_eq!(resolved, KernelPath::Simd);
        } else {
            assert_eq!(resolved, KernelPath::Scalar);
        }
        set_kernel_path(prev);
    }

    #[test]
    fn flags_are_thread_local() {
        let prev_path = set_kernel_path(PathChoice::Scalar);
        let prev_direct = set_direct_conv(true);
        std::thread::spawn(|| {
            assert!(!direct_conv_enabled());
            // Fresh threads re-read the environment default.
            assert_eq!(kernel_path_choice(), PathChoice::from_env());
        })
        .join()
        .unwrap();
        assert!(direct_conv_enabled());
        set_direct_conv(prev_direct);
        set_kernel_path(prev_path);
    }

    #[test]
    fn scalar_gemm_paths_always_registered() {
        let paths = registered_fast_paths();
        for key in [
            "gemm/f32/blocked-scalar",
            "gemm/quint8/blocked-scalar",
            "depthwise/quint8/direct",
            "pointwise/f16/direct",
        ] {
            assert!(paths.contains(&key), "missing {key}");
        }
    }
}
