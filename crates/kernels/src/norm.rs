//! Local Response Normalization (AlexNet-style, across channels).
//!
//! `b[c] = a[c] / (k + alpha/n * sum_{j in window(c)} a[j]^2)^beta`.
//!
//! LRN involves a power function, which mobile GPUs evaluate in special
//! function units at full precision; both float paths therefore compute
//! the normalization in f32 and the F16 path rounds the final result.
//! QUInt8 inputs are dequantized, normalized, and requantized — the same
//! approach TensorFlow Lite takes for ops without integer kernels.

use utensor::{DType, Tensor, TensorError};

/// Parameters of an LRN layer (defaults match AlexNet).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LrnParams {
    /// Window size across channels.
    pub n: usize,
    /// Scaling coefficient.
    pub alpha: f32,
    /// Exponent.
    pub beta: f32,
    /// Additive constant.
    pub k: f32,
}

impl Default for LrnParams {
    fn default() -> Self {
        LrnParams {
            n: 5,
            alpha: 1e-4,
            beta: 0.75,
            k: 2.0,
        }
    }
}

/// Applies across-channel LRN to an NCHW tensor, preserving its dtype.
pub fn lrn(input: &Tensor, params: &LrnParams) -> Result<Tensor, TensorError> {
    let s = input.shape();
    if s.rank() != 4 {
        return Err(TensorError::BadConcat(format!(
            "lrn expects a rank-4 input, got {s}"
        )));
    }
    if params.n == 0 {
        return Err(TensorError::BadConcat("lrn window must be nonzero".into()));
    }
    let (n, c, h, w) = (s.n(), s.c(), s.h(), s.w());
    let x = input.to_f32_vec();
    let mut out = vec![0.0f32; x.len()];
    let half = params.n / 2;
    let hw = h * w;
    for b in 0..n {
        for ci in 0..c {
            let lo = ci.saturating_sub(half);
            let hi = (ci + half).min(c - 1);
            for pos in 0..hw {
                let mut sum_sq = 0.0f32;
                for cj in lo..=hi {
                    let v = x[(b * c + cj) * hw + pos];
                    sum_sq += v * v;
                }
                let denom = (params.k + params.alpha / params.n as f32 * sum_sq).powf(params.beta);
                let i = (b * c + ci) * hw + pos;
                out[i] = x[i] / denom;
            }
        }
    }
    let f32_out = Tensor::from_f32(s.clone(), out)?;
    match input.dtype() {
        DType::F32 => Ok(f32_out),
        DType::F16 => f32_out.cast(DType::F16, None),
        DType::QUInt8 => f32_out.cast(DType::QUInt8, input.quant_params()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utensor::Shape;

    #[test]
    fn uniform_input_scales_uniformly() {
        // With all values equal, every output is input / same denominator.
        let c = 5;
        let input = Tensor::from_f32(Shape::nchw(1, c, 1, 1), vec![2.0; c]).unwrap();
        let p = LrnParams {
            n: 5,
            alpha: 1.0,
            beta: 1.0,
            k: 1.0,
        };
        let out = lrn(&input, &p).unwrap();
        let v = out.as_f32().unwrap();
        // Middle channel sees the full window (5 channels of 2.0):
        // denom = 1 + 1/5 * 5*4 = 5 -> 2/5.
        assert!((v[2] - 0.4).abs() < 1e-6);
        // Edge channel sees 3 channels: denom = 1 + 1/5*12 = 3.4.
        assert!((v[0] - 2.0 / 3.4).abs() < 1e-6);
    }

    #[test]
    fn identity_when_alpha_zero() {
        let input =
            Tensor::from_f32(Shape::nchw(1, 3, 2, 2), (0..12).map(|i| i as f32).collect()).unwrap();
        let p = LrnParams {
            n: 5,
            alpha: 0.0,
            beta: 0.75,
            k: 1.0,
        };
        let out = lrn(&input, &p).unwrap();
        assert!(out.max_abs_diff(&input) < 1e-6);
    }

    #[test]
    fn dtype_preserved() {
        let input = Tensor::from_f32(Shape::nchw(1, 4, 2, 2), vec![0.5; 16]).unwrap();
        let h = input.cast(DType::F16, None).unwrap();
        let out = lrn(&h, &LrnParams::default()).unwrap();
        assert_eq!(out.dtype(), DType::F16);
        let q = input.cast(DType::QUInt8, None).unwrap();
        let out = lrn(&q, &LrnParams::default()).unwrap();
        assert_eq!(out.dtype(), DType::QUInt8);
    }

    #[test]
    fn rejects_bad_inputs() {
        let input = Tensor::from_f32(Shape::new(vec![4]), vec![0.0; 4]).unwrap();
        assert!(lrn(&input, &LrnParams::default()).is_err());
        let input4 = Tensor::from_f32(Shape::nchw(1, 1, 2, 2), vec![0.0; 4]).unwrap();
        let bad = LrnParams {
            n: 0,
            ..LrnParams::default()
        };
        assert!(lrn(&input4, &bad).is_err());
    }

    #[test]
    fn channel_window_clamps_at_edges() {
        // A large window on few channels must not index out of bounds and
        // must normalize against all channels.
        let input = Tensor::from_f32(Shape::nchw(1, 2, 1, 1), vec![1.0, 3.0]).unwrap();
        let p = LrnParams {
            n: 11,
            alpha: 1.0,
            beta: 1.0,
            k: 0.0,
        };
        let out = lrn(&input, &p).unwrap();
        let v = out.as_f32().unwrap();
        // denom = (1/11) * (1 + 9) = 10/11 for both channels.
        assert!((v[0] - 1.0 / (10.0 / 11.0)).abs() < 1e-5);
        assert!((v[1] - 3.0 / (10.0 / 11.0)).abs() < 1e-5);
    }
}
