//! Golden-vector regression tests for the QUInt8 kernels.
//!
//! Each test runs a kernel on a fixed, seed-generated input and pins the
//! exact (bit-for-bit) dequantized output against a committed vector
//! under `tests/golden/`. QUInt8 kernels are pure integer math followed
//! by a deterministic requantization, so `GoldenMode::Exact` is the
//! right comparison: any refactor that changes a single output byte
//! fails loudly here instead of silently shifting accuracy downstream.
//!
//! To regenerate after an *intended* numeric change:
//!
//! ```text
//! TESTKIT_BLESS=1 cargo test -q -p ukernels --test golden
//! ```
//!
//! then review and commit the diff under `tests/golden/`.

use testkit::golden::{check_f32, GoldenMode};
use testkit::Rng;
use ukernels::{
    conv2d, depthwise_conv2d, fully_connected, pool2d, Conv2dParams, PoolKind, PoolParams,
};
use utensor::{DType, QuantParams, Shape, Tensor};

/// Absolute path of a committed golden vector.
macro_rules! golden_path {
    ($name:literal) => {
        concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/", $name)
    };
}

/// Deterministic QUInt8 tensor: f32 values drawn uniformly from
/// `[lo, hi]` with a fixed seed, then quantized over that same range.
fn quint8_tensor(shape: Shape, seed: u64, lo: f32, hi: f32) -> Tensor {
    let mut rng = Rng::seed_from_u64(seed);
    let mut data = vec![0.0f32; shape.numel()];
    rng.fill_f32(&mut data, lo, hi);
    let qp = QuantParams::from_range(lo, hi).expect("range");
    Tensor::from_f32(shape, data)
        .expect("sized buffer")
        .cast(DType::QUInt8, Some(qp))
        .expect("cast")
}

#[test]
fn quint8_conv2d_matches_golden() {
    let input = quint8_tensor(Shape::nchw(1, 3, 8, 8), 0xC0_0001, -1.0, 1.0);
    let filters = quint8_tensor(Shape::oihw(4, 3, 3, 3), 0xC0_0002, -0.5, 0.5);
    let bias: Vec<f32> = (0..4).map(|i| (i as f32 - 1.5) / 8.0).collect();
    let params = Conv2dParams {
        stride: 1,
        pad: 1,
        relu: false,
    };
    let out_qp = QuantParams::from_range(-6.0, 6.0).unwrap();
    let out = conv2d(&input, &filters, Some(&bias), &params, Some(out_qp)).unwrap();
    assert_eq!(out.shape().dims(), &[1, 4, 8, 8]);
    check_f32(
        golden_path!("quint8_conv2d.txt"),
        &out.to_f32_vec(),
        GoldenMode::Exact,
    );
}

#[test]
fn quint8_conv2d_strided_relu_matches_golden() {
    // A second conv geometry: stride 2, no padding, with the fused ReLU —
    // exercises the requantize-then-clamp path.
    let input = quint8_tensor(Shape::nchw(1, 2, 9, 9), 0xC0_0003, -1.0, 1.0);
    let filters = quint8_tensor(Shape::oihw(3, 2, 3, 3), 0xC0_0004, -0.5, 0.5);
    let params = Conv2dParams {
        stride: 2,
        pad: 0,
        relu: true,
    };
    let out_qp = QuantParams::from_range(0.0, 4.0).unwrap();
    let out = conv2d(&input, &filters, None, &params, Some(out_qp)).unwrap();
    assert_eq!(out.shape().dims(), &[1, 3, 4, 4]);
    check_f32(
        golden_path!("quint8_conv2d_strided_relu.txt"),
        &out.to_f32_vec(),
        GoldenMode::Exact,
    );
}

#[test]
fn quint8_depthwise_conv2d_matches_golden() {
    let input = quint8_tensor(Shape::nchw(1, 4, 6, 6), 0xC0_0005, -1.0, 1.0);
    let filters = quint8_tensor(Shape::oihw(4, 1, 3, 3), 0xC0_0006, -0.5, 0.5);
    let bias: Vec<f32> = (0..4).map(|i| (i as f32) / 16.0).collect();
    let params = Conv2dParams {
        stride: 1,
        pad: 1,
        relu: false,
    };
    let out_qp = QuantParams::from_range(-3.0, 3.0).unwrap();
    let out = depthwise_conv2d(&input, &filters, Some(&bias), &params, Some(out_qp)).unwrap();
    assert_eq!(out.shape().dims(), &[1, 4, 6, 6]);
    check_f32(
        golden_path!("quint8_depthwise_conv2d.txt"),
        &out.to_f32_vec(),
        GoldenMode::Exact,
    );
}

#[test]
fn quint8_fully_connected_matches_golden() {
    let input = quint8_tensor(Shape::nchw(2, 16, 1, 1), 0xC0_0007, -1.0, 1.0);
    let weights = quint8_tensor(Shape::new(vec![6, 16]), 0xC0_0008, -0.5, 0.5);
    let bias: Vec<f32> = (0..6).map(|i| (i as f32 - 2.0) / 10.0).collect();
    let out_qp = QuantParams::from_range(-4.0, 4.0).unwrap();
    let out = fully_connected(&input, &weights, Some(&bias), true, Some(out_qp)).unwrap();
    assert_eq!(out.shape().dims(), &[2, 6, 1, 1]);
    check_f32(
        golden_path!("quint8_fully_connected.txt"),
        &out.to_f32_vec(),
        GoldenMode::Exact,
    );
}

#[test]
fn quint8_maxpool_matches_golden() {
    let input = quint8_tensor(Shape::nchw(1, 3, 8, 8), 0xC0_0009, 0.0, 1.0);
    let params = PoolParams {
        kind: PoolKind::Max,
        k: 2,
        stride: 2,
        pad: 0,
    };
    let out = pool2d(&input, &params).unwrap();
    assert_eq!(out.shape().dims(), &[1, 3, 4, 4]);
    check_f32(
        golden_path!("quint8_maxpool.txt"),
        &out.to_f32_vec(),
        GoldenMode::Exact,
    );
}

#[test]
fn quint8_avgpool_matches_golden() {
    // Odd size + padding exercises the edge-window averaging (and its
    // integer rounding) in the quantized domain.
    let input = quint8_tensor(Shape::nchw(1, 2, 7, 7), 0xC0_000A, 0.0, 1.0);
    let params = PoolParams {
        kind: PoolKind::Avg,
        k: 3,
        stride: 2,
        pad: 1,
    };
    let out = pool2d(&input, &params).unwrap();
    assert_eq!(out.shape().dims(), &[1, 2, 4, 4]);
    check_f32(
        golden_path!("quint8_avgpool.txt"),
        &out.to_f32_vec(),
        GoldenMode::Exact,
    );
}
