//! Property tests: direct depthwise/pointwise kernels vs im2col+GEMM on
//! randomized MobileNet-style shapes (ISSUE 6, satellite 2).
//!
//! MobileNet v1 alternates 3×3 depthwise (stride 1 or 2, pad 1) with 1×1
//! pointwise convolutions; these properties randomize over exactly that
//! family and require the direct kernels to reproduce the im2col
//! reference bit for bit. On top of whole layers, the split properties
//! cut the channel range with `usoc::split_cuts` — the same helper the
//! executor's channel-wise distribution uses — run each sub-range
//! through the direct path, and require the concatenation to equal the
//! whole-layer reference, so per-part execution under a split plan is
//! covered too.

use testkit::{bools, prop_assert, props};
use ukernels::{conv2d, depthwise_conv2d, set_blocked_kernels, set_direct_conv, Conv2dParams};
use utensor::{DType, QuantParams, Shape, Tensor};

fn pseudo_f32(n: usize, seed: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((((i + seed) * 2654435761) % 2000) as f32 - 1000.0) / 1000.0)
        .collect()
}

fn dtype_of(pick: usize) -> DType {
    match pick % 3 {
        0 => DType::F32,
        1 => DType::F16,
        _ => DType::QUInt8,
    }
}

fn cast_pair(input: Tensor, filters: Tensor, dtype: DType) -> (Tensor, Tensor) {
    if dtype == DType::F32 {
        return (input, filters);
    }
    let qp = QuantParams::from_range(-1.0, 1.0).unwrap();
    let q = (dtype == DType::QUInt8).then_some(qp);
    (
        input.cast(dtype, q).unwrap(),
        filters.cast(dtype, q).unwrap(),
    )
}

/// Runs `f` with this thread routed through the direct conv kernels
/// (blocked GEMM on, as in the worker pools), restoring state after.
fn with_direct<T>(f: impl FnOnce() -> T) -> T {
    let prev_blocked = set_blocked_kernels(true);
    let prev_direct = set_direct_conv(true);
    let out = f();
    set_direct_conv(prev_direct);
    set_blocked_kernels(prev_blocked);
    out
}

props! {
    #![cases(32)]

    /// Direct depthwise == per-channel im2col+GEMM on MobileNet-style
    /// dw layers (3×3, stride 1 or 2, pad 1), all dtypes, bit for bit.
    fn direct_depthwise_equals_im2col(
        c in 1usize..24,
        hw in 3usize..12,
        stride2 in bools(),
        with_bias in bools(),
        relu in bools(),
        dtype_pick in 0usize..3,
        seed in 0usize..1000,
    ) {
        let dtype = dtype_of(dtype_pick);
        let input = Tensor::from_f32(
            Shape::nchw(1, c, hw, hw), pseudo_f32(c * hw * hw, seed),
        ).unwrap();
        let filters = Tensor::from_f32(
            Shape::oihw(c, 1, 3, 3), pseudo_f32(c * 9, seed + 5),
        ).unwrap();
        let (input, filters) = cast_pair(input, filters, dtype);
        let bias = pseudo_f32(c, seed + 9);
        let bias = with_bias.then_some(&bias[..]);
        let p = Conv2dParams { stride: if stride2 { 2 } else { 1 }, pad: 1, relu };
        let out_p = (dtype == DType::QUInt8)
            .then(|| QuantParams::from_range(-5.0, 5.0).unwrap());
        let want = depthwise_conv2d(&input, &filters, bias, &p, out_p).unwrap();
        let got = with_direct(|| depthwise_conv2d(&input, &filters, bias, &p, out_p).unwrap());
        prop_assert!(got.bit_equal(&want));
    }

    /// Direct pointwise (1×1 stride-1) == im2col+GEMM conv, all dtypes,
    /// bit for bit.
    fn direct_pointwise_equals_im2col(
        ic in 1usize..24,
        oc in 1usize..24,
        hw in 1usize..10,
        with_bias in bools(),
        relu in bools(),
        dtype_pick in 0usize..3,
        seed in 0usize..1000,
    ) {
        let dtype = dtype_of(dtype_pick);
        let input = Tensor::from_f32(
            Shape::nchw(1, ic, hw, hw), pseudo_f32(ic * hw * hw, seed),
        ).unwrap();
        let filters = Tensor::from_f32(
            Shape::oihw(oc, ic, 1, 1), pseudo_f32(oc * ic, seed + 3),
        ).unwrap();
        let (input, filters) = cast_pair(input, filters, dtype);
        let bias = pseudo_f32(oc, seed + 7);
        let bias = with_bias.then_some(&bias[..]);
        let p = Conv2dParams { stride: 1, pad: 0, relu };
        let out_p = (dtype == DType::QUInt8)
            .then(|| QuantParams::from_range(-8.0, 8.0).unwrap());
        let want = conv2d(&input, &filters, bias, &p, out_p).unwrap();
        let got = with_direct(|| conv2d(&input, &filters, bias, &p, out_p).unwrap());
        prop_assert!(got.bit_equal(&want));
    }

    /// Channel-split depthwise through the direct path: cut the channel
    /// range with `usoc::split_cuts`, run each sub-range (sliced input
    /// AND filters — dw distributes both), concatenate, and compare to
    /// the whole-layer im2col reference.
    fn split_direct_depthwise_recomposes(
        c in 2usize..20,
        hw in 4usize..10,
        stride2 in bools(),
        frac_pct in 5usize..96,
        dtype_pick in 0usize..3,
        seed in 0usize..1000,
    ) {
        let dtype = dtype_of(dtype_pick);
        let input = Tensor::from_f32(
            Shape::nchw(1, c, hw, hw), pseudo_f32(c * hw * hw, seed),
        ).unwrap();
        let filters = Tensor::from_f32(
            Shape::oihw(c, 1, 3, 3), pseudo_f32(c * 9, seed + 5),
        ).unwrap();
        let (input, filters) = cast_pair(input, filters, dtype);
        let bias = pseudo_f32(c, seed + 9);
        let p = Conv2dParams { stride: if stride2 { 2 } else { 1 }, pad: 1, relu: false };
        let out_p = (dtype == DType::QUInt8)
            .then(|| QuantParams::from_range(-5.0, 5.0).unwrap());
        let want = depthwise_conv2d(&input, &filters, Some(&bias), &p, out_p).unwrap();

        let f = frac_pct as f64 / 100.0;
        let cuts = usoc::split_cuts(c, &[f, 1.0 - f]);
        let parts: Vec<Tensor> = with_direct(|| {
            cuts.windows(2)
                .filter(|w| w[0] < w[1])
                .map(|w| {
                    let xin = input.slice_axis(1, w[0], w[1]).unwrap();
                    let fil = filters.slice_axis(0, w[0], w[1]).unwrap();
                    depthwise_conv2d(&xin, &fil, Some(&bias[w[0]..w[1]]), &p, out_p).unwrap()
                })
                .collect()
        });
        let refs: Vec<&Tensor> = parts.iter().collect();
        let got = Tensor::concat_axis(1, &refs).unwrap();
        prop_assert!(got.bit_equal(&want));
    }

    /// Channel-split pointwise through the direct path: output channels
    /// are cut with `usoc::split_cuts` (filters distributed, input
    /// shared), each sub-range runs the direct 1×1 kernel, and the
    /// concatenation equals the whole-layer im2col reference.
    fn split_direct_pointwise_recomposes(
        ic in 1usize..16,
        oc in 2usize..20,
        hw in 2usize..9,
        frac_pct in 5usize..96,
        dtype_pick in 0usize..3,
        seed in 0usize..1000,
    ) {
        let dtype = dtype_of(dtype_pick);
        let input = Tensor::from_f32(
            Shape::nchw(1, ic, hw, hw), pseudo_f32(ic * hw * hw, seed),
        ).unwrap();
        let filters = Tensor::from_f32(
            Shape::oihw(oc, ic, 1, 1), pseudo_f32(oc * ic, seed + 3),
        ).unwrap();
        let (input, filters) = cast_pair(input, filters, dtype);
        let bias = pseudo_f32(oc, seed + 7);
        let p = Conv2dParams { stride: 1, pad: 0, relu: true };
        let out_p = (dtype == DType::QUInt8)
            .then(|| QuantParams::from_range(-8.0, 8.0).unwrap());
        let want = conv2d(&input, &filters, Some(&bias), &p, out_p).unwrap();

        let f = frac_pct as f64 / 100.0;
        let cuts = usoc::split_cuts(oc, &[f, 1.0 - f]);
        let parts: Vec<Tensor> = with_direct(|| {
            cuts.windows(2)
                .filter(|w| w[0] < w[1])
                .map(|w| {
                    let fil = filters.slice_axis(0, w[0], w[1]).unwrap();
                    conv2d(&input, &fil, Some(&bias[w[0]..w[1]]), &p, out_p).unwrap()
                })
                .collect()
        });
        let refs: Vec<&Tensor> = parts.iter().collect();
        let got = Tensor::concat_axis(1, &refs).unwrap();
        prop_assert!(got.bit_equal(&want));
    }
}
