//! Property tests: blocked packed GEMM kernels vs the naive references.
//!
//! The equivalence contract (ISSUE 5):
//! - **QUInt8**: bit-identical for every shape (i32 accumulation is
//!   associative, so blocking cannot change a single bit);
//! - **f32/F16**: ULP-bounded (identical while `k <= KC`, re-associated
//!   panel sums beyond);
//!
//! and the scratch-arena contract: repeated layer executions reuse
//! capacity instead of growing monotonically.

use testkit::{bools, prop_assert, prop_assume, props};
use ukernels::blocked::{gemm_f16_blocked, gemm_f32_blocked, gemm_quint8_blocked, KC};
use ukernels::gemm::{gemm_f16, gemm_f32, gemm_quint8};
use ukernels::{
    conv2d, set_blocked_kernels, thread_arena_capacity_bytes, Conv2dParams, ScratchArena,
};
use utensor::{QuantParams, Shape, Tensor, F16};

fn pseudo_f32(n: usize, seed: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((((i + seed) * 2654435761) % 2000) as f32 - 1000.0) / 1000.0)
        .collect()
}

fn pseudo_u8(n: usize, seed: usize) -> Vec<u8> {
    (0..n).map(|i| (((i + seed) * 48271) % 256) as u8).collect()
}

props! {
    #![cases(40)]

    /// f32 blocked GEMM matches the naive loop within a tight relative
    /// bound across random shapes, including multi-panel `k > KC`.
    fn f32_blocked_equals_naive(
        m in 1usize..24,
        k_small in 1usize..64,
        multi_panel in bools(),
        n in 1usize..24,
        relu in bools(),
        seed in 0usize..1000,
    ) {
        let k = if multi_panel { KC + k_small } else { k_small };
        let a = pseudo_f32(m * k, seed);
        let b = pseudo_f32(k * n, seed + 7);
        let bias = pseudo_f32(m, seed + 13);
        let want = gemm_f32(m, k, n, &a, &b, Some(&bias), relu);
        let mut got = vec![0.0f32; m * n];
        let mut arena = ScratchArena::new();
        gemm_f32_blocked(&mut got, m, k, n, &a, &b, Some(&bias), relu, &mut arena);
        if !multi_panel {
            // One panel: identical accumulation order, bit-equal.
            prop_assert!(got == want);
        } else {
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g - w).abs() <= 1e-4 * (1.0 + w.abs()));
            }
        }
    }

    /// F16 blocked GEMM is bit-equal to the naive loop for `k <= KC` and
    /// tolerance-bounded beyond (binary16 panel sums re-associate).
    fn f16_blocked_equals_naive(
        m in 1usize..16,
        k_small in 1usize..48,
        multi_panel in bools(),
        n in 1usize..16,
        seed in 0usize..1000,
    ) {
        let k = if multi_panel { KC + k_small } else { k_small };
        let a: Vec<F16> = pseudo_f32(m * k, seed).iter().map(|&v| F16::from_f32(v)).collect();
        let b: Vec<F16> = pseudo_f32(k * n, seed + 3).iter().map(|&v| F16::from_f32(v)).collect();
        let want = gemm_f16(m, k, n, &a, &b, None, false);
        let mut got = vec![F16::ZERO; m * n];
        let mut arena = ScratchArena::new();
        gemm_f16_blocked(&mut got, m, k, n, &a, &b, None, false, &mut arena);
        if !multi_panel {
            prop_assert!(got == want);
        } else {
            for (g, w) in got.iter().zip(&want) {
                let (g, w) = (g.to_f32(), w.to_f32());
                // Values are O(sqrt(k)); binary16 has ~3 decimal digits.
                prop_assert!((g - w).abs() <= 0.05 * (1.0 + w.abs()));
            }
        }
    }

    /// QUInt8 blocked GEMM is bit-identical to gemmlowp-style naive for
    /// every shape, bias, ReLU, and zero-point combination.
    fn quint8_blocked_bit_identical(
        m in 1usize..20,
        k_small in 1usize..80,
        multi_panel in bools(),
        n in 1usize..20,
        relu in bools(),
        with_bias in bools(),
        seed in 0usize..1000,
    ) {
        let k = if multi_panel { KC + k_small } else { k_small };
        let a = pseudo_u8(m * k, seed);
        let b = pseudo_u8(k * n, seed + 11);
        let a_p = QuantParams::from_range(-1.0, 1.0).unwrap();
        let b_p = QuantParams::from_range(-3.0, 2.0).unwrap();
        let out_p = QuantParams::from_range(-60.0, 60.0).unwrap();
        let bias = pseudo_f32(m, seed + 17);
        let bias = with_bias.then_some(&bias[..]);
        let want = gemm_quint8(m, k, n, &a, a_p, &b, b_p, bias, out_p, relu).unwrap();
        let mut got = vec![0u8; m * n];
        let mut arena = ScratchArena::new();
        gemm_quint8_blocked(
            &mut got, m, k, n, &a, a_p, &b, b_p, bias, out_p, relu, &mut arena,
        ).unwrap();
        prop_assert!(got == want);
    }

    /// The thread-local dispatch flag routes `conv2d` through the blocked
    /// kernels without changing QUInt8 results by a single bit.
    fn conv2d_blocked_flag_quint8_bit_identical(
        ic in 1usize..4,
        oc in 1usize..6,
        hw in 3usize..8,
        k in 1usize..4,
        seed in 0usize..1000,
    ) {
        prop_assume!(hw >= k);
        let qp = QuantParams::from_range(-1.0, 1.0).unwrap();
        let out_qp = QuantParams::from_range(-8.0, 8.0).unwrap();
        let input = Tensor::from_f32(
            Shape::nchw(1, ic, hw, hw), pseudo_f32(ic * hw * hw, seed),
        ).unwrap().cast(utensor::DType::QUInt8, Some(qp)).unwrap();
        let filters = Tensor::from_f32(
            Shape::oihw(oc, ic, k, k), pseudo_f32(oc * ic * k * k, seed + 5),
        ).unwrap().cast(utensor::DType::QUInt8, Some(qp)).unwrap();
        let p = Conv2dParams { stride: 1, pad: 0, relu: false };
        let naive = conv2d(&input, &filters, None, &p, Some(out_qp)).unwrap();
        let prev = set_blocked_kernels(true);
        let blocked = conv2d(&input, &filters, None, &p, Some(out_qp));
        set_blocked_kernels(prev);
        prop_assert!(blocked.unwrap().bit_equal(&naive));
    }
}

/// Satellite: repeated layer executions reuse arena capacity — the
/// footprint ratchets to a high-water mark and then stays flat.
#[test]
fn repeated_conv_does_not_grow_the_arena() {
    let run = |seed: usize| {
        let input =
            Tensor::from_f32(Shape::nchw(1, 8, 14, 14), pseudo_f32(8 * 14 * 14, seed)).unwrap();
        let filters =
            Tensor::from_f32(Shape::oihw(16, 8, 3, 3), pseudo_f32(16 * 8 * 9, seed + 1)).unwrap();
        let p = Conv2dParams {
            stride: 1,
            pad: 1,
            relu: true,
        };
        conv2d(&input, &filters, None, &p, None).unwrap();
    };
    // Warm-up: the first call grows the arena to this workload's needs.
    run(0);
    let warm = thread_arena_capacity_bytes();
    assert!(warm > 0, "arena should hold capacity after a conv");
    for i in 1..12 {
        run(i);
        assert_eq!(
            thread_arena_capacity_bytes(),
            warm,
            "arena grew on iteration {i}"
        );
    }
    // Same for the blocked path: pack buffers also reach a fixed point.
    let prev = set_blocked_kernels(true);
    run(0);
    let warm_blocked = thread_arena_capacity_bytes();
    for i in 1..12 {
        run(i);
        assert_eq!(thread_arena_capacity_bytes(), warm_blocked);
    }
    set_blocked_kernels(prev);
}
