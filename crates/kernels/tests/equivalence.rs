//! Kernel-equivalence differential harness (ISSUE 6, satellite 1).
//!
//! Every *registered fast path* — each `op/dtype/impl` key that
//! [`ukernels::registered_fast_paths`] reports for this host — must have
//! a differential cell here that pins it to the golden scalar reference
//! (the naive GEMM loops and the per-channel im2col convolution path).
//! The completeness test at the bottom fails the suite if a new fast
//! path registers itself without a cell, so a kernel cannot land
//! unpinned.
//!
//! The table is three-dimensional: every cell runs under thread counts
//! {1, 2, 4} (the kernels are dispatched per-thread; concurrent workers
//! must not perturb each other's numerics) and the conv cells run under
//! both the scalar and — when the host has the features — the SIMD
//! register tiles.
//!
//! Equivalence contract:
//! - **QUInt8**: bit-identical, always (integer accumulation);
//! - **f32 / F16**: bit-identical while `k <= KC` (identical operation
//!   order by construction), tolerance-bounded beyond (panel sums
//!   re-associate);
//! - conv fast paths (direct depthwise / pointwise): bit-identical to
//!   the im2col reference for all three dtypes.
//!
//! Seeded shape ladders cover the historical trouble spots: odd
//! channels, stride 2, padding, 1×1 kernels, single-channel layers, and
//! `K % KC != 0` remainder panels. The randomized section at the bottom
//! adds shrinking on top.

use std::thread;

use testkit::{bools, prop_assert, prop_assume, props};
use ukernels::blocked::{gemm_f16_blocked, gemm_f32_blocked, gemm_quint8_blocked, KC};
use ukernels::gemm::{gemm_f16, gemm_f32, gemm_quint8};
use ukernels::{
    conv2d, depthwise_conv2d, registered_fast_paths, set_blocked_kernels, set_direct_conv,
    set_kernel_path, simd_available, simd_f16_available, Conv2dParams, PathChoice, ScratchArena,
};
use utensor::{DType, QuantParams, Shape, Tensor, F16};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Every `op/dtype/impl` key this harness pins. The completeness test
/// requires `registered_fast_paths() ⊆ COVERED`.
const COVERED: &[&str] = &[
    "gemm/f32/blocked-scalar",
    "gemm/f32/blocked-simd",
    "gemm/f16/blocked-scalar",
    "gemm/f16/blocked-simd",
    "gemm/quint8/blocked-scalar",
    "gemm/quint8/blocked-simd",
    "depthwise/f32/direct",
    "depthwise/f16/direct",
    "depthwise/quint8/direct",
    "pointwise/f32/direct",
    "pointwise/f16/direct",
    "pointwise/quint8/direct",
];

fn pseudo_f32(n: usize, seed: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((((i + seed) * 2654435761) % 2000) as f32 - 1000.0) / 1000.0)
        .collect()
}

fn pseudo_u8(n: usize, seed: usize) -> Vec<u8> {
    (0..n).map(|i| (((i + seed) * 48271) % 256) as u8).collect()
}

/// Runs `f` on `tc` fresh threads, each configured for (`path`,
/// `direct`) with the blocked kernels on — exactly how a `uexec` worker
/// pool configures its workers — and returns every thread's result.
fn on_threads<T: Send>(
    tc: usize,
    path: PathChoice,
    direct: bool,
    f: impl Fn() -> T + Sync,
) -> Vec<T> {
    thread::scope(|s| {
        let handles: Vec<_> = (0..tc)
            .map(|_| {
                s.spawn(|| {
                    set_blocked_kernels(true);
                    set_kernel_path(path);
                    set_direct_conv(direct);
                    f()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// The kernel paths a conv fast-path cell exercises on this host.
fn conv_paths() -> Vec<PathChoice> {
    let mut paths = vec![PathChoice::Scalar];
    if simd_available() {
        paths.push(PathChoice::Simd);
    }
    paths
}

/// GEMM shape ladder: in-panel shapes (bit-equal contract) plus one
/// multi-panel `K % KC != 0` shape (tolerance contract for floats).
const GEMM_SHAPES: [(usize, usize, usize); 5] = [
    (1, 1, 1),
    (3, 7, 5),
    (4, 8, 8),
    (5, 255, 9),
    (13, KC + 7, 21),
];

fn gemm_cell_f32(path: PathChoice, tc: usize) {
    for (case, &(m, k, n)) in GEMM_SHAPES.iter().enumerate() {
        let relu = case % 2 == 1;
        let a = pseudo_f32(m * k, case);
        let b = pseudo_f32(k * n, case + 7);
        let bias = pseudo_f32(m, case + 13);
        let want = gemm_f32(m, k, n, &a, &b, Some(&bias), relu);
        for got in on_threads(tc, path, false, || {
            let mut got = vec![0.0f32; m * n];
            let mut arena = ScratchArena::new();
            gemm_f32_blocked(&mut got, m, k, n, &a, &b, Some(&bias), relu, &mut arena);
            got
        }) {
            if k <= KC {
                let same = got
                    .iter()
                    .zip(&want)
                    .all(|(g, w)| g.to_bits() == w.to_bits());
                assert!(same, "f32 {path:?} tc={tc} m={m} k={k} n={n} not bit-equal");
            } else {
                for (g, w) in got.iter().zip(&want) {
                    assert!(
                        (g - w).abs() <= 1e-4 * (1.0 + w.abs()),
                        "f32 {path:?} tc={tc} m={m} k={k} n={n}: {g} vs {w}"
                    );
                }
            }
        }
    }
}

fn gemm_cell_f16(path: PathChoice, tc: usize) {
    for (case, &(m, k, n)) in GEMM_SHAPES.iter().enumerate() {
        let a: Vec<F16> = pseudo_f32(m * k, case)
            .iter()
            .map(|&v| F16::from_f32(v))
            .collect();
        let b: Vec<F16> = pseudo_f32(k * n, case + 3)
            .iter()
            .map(|&v| F16::from_f32(v))
            .collect();
        let bias = pseudo_f32(m, case + 5);
        let want = gemm_f16(m, k, n, &a, &b, Some(&bias), false);
        for got in on_threads(tc, path, false, || {
            let mut got = vec![F16::ZERO; m * n];
            let mut arena = ScratchArena::new();
            gemm_f16_blocked(&mut got, m, k, n, &a, &b, Some(&bias), false, &mut arena);
            got
        }) {
            if k <= KC {
                assert!(
                    got == want,
                    "f16 {path:?} tc={tc} m={m} k={k} n={n} not bit-equal"
                );
            } else {
                for (g, w) in got.iter().zip(&want) {
                    let (g, w) = (g.to_f32(), w.to_f32());
                    assert!(
                        (g - w).abs() <= 0.05 * (1.0 + w.abs()),
                        "f16 {path:?} tc={tc} m={m} k={k} n={n}: {g} vs {w}"
                    );
                }
            }
        }
    }
}

fn gemm_cell_quint8(path: PathChoice, tc: usize) {
    for (case, &(m, k, n)) in GEMM_SHAPES.iter().enumerate() {
        let relu = case % 2 == 0;
        let a = pseudo_u8(m * k, case);
        let b = pseudo_u8(k * n, case + 11);
        let a_p = QuantParams::from_range(-1.0, 1.0).unwrap();
        let b_p = QuantParams::from_range(-3.0, 2.0).unwrap();
        let out_p = QuantParams::from_range(-60.0, 60.0).unwrap();
        let bias = pseudo_f32(m, case + 17);
        let want = gemm_quint8(m, k, n, &a, a_p, &b, b_p, Some(&bias), out_p, relu).unwrap();
        for got in on_threads(tc, path, false, || {
            let mut got = vec![0u8; m * n];
            let mut arena = ScratchArena::new();
            gemm_quint8_blocked(
                &mut got,
                m,
                k,
                n,
                &a,
                a_p,
                &b,
                b_p,
                Some(&bias),
                out_p,
                relu,
                &mut arena,
            )
            .unwrap();
            got
        }) {
            // QUInt8 is bit-identical for every shape, no exceptions.
            assert!(got == want, "quint8 {path:?} tc={tc} m={m} k={k} n={n}");
        }
    }
}

/// Depthwise shape ladder: (c, h, w, k, stride, pad) hitting odd and
/// single channels, stride 2, padding, and 1×1 windows.
const DW_SHAPES: [(usize, usize, usize, usize, usize, usize); 5] = [
    (3, 6, 6, 3, 1, 1),
    (1, 5, 7, 3, 2, 0),
    (5, 9, 9, 5, 2, 2),
    (4, 4, 4, 1, 1, 0),
    (7, 8, 5, 3, 2, 1),
];

fn depthwise_cell(dtype: DType, tc: usize) {
    for (case, &(c, h, w, k, stride, pad)) in DW_SHAPES.iter().enumerate() {
        let relu = case % 2 == 0;
        let qp = QuantParams::from_range(-1.0, 1.0).unwrap();
        let out_qp = QuantParams::from_range(-4.0, 4.0).unwrap();
        let mut input =
            Tensor::from_f32(Shape::nchw(1, c, h, w), pseudo_f32(c * h * w, case)).unwrap();
        let mut filters =
            Tensor::from_f32(Shape::oihw(c, 1, k, k), pseudo_f32(c * k * k, case + 5)).unwrap();
        if dtype != DType::F32 {
            input = input
                .cast(dtype, (dtype == DType::QUInt8).then_some(qp))
                .unwrap();
            filters = filters
                .cast(dtype, (dtype == DType::QUInt8).then_some(qp))
                .unwrap();
        }
        let bias = pseudo_f32(c, case + 9);
        let p = Conv2dParams { stride, pad, relu };
        let out_p = (dtype == DType::QUInt8).then_some(out_qp);
        // Golden: the per-channel im2col path with naive scalar GEMM
        // (this thread's defaults: blocked off, direct off).
        let want = depthwise_conv2d(&input, &filters, Some(&bias), &p, out_p).unwrap();
        for path in conv_paths() {
            for got in on_threads(tc, path, true, || {
                depthwise_conv2d(&input, &filters, Some(&bias), &p, out_p).unwrap()
            }) {
                assert!(
                    got.bit_equal(&want),
                    "depthwise {dtype:?} {path:?} tc={tc} c={c} k={k} s={stride} p={pad}"
                );
            }
        }
    }
}

/// Pointwise shape ladder: (ic, oc, h, w) hitting odd and single
/// channels.
const PW_SHAPES: [(usize, usize, usize, usize); 4] =
    [(3, 5, 6, 6), (1, 1, 4, 7), (8, 3, 5, 5), (5, 11, 3, 3)];

fn pointwise_cell(dtype: DType, tc: usize) {
    for (case, &(ic, oc, h, w)) in PW_SHAPES.iter().enumerate() {
        let relu = case % 2 == 1;
        let qp = QuantParams::from_range(-1.0, 1.0).unwrap();
        let out_qp = QuantParams::from_range(-8.0, 8.0).unwrap();
        let mut input =
            Tensor::from_f32(Shape::nchw(1, ic, h, w), pseudo_f32(ic * h * w, case)).unwrap();
        let mut filters =
            Tensor::from_f32(Shape::oihw(oc, ic, 1, 1), pseudo_f32(oc * ic, case + 3)).unwrap();
        if dtype != DType::F32 {
            input = input
                .cast(dtype, (dtype == DType::QUInt8).then_some(qp))
                .unwrap();
            filters = filters
                .cast(dtype, (dtype == DType::QUInt8).then_some(qp))
                .unwrap();
        }
        let bias = pseudo_f32(oc, case + 7);
        let p = Conv2dParams {
            stride: 1,
            pad: 0,
            relu,
        };
        let out_p = (dtype == DType::QUInt8).then_some(out_qp);
        let want = conv2d(&input, &filters, Some(&bias), &p, out_p).unwrap();
        for path in conv_paths() {
            for got in on_threads(tc, path, true, || {
                conv2d(&input, &filters, Some(&bias), &p, out_p).unwrap()
            }) {
                assert!(
                    got.bit_equal(&want),
                    "pointwise {dtype:?} {path:?} tc={tc} ic={ic} oc={oc}"
                );
            }
        }
    }
}

/// Runs the cell that pins `key`; panics on an unknown key so a typo in
/// [`COVERED`] cannot silently cover nothing.
fn run_cell(key: &str, tc: usize) {
    match key {
        "gemm/f32/blocked-scalar" => gemm_cell_f32(PathChoice::Scalar, tc),
        "gemm/f32/blocked-simd" => gemm_cell_f32(PathChoice::Simd, tc),
        "gemm/f16/blocked-scalar" => gemm_cell_f16(PathChoice::Scalar, tc),
        "gemm/f16/blocked-simd" => gemm_cell_f16(PathChoice::Simd, tc),
        "gemm/quint8/blocked-scalar" => gemm_cell_quint8(PathChoice::Scalar, tc),
        "gemm/quint8/blocked-simd" => gemm_cell_quint8(PathChoice::Simd, tc),
        "depthwise/f32/direct" => depthwise_cell(DType::F32, tc),
        "depthwise/f16/direct" => depthwise_cell(DType::F16, tc),
        "depthwise/quint8/direct" => depthwise_cell(DType::QUInt8, tc),
        "pointwise/f32/direct" => pointwise_cell(DType::F32, tc),
        "pointwise/f16/direct" => pointwise_cell(DType::F16, tc),
        "pointwise/quint8/direct" => pointwise_cell(DType::QUInt8, tc),
        other => panic!("no equivalence cell for fast path {other}"),
    }
}

/// The gate: a fast path that registers itself without a differential
/// cell fails CI on every host that exposes it.
#[test]
fn every_registered_fast_path_has_an_equivalence_cell() {
    for key in registered_fast_paths() {
        assert!(
            COVERED.contains(&key),
            "registered fast path {key} has no equivalence cell — add one to tests/equivalence.rs"
        );
    }
}

/// The full table: every covered cell, at every thread count. A
/// `blocked-simd` cell on a host without the features resolves to the
/// scalar tiles (the documented degradation), so the cell stays valid —
/// it just re-pins scalar.
#[test]
fn equivalence_table_all_cells_all_thread_counts() {
    for key in COVERED {
        for tc in THREAD_COUNTS {
            run_cell(key, tc);
        }
    }
}

/// The f16 SIMD tile needs F16C on top of AVX2; when it is registered,
/// the detection helpers must agree.
#[test]
fn f16_simd_registration_matches_detection() {
    let paths = registered_fast_paths();
    assert_eq!(
        paths.contains(&"gemm/f16/blocked-simd"),
        simd_f16_available()
    );
    assert_eq!(paths.contains(&"gemm/f32/blocked-simd"), simd_available());
}

props! {
    #![cases(24)]

    /// Randomized (shrinking) differential: the blocked GEMM under a
    /// random kernel path and two concurrent workers stays bit-equal to
    /// the naive reference for in-panel shapes.
    fn random_gemm_shapes_agree_across_paths(
        m in 1usize..16,
        k in 1usize..64,
        n in 1usize..16,
        force_simd in bools(),
        relu in bools(),
        seed in 0usize..1000,
    ) {
        let path = if force_simd { PathChoice::Simd } else { PathChoice::Scalar };
        let a = pseudo_f32(m * k, seed);
        let b = pseudo_f32(k * n, seed + 7);
        let want = gemm_f32(m, k, n, &a, &b, None, relu);
        for got in on_threads(2, path, false, || {
            let mut got = vec![0.0f32; m * n];
            let mut arena = ScratchArena::new();
            gemm_f32_blocked(&mut got, m, k, n, &a, &b, None, relu, &mut arena);
            got
        }) {
            prop_assert!(got.iter().zip(&want).all(|(g, w)| g.to_bits() == w.to_bits()));
        }
    }

    /// Randomized (shrinking) differential for the QUInt8 tile: bit
    /// identity must hold for any shape, including multi-panel K.
    fn random_quint8_shapes_bit_identical(
        m in 1usize..12,
        k_small in 1usize..48,
        multi_panel in bools(),
        n in 1usize..12,
        force_simd in bools(),
        seed in 0usize..1000,
    ) {
        prop_assume!(m * n > 0);
        let k = if multi_panel { KC + k_small } else { k_small };
        let path = if force_simd { PathChoice::Simd } else { PathChoice::Scalar };
        let a = pseudo_u8(m * k, seed);
        let b = pseudo_u8(k * n, seed + 11);
        let a_p = QuantParams::from_range(-1.0, 1.0).unwrap();
        let b_p = QuantParams::from_range(-2.0, 2.0).unwrap();
        let out_p = QuantParams::from_range(-70.0, 70.0).unwrap();
        let want = gemm_quint8(m, k, n, &a, a_p, &b, b_p, None, out_p, false).unwrap();
        for got in on_threads(2, path, false, || {
            let mut got = vec![0u8; m * n];
            let mut arena = ScratchArena::new();
            gemm_quint8_blocked(&mut got, m, k, n, &a, a_p, &b, b_p, None, out_p, false, &mut arena)
                .unwrap();
            got
        }) {
            prop_assert!(got == want);
        }
    }
}
