//! Regression pins for the blocked GEMM edge tiles (ISSUE 6).
//!
//! The SIMD rewrite replaces the scalar inner loops of
//! [`ukernels::blocked`]; these tests pin the *current* packing behavior
//! first, so a packing bug introduced by the rewrite cannot hide behind
//! the rewrite's own reference:
//!
//! - an exhaustive shape sweep over the remainder-critical cases — `K`
//!   not divisible by [`KC`], `M`/`N` not divisible by the `MR = 4` /
//!   `NR = 8` register tile — against the naive kernels;
//! - golden QUInt8 output vectors captured from the pre-SIMD scalar
//!   kernels. Integer arithmetic is exact, so these bytes are
//!   platform-independent and must never change, on any architecture or
//!   kernel path.

use ukernels::blocked::{gemm_f16_blocked, gemm_f32_blocked, gemm_quint8_blocked, KC, MR, NR};
use ukernels::gemm::{gemm_f16, gemm_f32, gemm_quint8};
use ukernels::ScratchArena;
use utensor::{QuantParams, F16};

fn pseudo_f32(n: usize, seed: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((((i + seed) * 2654435761) % 2000) as f32 - 1000.0) / 1000.0)
        .collect()
}

fn pseudo_u8(n: usize, seed: usize) -> Vec<u8> {
    (0..n).map(|i| (((i + seed) * 48271) % 256) as u8).collect()
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Remainder-critical dimension ladders: one below / exactly at / one
/// above each tiling constant, plus multi-tile-with-edge combinations.
fn edge_ms() -> Vec<usize> {
    vec![1, MR - 1, MR, MR + 1, 2 * MR + 3]
}

fn edge_ns() -> Vec<usize> {
    vec![1, NR - 1, NR, NR + 1, 2 * NR + 5]
}

fn edge_ks() -> Vec<usize> {
    vec![1, KC - 1, KC, KC + 1, 2 * KC, 2 * KC + 7]
}

#[test]
fn quint8_edge_tiles_bit_identical_to_naive() {
    let a_p = QuantParams::from_range(-1.0, 1.0).unwrap();
    let b_p = QuantParams::from_range(-2.0, 3.0).unwrap();
    let out_p = QuantParams::from_range(-50.0, 50.0).unwrap();
    let mut arena = ScratchArena::new();
    for &m in &edge_ms() {
        for &n in &edge_ns() {
            for &k in &edge_ks() {
                let a = pseudo_u8(m * k, m + k);
                let b = pseudo_u8(k * n, n + k + 1);
                let bias = pseudo_f32(m, 3);
                let want =
                    gemm_quint8(m, k, n, &a, a_p, &b, b_p, Some(&bias), out_p, true).unwrap();
                let mut got = vec![0u8; m * n];
                gemm_quint8_blocked(
                    &mut got,
                    m,
                    k,
                    n,
                    &a,
                    a_p,
                    &b,
                    b_p,
                    Some(&bias),
                    out_p,
                    true,
                    &mut arena,
                )
                .unwrap();
                assert_eq!(got, want, "QUInt8 edge shape {m}x{k}x{n}");
            }
        }
    }
}

#[test]
fn f32_edge_tiles_match_naive() {
    let mut arena = ScratchArena::new();
    for &m in &edge_ms() {
        for &n in &edge_ns() {
            for &k in &edge_ks() {
                let a = pseudo_f32(m * k, m + k);
                let b = pseudo_f32(k * n, n + k + 1);
                let want = gemm_f32(m, k, n, &a, &b, None, false);
                let mut got = vec![0.0f32; m * n];
                gemm_f32_blocked(&mut got, m, k, n, &a, &b, None, false, &mut arena);
                if k <= KC {
                    // One K-panel: identical accumulation order.
                    assert_eq!(got, want, "f32 edge shape {m}x{k}x{n}");
                } else {
                    for (g, w) in got.iter().zip(&want) {
                        assert!(
                            (g - w).abs() <= 1e-4 * (1.0 + w.abs()),
                            "f32 edge shape {m}x{k}x{n}: got {g}, want {w}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn f16_edge_tiles_match_naive() {
    let mut arena = ScratchArena::new();
    for &m in &edge_ms() {
        for &n in &edge_ns() {
            // Full K ladder is slow in f16 software emulation; the K
            // remainder behavior is dtype-independent packing, so one
            // below/above-KC pair suffices here.
            for &k in &[1usize, KC, KC + 1] {
                let a: Vec<F16> = pseudo_f32(m * k, m + k)
                    .iter()
                    .map(|&v| F16::from_f32(v))
                    .collect();
                let b: Vec<F16> = pseudo_f32(k * n, n + k + 1)
                    .iter()
                    .map(|&v| F16::from_f32(v))
                    .collect();
                let want = gemm_f16(m, k, n, &a, &b, None, false);
                let mut got = vec![F16::ZERO; m * n];
                gemm_f16_blocked(&mut got, m, k, n, &a, &b, None, false, &mut arena);
                if k <= KC {
                    assert!(
                        got.iter()
                            .zip(&want)
                            .all(|(g, w)| g.to_bits() == w.to_bits()),
                        "f16 edge shape {m}x{k}x{n}"
                    );
                } else {
                    for (g, w) in got.iter().zip(&want) {
                        let (g, w) = (g.to_f32(), w.to_f32());
                        assert!(
                            (g - w).abs() <= 0.05 * (1.0 + w.abs()),
                            "f16 edge shape {m}x{k}x{n}: got {g}, want {w}"
                        );
                    }
                }
            }
        }
    }
}

/// Golden bytes captured from the pre-SIMD scalar blocked kernel
/// (m=5: MR tile + 1-row edge; n=11: NR tile + 3-column edge;
/// k=KC+3: full panel + 3-column remainder panel). Any future kernel —
/// scalar, AVX2, NEON — must reproduce them exactly.
#[test]
fn quint8_golden_vector_edge_case() {
    let (m, k, n) = (5usize, KC + 3, 11usize);
    let a = pseudo_u8(m * k, 1);
    let b = pseudo_u8(k * n, 2);
    let bias = pseudo_f32(m, 3);
    let a_p = QuantParams::from_range(-1.0, 1.0).unwrap();
    let b_p = QuantParams::from_range(-2.0, 3.0).unwrap();
    let out_p = QuantParams::from_range(-50.0, 50.0).unwrap();
    let mut got = vec![0u8; m * n];
    let mut arena = ScratchArena::new();
    gemm_quint8_blocked(
        &mut got,
        m,
        k,
        n,
        &a,
        a_p,
        &b,
        b_p,
        Some(&bias),
        out_p,
        true,
        &mut arena,
    )
    .unwrap();
    let golden: [u8; 55] = [
        174, 128, 156, 128, 139, 131, 128, 153, 128, 177, 128, 128, 159, 128, 128, 128, 128, 143,
        128, 173, 128, 152, 150, 128, 128, 128, 128, 157, 128, 182, 128, 141, 128, 128, 133, 130,
        128, 144, 128, 184, 128, 148, 128, 128, 134, 133, 128, 155, 128, 166, 128, 142, 128, 128,
        128,
    ];
    assert_eq!(got, golden);
}

/// Checksum pin for a larger multi-panel remainder case (m=13, n=29,
/// k=2·KC+7), captured from the pre-SIMD scalar kernel.
#[test]
fn quint8_golden_checksum_multi_panel() {
    let (m, k, n) = (13usize, 2 * KC + 7, 29usize);
    let a = pseudo_u8(m * k, 11);
    let b = pseudo_u8(k * n, 12);
    let a_p = QuantParams::from_range(-1.0, 1.0).unwrap();
    let b_p = QuantParams::from_range(-2.0, 3.0).unwrap();
    let out_p = QuantParams::from_range(-50.0, 50.0).unwrap();
    let mut got = vec![0u8; m * n];
    let mut arena = ScratchArena::new();
    gemm_quint8_blocked(
        &mut got, m, k, n, &a, a_p, &b, b_p, None, out_p, false, &mut arena,
    )
    .unwrap();
    assert_eq!(fnv1a(&got), 0xc29292f8a08fb2fb);
}
