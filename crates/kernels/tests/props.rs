//! Property-based tests for the compute kernels.
//!
//! Runs on the in-repo `testkit` property runner: deterministic in
//! `TESTKIT_SEED`, case count overridable via `TESTKIT_CASES`.

use testkit::{bools, prop_assert, prop_assume, props};
use ukernels::{conv2d, conv2d_naive_f32, pool2d, Conv2dParams, PoolKind, PoolParams};
use utensor::{DType, QuantParams, Shape, Tensor};

fn pseudo_tensor(shape: Shape, seed: usize) -> Tensor {
    let n = shape.numel();
    let data: Vec<f32> = (0..n)
        .map(|i| ((((i + seed) * 2654435761) % 2000) as f32 - 1000.0) / 1000.0)
        .collect();
    Tensor::from_f32(shape, data).unwrap()
}

props! {
    #![cases(48)]

    /// The deployed conv path (im2col + GEMM) always matches the naive
    /// direct convolution, across random geometry.
    fn conv_gemm_equals_naive(
        ic in 1usize..4,
        oc in 1usize..5,
        hw in 3usize..9,
        k in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        relu in bools(),
        seed in 0usize..1000,
    ) {
        prop_assume!(hw + 2 * pad >= k);
        let input = pseudo_tensor(Shape::nchw(1, ic, hw, hw), seed);
        let filters = pseudo_tensor(Shape::oihw(oc, ic, k, k), seed + 1);
        let bias: Vec<f32> = (0..oc).map(|i| (i as f32 - 1.0) / 4.0).collect();
        let p = Conv2dParams { stride, pad, relu };
        let fast = conv2d(&input, &filters, Some(&bias), &p, None).unwrap();
        let slow = conv2d_naive_f32(&input, &filters, Some(&bias), &p).unwrap();
        prop_assert!(fast.max_abs_diff(&slow) < 1e-4);
    }

    /// Channel-wise split/merge is bit-exact for conv in every dtype and
    /// at every split point — the core μLayer correctness invariant.
    fn conv_channel_split_is_lossless(
        ic in 1usize..4,
        oc in 2usize..8,
        hw in 3usize..8,
        k in 1usize..4,
        cut_frac in 0.0f64..=1.0,
        dtype_idx in 0usize..3,
        seed in 0usize..1000,
    ) {
        prop_assume!(hw >= k);
        let dtype = DType::ALL[dtype_idx];
        let qp = QuantParams::from_range(-1.0, 1.0).unwrap();
        let out_qp = QuantParams::from_range(-8.0, 8.0).unwrap();
        let input = pseudo_tensor(Shape::nchw(1, ic, hw, hw), seed)
            .cast(dtype, Some(qp)).unwrap();
        let filters = pseudo_tensor(Shape::oihw(oc, ic, k, k), seed + 9)
            .cast(dtype, Some(qp)).unwrap();
        let bias: Vec<f32> = (0..oc).map(|i| (i as f32) / 8.0).collect();
        let p = Conv2dParams { stride: 1, pad: 0, relu: false };
        let out_params = (dtype == DType::QUInt8).then_some(out_qp);
        let whole = conv2d(&input, &filters, Some(&bias), &p, out_params).unwrap();

        let cut = ((oc as f64) * cut_frac).round() as usize;
        let mut parts = Vec::new();
        if cut > 0 {
            let f = filters.slice_axis(0, 0, cut).unwrap();
            parts.push(conv2d(&input, &f, Some(&bias[..cut]), &p, out_params).unwrap());
        }
        if cut < oc {
            let f = filters.slice_axis(0, cut, oc).unwrap();
            parts.push(conv2d(&input, &f, Some(&bias[cut..]), &p, out_params).unwrap());
        }
        let refs: Vec<&Tensor> = parts.iter().collect();
        let merged = Tensor::concat_axis(1, &refs).unwrap();
        prop_assert!(merged.bit_equal(&whole));
    }

    /// Pooling's spatial-function property: splitting input channels and
    /// merging outputs is bit-exact, for both pool kinds and every dtype.
    fn pool_channel_split_is_lossless(
        c in 2usize..9,
        hw in 3usize..9,
        k in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        max_pool in bools(),
        cut_frac in 0.0f64..=1.0,
        dtype_idx in 0usize..3,
        seed in 0usize..1000,
    ) {
        prop_assume!(hw + 2 * pad >= k);
        let dtype = DType::ALL[dtype_idx];
        let qp = QuantParams::from_range(-1.0, 1.0).unwrap();
        let input = pseudo_tensor(Shape::nchw(1, c, hw, hw), seed)
            .cast(dtype, Some(qp)).unwrap();
        let p = PoolParams {
            kind: if max_pool { PoolKind::Max } else { PoolKind::Avg },
            k, stride, pad,
        };
        let whole = pool2d(&input, &p).unwrap();
        let cut = ((c as f64) * cut_frac).round() as usize;
        let mut parts = Vec::new();
        if cut > 0 {
            parts.push(pool2d(&input.slice_axis(1, 0, cut).unwrap(), &p).unwrap());
        }
        if cut < c {
            parts.push(pool2d(&input.slice_axis(1, cut, c).unwrap(), &p).unwrap());
        }
        let refs: Vec<&Tensor> = parts.iter().collect();
        let merged = Tensor::concat_axis(1, &refs).unwrap();
        prop_assert!(merged.bit_equal(&whole));
    }

    /// QUInt8 conv stays within an analytic error bound of the f32 result.
    fn quint8_conv_error_bounded(
        ic in 1usize..3,
        oc in 1usize..4,
        hw in 3usize..7,
        k in 1usize..4,
        seed in 0usize..1000,
    ) {
        prop_assume!(hw >= k);
        let input = pseudo_tensor(Shape::nchw(1, ic, hw, hw), seed);
        let filters = pseudo_tensor(Shape::oihw(oc, ic, k, k), seed + 3);
        let p = Conv2dParams { stride: 1, pad: 0, relu: false };
        let f_out = conv2d(&input, &filters, None, &p, None).unwrap();
        let qp = QuantParams::from_range(-1.0, 1.0).unwrap();
        let out_p = QuantParams::from_data(f_out.as_f32().unwrap()).unwrap();
        let q_in = input.cast(DType::QUInt8, Some(qp)).unwrap();
        let q_f = filters.cast(DType::QUInt8, Some(qp)).unwrap();
        let q_out = conv2d(&q_in, &q_f, None, &p, Some(out_p)).unwrap();
        // Each of the ic*k*k accumulated products carries at most
        // (|a| * sb/2 + |b| * sa/2 + sa*sb/4) error; |a|,|b| <= 1.
        let terms = (ic * k * k) as f32;
        let bound = terms * (qp.scale + qp.scale * qp.scale) + out_p.scale;
        prop_assert!(q_out.max_abs_diff(&f_out) <= bound,
            "diff = {}, bound = {bound}", q_out.max_abs_diff(&f_out));
    }
}
