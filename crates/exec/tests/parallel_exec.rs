//! Integration tests of the parallel backend: bit-reproducibility
//! across thread counts and against the sequential evaluator, plus the
//! measurement harness end to end.

use uexec::{measure, ExecConfig, MeasureConfig, ParallelBackend, PoolMode};
use unn::{Calibration, Graph, ModelId, Weights};
use uruntime::{
    evaluate_plan, evaluate_plan_with_backend, single_processor_plan, ExecutionPlan, NodePlacement,
};
use usoc::{DtypePlan, SocSpec};
use utensor::{DType, Tensor};

fn setup() -> (Graph, Weights, Calibration, Tensor) {
    let g = ModelId::SqueezeNet.build_miniature();
    let w = Weights::random(&g, 5).unwrap();
    let shape = g.input_shape().clone();
    let x = Tensor::from_f32(
        shape.clone(),
        (0..shape.numel())
            .map(|i| (((i * 31) % 200) as f32) / 100.0 - 1.0)
            .collect(),
    )
    .unwrap();
    let calib = unn::calibrate(&g, &w, std::slice::from_ref(&x)).unwrap();
    (g, w, calib, x)
}

/// A cooperative split plan: every distributable layer shared between
/// CPU and GPU in the given dtype plans.
fn split_plan(
    g: &Graph,
    spec: &SocSpec,
    cpu_dt: DtypePlan,
    gpu_dt: DtypePlan,
    label: &str,
) -> ExecutionPlan {
    ExecutionPlan::new(
        g,
        spec,
        g.nodes()
            .iter()
            .map(|n| {
                if n.kind.is_distributable() {
                    NodePlacement::Split {
                        parts: vec![(spec.cpu(), cpu_dt, 0.5), (spec.gpu(), gpu_dt, 0.5)],
                    }
                } else {
                    NodePlacement::single(spec.cpu(), DType::QUInt8)
                }
            })
            .collect(),
        label,
    )
    .unwrap()
}

#[test]
fn parallel_quint8_bit_identical_to_sequential_at_any_thread_count() {
    // The headline invariant: integer arithmetic is associative, so the
    // worker pools — blocked kernels, per-worker chunking and all —
    // must reproduce the sequential evaluator bit for bit.
    let (g, w, calib, x) = setup();
    let spec = SocSpec::exynos_7420();
    let plan = split_plan(
        &g,
        &spec,
        DtypePlan::uniform(DType::QUInt8),
        DtypePlan::uniform(DType::QUInt8),
        "q8-split",
    );
    let want = evaluate_plan(&g, &plan, &w, &calib, &x).unwrap();
    for threads in [1, 2, 4] {
        let backend = ParallelBackend::new(
            &spec,
            &ExecConfig::with_threads(threads),
            PoolMode::Cooperative,
        );
        let got = evaluate_plan_with_backend(&g, &plan, &w, &calib, &x, &backend).unwrap();
        assert_eq!(want.len(), got.len());
        for (node, (a, b)) in want.iter().zip(&got).enumerate() {
            assert!(
                a.bit_equal(b),
                "threads={threads}: node {node} diverged from sequential reference"
            );
        }
    }
}

#[test]
fn parallel_execution_deterministic_across_thread_counts() {
    // Mixed-precision (CPU QUInt8 + GPU F16) outputs must not depend on
    // how many workers each pool has: chunking splits GEMM rows, and a
    // row's accumulation order depends only on the K-panel size.
    let (g, w, calib, x) = setup();
    let spec = SocSpec::exynos_7420();
    let plan = split_plan(
        &g,
        &spec,
        DtypePlan::proc_friendly_cpu(),
        DtypePlan::proc_friendly_gpu(),
        "ulayer-split",
    );
    let reference = {
        let backend =
            ParallelBackend::new(&spec, &ExecConfig::with_threads(1), PoolMode::Cooperative);
        evaluate_plan_with_backend(&g, &plan, &w, &calib, &x, &backend).unwrap()
    };
    for threads in [2, 4] {
        let backend = ParallelBackend::new(
            &spec,
            &ExecConfig::with_threads(threads),
            PoolMode::Cooperative,
        );
        let got = evaluate_plan_with_backend(&g, &plan, &w, &calib, &x, &backend).unwrap();
        for (node, (a, b)) in reference.iter().zip(&got).enumerate() {
            assert!(
                a.bit_equal(b),
                "threads={threads}: node {node} not deterministic"
            );
        }
    }
}

#[test]
fn single_pool_mode_matches_cooperative_bitwise() {
    // Pool routing is a scheduling choice, never a numeric one.
    let (g, w, calib, x) = setup();
    let spec = SocSpec::exynos_7420();
    let plan = split_plan(
        &g,
        &spec,
        DtypePlan::proc_friendly_cpu(),
        DtypePlan::proc_friendly_gpu(),
        "ulayer-split",
    );
    let coop = ParallelBackend::new(&spec, &ExecConfig::with_threads(2), PoolMode::Cooperative);
    let single = ParallelBackend::new(&spec, &ExecConfig::with_threads(2), PoolMode::SinglePool);
    let a = evaluate_plan_with_backend(&g, &plan, &w, &calib, &x, &coop).unwrap();
    let b = evaluate_plan_with_backend(&g, &plan, &w, &calib, &x, &single).unwrap();
    for (node, (ta, tb)) in a.iter().zip(&b).enumerate() {
        assert!(ta.bit_equal(tb), "node {node} differs between pool modes");
    }
    assert_eq!(uruntime::ExecBackend::name(&coop), "parallel-cooperative");
    assert_eq!(uruntime::ExecBackend::name(&single), "parallel-single-pool");
}

#[test]
fn backend_records_per_node_timings() {
    let (g, w, calib, x) = setup();
    let spec = SocSpec::exynos_7420();
    let plan = split_plan(
        &g,
        &spec,
        DtypePlan::proc_friendly_cpu(),
        DtypePlan::proc_friendly_gpu(),
        "ulayer-split",
    );
    let backend = ParallelBackend::new(&spec, &ExecConfig::with_threads(2), PoolMode::Cooperative);
    evaluate_plan_with_backend(&g, &plan, &w, &calib, &x, &backend).unwrap();
    let timings = backend.take_timings();
    assert_eq!(timings.len(), g.len(), "one timing record per node");
    for t in &timings {
        assert!(t.wall_s >= 0.0);
        assert!(!t.parts.is_empty());
        for p in &t.parts {
            assert!(p.seconds >= 0.0 && p.seconds <= t.wall_s + 1e-9);
            assert!(p.chunks >= 1);
        }
    }
    // Draining leaves the buffer empty.
    assert!(backend.take_timings().is_empty());
}

#[test]
fn measure_reports_speedups_and_samples() {
    let (g, w, calib, x) = setup();
    let spec = SocSpec::exynos_7420();
    let coop_plan = split_plan(
        &g,
        &spec,
        DtypePlan::proc_friendly_cpu(),
        DtypePlan::proc_friendly_gpu(),
        "ulayer-split",
    );
    let single_plan = single_processor_plan(&g, &spec, spec.cpu(), DType::QUInt8).unwrap();
    let report = measure(
        &spec,
        &g,
        &w,
        &calib,
        &x,
        &coop_plan,
        &single_plan,
        &MeasureConfig {
            threads: 2,
            repeat: 1,
            kernel_path: ukernels::PathChoice::Auto,
        },
    )
    .unwrap();
    assert_eq!(report.layers.len(), g.len());
    assert!(report.coop_total_s > 0.0);
    assert!(report.single_total_s > 0.0);
    assert!(report.measured_speedup.is_finite() && report.measured_speedup > 0.0);
    // A naive 50/50 split of a miniature net need not model faster than
    // the CPU baseline (map/unmap overheads dominate tiny layers) — but
    // the ratio must be a sane positive number.
    assert!(report.modeled_speedup.is_finite() && report.modeled_speedup > 0.0);
    // Every cooperative part contributed a calibration sample, and split
    // layers contributed one per part.
    assert!(report.samples.len() >= g.len());
    assert!(report.samples.iter().any(|s| s.macs > 0));
    assert!(report.samples.iter().all(|s| s.seconds >= 0.0));
    assert_eq!(report.threads, 2);
    assert_eq!(report.model, g.name());
    // The report names the kernel path the workers resolved to and the
    // features that drove the resolution.
    assert_eq!(report.kernel_path_requested, "auto");
    let expect = if ukernels::simd_available() {
        "simd"
    } else {
        "scalar"
    };
    assert_eq!(report.kernel_path, expect);
    assert!(!report.cpu_features.is_empty());
    assert!(report.direct_conv);
}

#[test]
fn measure_scalar_path_reproduces_baseline_config() {
    let (g, w, calib, x) = setup();
    let spec = SocSpec::exynos_7420();
    let coop_plan = split_plan(
        &g,
        &spec,
        DtypePlan::proc_friendly_cpu(),
        DtypePlan::proc_friendly_gpu(),
        "ulayer-split",
    );
    let single_plan = single_processor_plan(&g, &spec, spec.cpu(), DType::QUInt8).unwrap();
    let report = measure(
        &spec,
        &g,
        &w,
        &calib,
        &x,
        &coop_plan,
        &single_plan,
        &MeasureConfig {
            threads: 1,
            repeat: 1,
            kernel_path: ukernels::PathChoice::Scalar,
        },
    )
    .unwrap();
    assert_eq!(report.kernel_path_requested, "scalar");
    assert_eq!(report.kernel_path, "scalar");
    // Forcing scalar also turns the direct conv kernels off — the exact
    // measurement configuration of the pre-SIMD baseline.
    assert!(!report.direct_conv);
    // Samples come from every repetition of both plans.
    assert!(report.samples.len() >= 2 * g.len());
}
