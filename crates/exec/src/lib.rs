//! Real parallel execution: worker pools, blocked kernels, wall-clock
//! measurement.
//!
//! Everything else in the repo *simulates* the SoC; this crate runs the
//! same plans on actual host threads:
//!
//! - [`pool`] — scoped worker pools for the two compute clusters, with
//!   join-based layer barriers ([`Engine::run_pair`]).
//! - [`backend`] — the [`ParallelBackend`] implementing
//!   `uruntime::ExecBackend`: parts routed to their cluster's pool,
//!   channel ranges subdivided per worker, outputs merged bit-exactly.
//! - [`measure`] — best-of-N wall-clock measurement of cooperative vs
//!   single-processor plans, producing per-part samples that calibrate
//!   the latency predictor (`repro measure`).
//!
//! The crate is std-only, like the rest of the workspace.

pub mod backend;
pub mod measure;
pub mod pool;

pub use backend::{NodeTiming, ParallelBackend, PartTiming, PoolMode};
pub use measure::{measure, LayerRow, MeasureConfig, MeasureError, MeasureReport, PartSample};
pub use pool::{Engine, ExecConfig, ScopedTask, WorkerPool};
