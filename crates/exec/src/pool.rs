//! Scoped worker pools emulating the SoC's two compute clusters.
//!
//! μLayer executes one layer's parts *simultaneously* on the big-core CPU
//! cluster and the GPU (§3.2, §6). On the host, each cluster becomes a
//! [`WorkerPool`] of persistent threads with its own run queue; the
//! [`Engine`] owns one pool per cluster and offers [`Engine::run_pair`],
//! which submits a CPU batch and a GPU batch together and blocks until
//! *both* drained — the join is the layer barrier, mirroring the map/unmap
//! sync points that end every cooperative layer in the real runtime.
//!
//! The pools run borrowed (scoped) closures: `run`/`run_pair` block until
//! every submitted task has finished, which is what makes handing a
//! non-`'static` closure to a persistent thread sound. Worker panics are
//! caught per-task and re-raised on the submitting thread after the
//! batch drains, so a crashing kernel cannot poison the pool or deadlock
//! the barrier.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use ukernels::PathChoice;

/// A borrowed task: valid for `'s`, run to completion before the
/// submitting call returns.
pub type ScopedTask<'s> = Box<dyn FnOnce() + Send + 's>;

type StaticTask = Box<dyn FnOnce() + Send + 'static>;

/// Pool sizes for the two clusters.
///
/// `UEXEC_THREADS` overrides both counts (the knob the `repro measure`
/// CLI exposes as `--threads=`); otherwise each pool gets
/// `min(available_parallelism, 4)` workers — four being the big-core
/// cluster size of both evaluated SoCs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecConfig {
    /// Workers in the CPU (big-core cluster) pool.
    pub cpu_threads: usize,
    /// Workers in the GPU-emulating pool.
    pub gpu_threads: usize,
    /// Requested inner-kernel path for every worker of both pools
    /// (resolved against runtime CPU detection at the register tile).
    pub kernel_path: PathChoice,
}

impl ExecConfig {
    /// Both pools sized to `threads` (clamped to at least 1), kernel
    /// path from the environment (`UKERNELS_KERNEL_PATH`, else auto).
    pub fn with_threads(threads: usize) -> ExecConfig {
        let t = threads.max(1);
        ExecConfig {
            cpu_threads: t,
            gpu_threads: t,
            kernel_path: PathChoice::from_env(),
        }
    }

    /// Returns the config with the kernel path replaced.
    pub fn with_kernel_path(mut self, path: PathChoice) -> ExecConfig {
        self.kernel_path = path;
        self
    }

    /// Whether workers route depthwise and 1×1 convolutions through the
    /// direct (im2col-free) kernels: on for `auto`/`simd`, off for
    /// `scalar` — so `--kernel-path=scalar` reproduces the PR 5
    /// blocked-scalar baseline exactly.
    pub fn direct_conv(&self) -> bool {
        self.kernel_path != PathChoice::Scalar
    }

    /// Reads `UEXEC_THREADS`, falling back to
    /// `min(available_parallelism, 4)`.
    pub fn from_env() -> ExecConfig {
        let t = std::env::var("UEXEC_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get().min(4))
                    .unwrap_or(1)
            });
        ExecConfig::with_threads(t)
    }
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig::from_env()
    }
}

/// One batch in flight: tasks remaining and any panic payloads.
struct Batch {
    remaining: Mutex<usize>,
    drained: Condvar,
    panics: Mutex<Vec<Box<dyn std::any::Any + Send>>>,
}

impl Batch {
    fn new(n: usize) -> Arc<Batch> {
        Arc::new(Batch {
            remaining: Mutex::new(n),
            drained: Condvar::new(),
            panics: Mutex::new(Vec::new()),
        })
    }

    fn task_done(&self) {
        let mut r = self.remaining.lock().unwrap();
        *r -= 1;
        if *r == 0 {
            self.drained.notify_all();
        }
    }

    fn wait(&self) {
        let mut r = self.remaining.lock().unwrap();
        while *r > 0 {
            r = self.drained.wait(r).unwrap();
        }
    }

    /// Re-raises the first captured worker panic, if any.
    fn propagate(&self) {
        let first = {
            let mut panics = self.panics.lock().unwrap();
            if panics.is_empty() {
                None
            } else {
                Some(panics.remove(0))
            }
        };
        if let Some(payload) = first {
            resume_unwind(payload);
        }
    }
}

struct PoolShared {
    queue: Mutex<VecDeque<StaticTask>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// A named pool of persistent worker threads with one run queue.
pub struct WorkerPool {
    name: String,
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (at least one). `init` runs once on each
    /// worker before it starts pulling tasks — the exec backend uses it
    /// to switch the worker's kernels to the blocked implementations.
    pub fn new(name: &str, threads: usize, init: impl Fn() + Send + Sync + 'static) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let init = Arc::new(init);
        let workers = (0..threads.max(1))
            .map(|w| {
                let shared = Arc::clone(&shared);
                let init = Arc::clone(&init);
                std::thread::Builder::new()
                    .name(format!("uexec-{name}-{w}"))
                    .spawn(move || {
                        init();
                        worker_loop(&shared);
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            name: name.to_string(),
            shared,
            workers,
        }
    }

    /// The pool's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs a batch of borrowed tasks to completion (the single-pool
    /// layer barrier). Panics from workers are re-raised here.
    pub fn run<'s>(&self, tasks: Vec<ScopedTask<'s>>) {
        let batch = Batch::new(tasks.len());
        self.submit(tasks, &batch);
        batch.wait();
        batch.propagate();
    }

    /// Enqueues a batch without waiting. Callers must `wait` on the batch
    /// before the tasks' borrows end — `run`/`run_pair` do exactly that.
    fn submit<'s>(&self, tasks: Vec<ScopedTask<'s>>, batch: &Arc<Batch>) {
        let mut queue = self.shared.queue.lock().unwrap();
        for task in tasks {
            // SAFETY: every path that submits also blocks on
            // `batch.wait()` before returning (see `run` / `run_pair`),
            // so the task cannot be referenced after `'s` ends.
            let task: StaticTask =
                unsafe { std::mem::transmute::<ScopedTask<'s>, StaticTask>(task) };
            let b = Arc::clone(batch);
            queue.push_back(Box::new(move || {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                    b.panics.lock().unwrap().push(payload);
                }
                b.task_done();
            }));
        }
        drop(queue);
        self.shared.available.notify_all();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let task = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(task) = queue.pop_front() {
                    break task;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.available.wait(queue).unwrap();
            }
        };
        task();
    }
}

/// The two-cluster execution engine: a CPU pool and a GPU pool.
pub struct Engine {
    cpu: WorkerPool,
    gpu: WorkerPool,
}

impl Engine {
    /// Builds the two pools. `init` runs once on every worker of both
    /// pools.
    pub fn new(cfg: &ExecConfig, init: impl Fn() + Send + Sync + Clone + 'static) -> Engine {
        Engine {
            cpu: WorkerPool::new("cpu", cfg.cpu_threads, init.clone()),
            gpu: WorkerPool::new("gpu", cfg.gpu_threads, init),
        }
    }

    /// The CPU (big-core cluster) pool.
    pub fn cpu(&self) -> &WorkerPool {
        &self.cpu
    }

    /// The GPU-emulating pool.
    pub fn gpu(&self) -> &WorkerPool {
        &self.gpu
    }

    /// Runs a CPU batch and a GPU batch *concurrently* and blocks until
    /// both drained — one cooperative layer execution ending at its
    /// barrier. Panics from either pool are re-raised here.
    pub fn run_pair<'s>(&self, cpu_tasks: Vec<ScopedTask<'s>>, gpu_tasks: Vec<ScopedTask<'s>>) {
        let cpu_batch = Batch::new(cpu_tasks.len());
        let gpu_batch = Batch::new(gpu_tasks.len());
        self.cpu.submit(cpu_tasks, &cpu_batch);
        self.gpu.submit(gpu_tasks, &gpu_batch);
        cpu_batch.wait();
        gpu_batch.wait();
        cpu_batch.propagate();
        gpu_batch.propagate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn config_clamps_and_reads_threads() {
        assert_eq!(ExecConfig::with_threads(0).cpu_threads, 1);
        let c = ExecConfig::with_threads(3);
        assert_eq!((c.cpu_threads, c.gpu_threads), (3, 3));
    }

    #[test]
    fn pool_runs_borrowed_tasks_to_completion() {
        let pool = WorkerPool::new("t", 2, || {});
        let hits = AtomicUsize::new(0);
        let tasks: Vec<ScopedTask<'_>> = (0..16)
            .map(|_| {
                Box::new(|| {
                    hits.fetch_add(1, Ordering::SeqCst);
                }) as ScopedTask<'_>
            })
            .collect();
        pool.run(tasks);
        // `run` returned, so every borrow of `hits` is finished.
        assert_eq!(hits.load(Ordering::SeqCst), 16);
        assert_eq!(pool.threads(), 2);
        assert_eq!(pool.name(), "t");
    }

    #[test]
    fn pool_reuses_persistent_workers_across_batches() {
        let pool = WorkerPool::new("t", 1, || {});
        let count = AtomicUsize::new(0);
        for _ in 0..10 {
            pool.run(vec![Box::new(|| {
                count.fetch_add(1, Ordering::SeqCst);
            })]);
        }
        assert_eq!(count.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new("t", 2, || {});
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(vec![Box::new(|| panic!("kernel exploded"))]);
        }));
        assert!(caught.is_err(), "panic must reach the submitter");
        // The pool still works afterwards.
        let ok = AtomicUsize::new(0);
        pool.run(vec![Box::new(|| {
            ok.fetch_add(1, Ordering::SeqCst);
        })]);
        assert_eq!(ok.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn run_pair_joins_both_pools() {
        let engine = Engine::new(&ExecConfig::with_threads(2), || {});
        let cpu_done = AtomicUsize::new(0);
        let gpu_done = AtomicUsize::new(0);
        let cpu: Vec<ScopedTask<'_>> = (0..8)
            .map(|_| {
                Box::new(|| {
                    cpu_done.fetch_add(1, Ordering::SeqCst);
                }) as ScopedTask<'_>
            })
            .collect();
        let gpu: Vec<ScopedTask<'_>> = (0..8)
            .map(|_| {
                Box::new(|| {
                    gpu_done.fetch_add(1, Ordering::SeqCst);
                }) as ScopedTask<'_>
            })
            .collect();
        engine.run_pair(cpu, gpu);
        assert_eq!(cpu_done.load(Ordering::SeqCst), 8);
        assert_eq!(gpu_done.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn init_runs_on_every_worker() {
        let inits = Arc::new(AtomicUsize::new(0));
        let i2 = Arc::clone(&inits);
        let pool = WorkerPool::new("t", 3, move || {
            i2.fetch_add(1, Ordering::SeqCst);
        });
        // Drain a trivial batch so workers are definitely up.
        pool.run(vec![Box::new(|| {})]);
        assert_eq!(inits.load(Ordering::SeqCst), 3);
    }
}
