//! The parallel [`ExecBackend`]: real threads behind the plan evaluator.
//!
//! Each node's [`PartTask`] batch is executed on the engine's worker
//! pools: CPU-placed parts on the CPU pool, GPU-placed parts on the
//! GPU-emulating pool, concurrently (the §3.2 cooperative execution).
//! Within a part, the backend subdivides the channel range into
//! per-worker chunks — the same Filters/InputChannels slicing the plan
//! itself uses, one level finer — so a four-worker pool computes four
//! disjoint row blocks of the same GEMM. Chunk outputs are concatenated
//! in channel order.
//!
//! Chunking preserves the numerics exactly: every output channel is
//! computed by the same arithmetic regardless of which chunk owns it
//! (channel-wise kernels are row-independent, and the blocked GEMMs'
//! accumulation order depends only on the K-panel size, never on the
//! row range). QUInt8 results are bit-identical to the sequential
//! evaluator at any thread count; float results are bit-identical
//! across thread counts. The integration tests pin both properties.

use std::sync::Mutex;
use std::time::Instant;

use uruntime::{eval_part_task, split_axis, ExecBackend, PartTask, SplitAxis};
use usoc::{DeviceId, SocSpec};
use utensor::{Tensor, TensorError};

use crate::pool::{Engine, ExecConfig, ScopedTask};

/// How the engine's pools are used for a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolMode {
    /// CPU parts on the CPU pool, GPU parts on the GPU pool, running
    /// concurrently (μLayer's cooperative single-layer acceleration).
    Cooperative,
    /// Everything on the CPU pool (the single-processor baseline the
    /// measured speedup is reported against).
    SinglePool,
}

/// Wall-clock timing of one part within a node's barrier-to-barrier
/// execution.
#[derive(Clone, Debug)]
pub struct PartTiming {
    /// The part's index in the node placement.
    pub part_index: usize,
    /// The processor the plan assigned the part to.
    pub device: DeviceId,
    /// Wall span from the part's first chunk starting to its last chunk
    /// finishing, in seconds.
    pub seconds: f64,
    /// Number of per-worker chunks the part was subdivided into.
    pub chunks: usize,
}

/// Wall-clock timing of one node (one layer barrier).
#[derive(Clone, Debug)]
pub struct NodeTiming {
    /// Graph node index.
    pub node: usize,
    /// Wall seconds from batch submit to the barrier (all parts done).
    pub wall_s: f64,
    /// Per-part spans.
    pub parts: Vec<PartTiming>,
}

/// An [`ExecBackend`] that runs parts on real worker threads.
pub struct ParallelBackend {
    engine: Engine,
    mode: PoolMode,
    gpu_id: DeviceId,
    timings: Mutex<Vec<NodeTiming>>,
}

impl ParallelBackend {
    /// Builds the backend for `spec`'s CPU/GPU pair. Workers switch to
    /// the cache-blocked kernels once at spawn and take the config's
    /// kernel path (scalar or SIMD register tiles) and direct-conv
    /// routing; all three knobs are thread-local, so nothing outside the
    /// pools changes.
    pub fn new(spec: &SocSpec, cfg: &ExecConfig, mode: PoolMode) -> ParallelBackend {
        let (path, direct) = (cfg.kernel_path, cfg.direct_conv());
        let engine = Engine::new(cfg, move || {
            ukernels::set_blocked_kernels(true);
            ukernels::set_kernel_path(path);
            ukernels::set_direct_conv(direct);
        });
        ParallelBackend {
            engine,
            mode,
            gpu_id: spec.gpu(),
            timings: Mutex::new(Vec::new()),
        }
    }

    /// Pool mode of this backend.
    pub fn mode(&self) -> PoolMode {
        self.mode
    }

    /// Drains the per-node timings recorded since the last call (in
    /// execution order). The measurement harness calls this after each
    /// forward pass.
    pub fn take_timings(&self) -> Vec<NodeTiming> {
        std::mem::take(&mut self.timings.lock().unwrap())
    }

    /// True when this task routes to the GPU pool.
    fn on_gpu(&self, device: DeviceId) -> bool {
        self.mode == PoolMode::Cooperative && device == self.gpu_id
    }

    /// Workers available to the pool `device` routes to.
    fn workers_for(&self, device: DeviceId) -> usize {
        if self.on_gpu(device) {
            self.engine.gpu().threads()
        } else {
            self.engine.cpu().threads()
        }
    }

    /// Subdivides one part's channel range into up to `workers` chunks
    /// (each chunk a narrower [`PartTask`] over the same borrows).
    /// Non-splittable kinds and single-worker pools get the task back
    /// unchanged.
    fn plan_chunks<'a>(&self, task: &PartTask<'a>, workers: usize) -> Vec<PartTask<'a>> {
        let Some(axis) = split_axis(task.kind) else {
            return vec![task.clone()];
        };
        let (lo, hi) = match task.split {
            Some((_, lo, hi)) => (lo, hi),
            None => {
                let x = task.inputs[0];
                let channels =
                    usoc::split_channel_count(task.kind, x.shape()).unwrap_or_else(|| match axis {
                        SplitAxis::Filters => task.filter.map(|f| f.shape().dim(0)).unwrap_or(0),
                        SplitAxis::InputChannels => x.shape().c(),
                    });
                (0, channels)
            }
        };
        let n = hi - lo;
        let chunks = workers.min(n);
        if chunks <= 1 {
            return vec![task.clone()];
        }
        let fracs = vec![1.0 / chunks as f64; chunks];
        let cuts = usoc::split_cuts(n, &fracs);
        (0..chunks)
            .filter(|&c| cuts[c] < cuts[c + 1])
            .map(|c| {
                let mut sub = task.clone();
                sub.split = Some((axis, lo + cuts[c], lo + cuts[c + 1]));
                sub
            })
            .collect()
    }
}

impl ExecBackend for ParallelBackend {
    fn name(&self) -> &str {
        match self.mode {
            PoolMode::Cooperative => "parallel-cooperative",
            PoolMode::SinglePool => "parallel-single-pool",
        }
    }

    fn run_node(&self, tasks: &[PartTask<'_>]) -> Result<Vec<Tensor>, TensorError> {
        if tasks.is_empty() {
            return Ok(Vec::new());
        }
        let t0 = Instant::now();

        // Plan chunks for every part, flattened part-major so slot index
        // order matches (part, chunk) order.
        let mut chunk_counts = Vec::with_capacity(tasks.len());
        let mut flat: Vec<(usize, PartTask<'_>)> = Vec::new();
        for (pi, task) in tasks.iter().enumerate() {
            let chunks = self.plan_chunks(task, self.workers_for(task.device));
            chunk_counts.push(chunks.len());
            flat.extend(chunks.into_iter().map(|c| (pi, c)));
        }

        let slots: Vec<Mutex<Option<Tensor>>> = (0..flat.len()).map(|_| Mutex::new(None)).collect();
        let first_err: Mutex<Option<TensorError>> = Mutex::new(None);
        // (part index, start, end) offsets from t0, per chunk.
        let spans: Mutex<Vec<(usize, f64, f64)>> = Mutex::new(Vec::new());

        let mut cpu_jobs: Vec<ScopedTask<'_>> = Vec::new();
        let mut gpu_jobs: Vec<ScopedTask<'_>> = Vec::new();
        for (si, (pi, sub)) in flat.iter().enumerate() {
            let slots = &slots;
            let first_err = &first_err;
            let spans = &spans;
            let job: ScopedTask<'_> = Box::new(move || {
                let start = t0.elapsed().as_secs_f64();
                match eval_part_task(sub) {
                    Ok(t) => *slots[si].lock().unwrap() = Some(t),
                    Err(e) => {
                        let mut g = first_err.lock().unwrap();
                        if g.is_none() {
                            *g = Some(e);
                        }
                    }
                }
                let end = t0.elapsed().as_secs_f64();
                spans.lock().unwrap().push((*pi, start, end));
            });
            if self.on_gpu(sub.device) {
                gpu_jobs.push(job);
            } else {
                cpu_jobs.push(job);
            }
        }

        // The layer barrier: both pools drained before merging.
        self.engine.run_pair(cpu_jobs, gpu_jobs);

        if let Some(e) = first_err.into_inner().unwrap() {
            return Err(e);
        }
        let spans = spans.into_inner().unwrap();

        let mut outs = Vec::with_capacity(tasks.len());
        let mut part_timings = Vec::with_capacity(tasks.len());
        let mut base = 0;
        for (pi, task) in tasks.iter().enumerate() {
            let n = chunk_counts[pi];
            let mut chunks: Vec<Tensor> = Vec::with_capacity(n);
            for slot in &slots[base..base + n] {
                chunks.push(
                    slot.lock()
                        .unwrap()
                        .take()
                        .expect("no error reported, so every chunk produced a tensor"),
                );
            }
            base += n;
            outs.push(if chunks.len() == 1 {
                chunks.pop().expect("len checked")
            } else {
                let refs: Vec<&Tensor> = chunks.iter().collect();
                Tensor::concat_axis(1, &refs)?
            });
            let (mut start, mut end) = (f64::INFINITY, 0.0f64);
            for &(p, s, e) in &spans {
                if p == pi {
                    start = start.min(s);
                    end = end.max(e);
                }
            }
            part_timings.push(PartTiming {
                part_index: task.part_index,
                device: task.device,
                seconds: (end - start).max(0.0),
                chunks: n,
            });
        }

        self.timings.lock().unwrap().push(NodeTiming {
            node: tasks[0].node.0,
            wall_s: t0.elapsed().as_secs_f64(),
            parts: part_timings,
        });
        Ok(outs)
    }
}
