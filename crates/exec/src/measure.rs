//! Wall-clock measurement of plan execution on the worker pools.
//!
//! The simulator half of the repo *models* latency; this harness
//! *measures* it: it runs a cooperative plan and a single-processor
//! plan through the [`ParallelBackend`] on real threads, times every
//! layer barrier, and pairs each part's wall time with its analytic
//! work summary (`usoc::layer_work`). The paired samples feed
//! `LatencyPredictor::fit_from_measurements`, closing the loop the
//! paper closes on real hardware: the predictor is calibrated from the
//! same timer the runtime schedules by.
//!
//! Each plan runs `repeat` times and the fastest repetition is kept
//! (standard practice for wall-clock microbenchmarks — the minimum is
//! the least noisy estimator of the achievable time). Calibration
//! samples apply the same principle per part: each part's sample is its
//! *minimum* wall time across the repetitions (scheduler hiccups on a
//! shared host otherwise swamp the microsecond-scale kernels), and both
//! plans contribute — the single-pool run adds whole-layer (frac = 1.0)
//! points the split cooperative run never produces, which is what lets
//! small (device, class, dtype) groups constrain a slope.

use unn::{Calibration, Graph, Weights};
use uruntime::{evaluate_plan_with_backend, execute_plan, ExecutionPlan, RunError};
use usoc::{DeviceId, DtypePlan, SocSpec, WorkClass};
use utensor::{DType, Tensor, TensorError};

use ukernels::PathChoice;

use crate::backend::{NodeTiming, ParallelBackend, PoolMode};
use crate::pool::ExecConfig;

/// Knobs of one measurement run.
#[derive(Clone, Copy, Debug)]
pub struct MeasureConfig {
    /// Worker threads per pool.
    pub threads: usize,
    /// Repetitions per plan (best-of). Clamped to at least 1.
    pub repeat: usize,
    /// Requested kernel path for the worker pools (`--kernel-path`).
    /// `Scalar` also disables the direct conv kernels, reproducing the
    /// PR 5 measurement path exactly.
    pub kernel_path: PathChoice,
}

impl Default for MeasureConfig {
    fn default() -> MeasureConfig {
        MeasureConfig {
            threads: ExecConfig::from_env().cpu_threads,
            repeat: 3,
            kernel_path: PathChoice::from_env(),
        }
    }
}

/// Errors of the measurement harness.
#[derive(Debug)]
pub enum MeasureError {
    /// Numeric evaluation failed.
    Tensor(TensorError),
    /// The modeled (simulated) run failed.
    Run(RunError),
}

impl std::fmt::Display for MeasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasureError::Tensor(e) => write!(f, "measurement evaluation failed: {e}"),
            MeasureError::Run(e) => write!(f, "modeled run failed: {e}"),
        }
    }
}

impl std::error::Error for MeasureError {}

impl From<TensorError> for MeasureError {
    fn from(e: TensorError) -> MeasureError {
        MeasureError::Tensor(e)
    }
}

impl From<RunError> for MeasureError {
    fn from(e: RunError) -> MeasureError {
        MeasureError::Run(e)
    }
}

/// One measured part execution paired with its analytic work summary —
/// the unit the predictor's measurement-fit consumes.
#[derive(Clone, Debug)]
pub struct PartSample {
    /// Graph node index.
    pub node: usize,
    /// Node name.
    pub name: String,
    /// Layer operation name.
    pub kind: String,
    /// The processor the plan assigned the part to.
    pub device: DeviceId,
    /// Kernel class of the work.
    pub class: WorkClass,
    /// Dtype the arithmetic ran in.
    pub compute_dtype: DType,
    /// Multiply-accumulates of the part.
    pub macs: u64,
    /// Total bytes moved by the part.
    pub bytes: u64,
    /// Measured wall seconds of the part.
    pub seconds: f64,
}

/// Per-layer wall times under both pool modes.
#[derive(Clone, Debug)]
pub struct LayerRow {
    /// Graph node index.
    pub node: usize,
    /// Node name.
    pub name: String,
    /// Layer operation name.
    pub kind: String,
    /// Wall seconds of the layer barrier under the cooperative plan.
    pub coop_s: f64,
    /// Wall seconds under the single-processor plan.
    pub single_s: f64,
}

/// The result of one measurement run.
#[derive(Clone, Debug)]
pub struct MeasureReport {
    /// Network name.
    pub model: String,
    /// Worker threads per pool.
    pub threads: usize,
    /// Repetitions per plan.
    pub repeat: usize,
    /// `available_parallelism` of the measuring host — on a single-core
    /// host the two pools time-share and cooperative execution cannot
    /// beat the single pool, so consumers gate the speedup expectation
    /// on this.
    pub host_parallelism: usize,
    /// Requested kernel path (`auto` / `scalar` / `simd`).
    pub kernel_path_requested: String,
    /// The path the workers actually ran after runtime CPU feature
    /// detection (`scalar` / `simd`) — a forced `simd` request degrades
    /// to `scalar` on hosts without the features.
    pub kernel_path: String,
    /// Detected CPU features relevant to the SIMD tiles (diagnostics).
    pub cpu_features: String,
    /// Whether the direct (im2col-free) depthwise/pointwise kernels were
    /// routed to.
    pub direct_conv: bool,
    /// Labels of the two plans.
    pub coop_label: String,
    /// Label of the single-processor plan.
    pub single_label: String,
    /// Best-of-`repeat` total wall seconds of the cooperative plan.
    pub coop_total_s: f64,
    /// Best-of-`repeat` total wall seconds of the single-processor plan.
    pub single_total_s: f64,
    /// `single_total_s / coop_total_s` (measured on this host).
    pub measured_speedup: f64,
    /// The same ratio from the simulator's latency model.
    pub modeled_speedup: f64,
    /// Per-layer wall times (from the best repetitions).
    pub layers: Vec<LayerRow>,
    /// Per-part samples from every repetition of both plans, for
    /// predictor calibration.
    pub samples: Vec<PartSample>,
}

/// Sum of node wall times of one repetition.
fn total_wall(timings: &[NodeTiming]) -> f64 {
    timings.iter().map(|t| t.wall_s).sum()
}

/// Runs `plan` `repeat` times on `backend`, returning the per-node
/// timings of the fastest repetition plus every repetition's timings
/// (for calibration sampling).
#[allow(clippy::type_complexity)]
fn run_reps(
    graph: &Graph,
    plan: &ExecutionPlan,
    weights: &Weights,
    calib: &Calibration,
    input: &Tensor,
    backend: &ParallelBackend,
    repeat: usize,
) -> Result<(Vec<NodeTiming>, Vec<Vec<NodeTiming>>), TensorError> {
    let mut reps: Vec<Vec<NodeTiming>> = Vec::with_capacity(repeat.max(1));
    for _ in 0..repeat.max(1) {
        evaluate_plan_with_backend(graph, plan, weights, calib, input, backend)?;
        reps.push(backend.take_timings());
    }
    let best = reps
        .iter()
        .min_by(|a, b| total_wall(a).total_cmp(&total_wall(b)))
        .expect("repeat >= 1")
        .clone();
    Ok((best, reps))
}

/// Per-node, per-part minimum wall times across repetitions — the
/// least-noisy per-part estimate (every repetition runs the identical
/// plan, so the timing vectors line up index for index).
fn min_timings(reps: &[Vec<NodeTiming>]) -> Vec<NodeTiming> {
    let mut out = reps[0].clone();
    for rep in &reps[1..] {
        for (acc, t) in out.iter_mut().zip(rep) {
            debug_assert_eq!(acc.node, t.node);
            acc.wall_s = acc.wall_s.min(t.wall_s);
            for (ap, tp) in acc.parts.iter_mut().zip(&t.parts) {
                debug_assert_eq!(ap.part_index, tp.part_index);
                ap.seconds = ap.seconds.min(tp.seconds);
            }
        }
    }
    out
}

/// Pairs every part span in `reps` with its analytic work summary and
/// appends the samples to `out`.
fn collect_samples(
    graph: &Graph,
    shapes: &[utensor::Shape],
    plan: &ExecutionPlan,
    reps: &[Vec<NodeTiming>],
    out: &mut Vec<PartSample>,
) {
    for timing in reps.iter().flatten() {
        let node = &graph.nodes()[timing.node];
        let in_shape = node
            .inputs
            .first()
            .map_or(graph.input_shape(), |d| &shapes[d.0]);
        let out_shape = &shapes[timing.node];
        for part in &timing.parts {
            let (dtypes, frac) = part_config(plan, timing.node, part.part_index);
            let work = usoc::layer_work(&node.kind, in_shape, out_shape, dtypes, frac);
            out.push(PartSample {
                node: timing.node,
                name: node.name.clone(),
                kind: node.kind.op_name().to_string(),
                device: part.device,
                class: work.class,
                compute_dtype: work.compute_dtype,
                macs: work.macs,
                bytes: work.total_bytes(),
                seconds: part.seconds,
            });
        }
    }
}

/// The `(dtypes, frac)` of one part of a node placement.
fn part_config(plan: &ExecutionPlan, node: usize, part_index: usize) -> (DtypePlan, f64) {
    match &plan.placements[node] {
        uruntime::NodePlacement::Single { dtypes, .. } => (*dtypes, 1.0),
        uruntime::NodePlacement::Split { parts } => {
            let (_, dtypes, frac) = parts[part_index];
            (dtypes, frac)
        }
    }
}

/// Measures `coop_plan` against `single_plan` on the worker pools and
/// reports measured and modeled speedups plus per-part samples for
/// predictor calibration.
#[allow(clippy::too_many_arguments)]
pub fn measure(
    spec: &SocSpec,
    graph: &Graph,
    weights: &Weights,
    calib: &Calibration,
    input: &Tensor,
    coop_plan: &ExecutionPlan,
    single_plan: &ExecutionPlan,
    cfg: &MeasureConfig,
) -> Result<MeasureReport, MeasureError> {
    let shapes = graph.infer_shapes()?;
    let exec_cfg = ExecConfig::with_threads(cfg.threads).with_kernel_path(cfg.kernel_path);
    let direct_conv = exec_cfg.direct_conv();
    let coop = ParallelBackend::new(spec, &exec_cfg, PoolMode::Cooperative);
    let single = ParallelBackend::new(spec, &exec_cfg, PoolMode::SinglePool);

    // Warm-up: first run pays thread spawn, arena growth, page faults.
    evaluate_plan_with_backend(graph, coop_plan, weights, calib, input, &coop)?;
    coop.take_timings();
    evaluate_plan_with_backend(graph, single_plan, weights, calib, input, &single)?;
    single.take_timings();

    let (coop_t, coop_reps) = run_reps(graph, coop_plan, weights, calib, input, &coop, cfg.repeat)?;
    let (single_t, single_reps) = run_reps(
        graph,
        single_plan,
        weights,
        calib,
        input,
        &single,
        cfg.repeat,
    )?;

    let layers = graph
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, node)| LayerRow {
            node: i,
            name: node.name.clone(),
            kind: node.kind.op_name().to_string(),
            coop_s: coop_t
                .iter()
                .find(|t| t.node == i)
                .map_or(0.0, |t| t.wall_s),
            single_s: single_t
                .iter()
                .find(|t| t.node == i)
                .map_or(0.0, |t| t.wall_s),
        })
        .collect();

    // Pair every part's best (minimum-across-reps) wall time, from both
    // plans, with its analytic work; the single-pool parts roughly
    // double the points per group so the predictor fit can constrain a
    // slope instead of falling back to a group mean.
    let mut samples = Vec::new();
    collect_samples(
        graph,
        &shapes,
        coop_plan,
        &[min_timings(&coop_reps)],
        &mut samples,
    );
    collect_samples(
        graph,
        &shapes,
        single_plan,
        &[min_timings(&single_reps)],
        &mut samples,
    );

    let coop_total_s = total_wall(&coop_t);
    let single_total_s = total_wall(&single_t);
    let modeled_coop = execute_plan(spec, graph, coop_plan)?.latency.as_secs_f64();
    let modeled_single = execute_plan(spec, graph, single_plan)?
        .latency
        .as_secs_f64();

    Ok(MeasureReport {
        model: graph.name().to_string(),
        threads: cfg.threads,
        repeat: cfg.repeat.max(1),
        host_parallelism: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        kernel_path_requested: cfg.kernel_path.as_str().to_string(),
        kernel_path: cfg.kernel_path.resolve().as_str().to_string(),
        cpu_features: ukernels::cpu_features(),
        direct_conv,
        coop_label: coop_plan.label.clone(),
        single_label: single_plan.label.clone(),
        coop_total_s,
        single_total_s,
        measured_speedup: single_total_s / coop_total_s.max(f64::MIN_POSITIVE),
        modeled_speedup: modeled_single / modeled_coop.max(f64::MIN_POSITIVE),
        layers,
        samples,
    })
}
