//! Wall-clock measurement of plan execution on the worker pools.
//!
//! The simulator half of the repo *models* latency; this harness
//! *measures* it: it runs a cooperative plan and a single-processor
//! plan through the [`ParallelBackend`] on real threads, times every
//! layer barrier, and pairs each part's wall time with its analytic
//! work summary (`usoc::layer_work`). The paired samples feed
//! `LatencyPredictor::fit_from_measurements`, closing the loop the
//! paper closes on real hardware: the predictor is calibrated from the
//! same timer the runtime schedules by.
//!
//! Each plan runs `repeat` times and the fastest repetition is kept
//! (standard practice for wall-clock microbenchmarks — the minimum is
//! the least noisy estimator of the achievable time).

use unn::{Calibration, Graph, Weights};
use uruntime::{evaluate_plan_with_backend, execute_plan, ExecutionPlan, RunError};
use usoc::{DeviceId, DtypePlan, SocSpec, WorkClass};
use utensor::{DType, Tensor, TensorError};

use crate::backend::{NodeTiming, ParallelBackend, PoolMode};
use crate::pool::ExecConfig;

/// Knobs of one measurement run.
#[derive(Clone, Copy, Debug)]
pub struct MeasureConfig {
    /// Worker threads per pool.
    pub threads: usize,
    /// Repetitions per plan (best-of). Clamped to at least 1.
    pub repeat: usize,
}

impl Default for MeasureConfig {
    fn default() -> MeasureConfig {
        MeasureConfig {
            threads: ExecConfig::from_env().cpu_threads,
            repeat: 3,
        }
    }
}

/// Errors of the measurement harness.
#[derive(Debug)]
pub enum MeasureError {
    /// Numeric evaluation failed.
    Tensor(TensorError),
    /// The modeled (simulated) run failed.
    Run(RunError),
}

impl std::fmt::Display for MeasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasureError::Tensor(e) => write!(f, "measurement evaluation failed: {e}"),
            MeasureError::Run(e) => write!(f, "modeled run failed: {e}"),
        }
    }
}

impl std::error::Error for MeasureError {}

impl From<TensorError> for MeasureError {
    fn from(e: TensorError) -> MeasureError {
        MeasureError::Tensor(e)
    }
}

impl From<RunError> for MeasureError {
    fn from(e: RunError) -> MeasureError {
        MeasureError::Run(e)
    }
}

/// One measured part execution paired with its analytic work summary —
/// the unit the predictor's measurement-fit consumes.
#[derive(Clone, Debug)]
pub struct PartSample {
    /// Graph node index.
    pub node: usize,
    /// Node name.
    pub name: String,
    /// Layer operation name.
    pub kind: String,
    /// The processor the plan assigned the part to.
    pub device: DeviceId,
    /// Kernel class of the work.
    pub class: WorkClass,
    /// Dtype the arithmetic ran in.
    pub compute_dtype: DType,
    /// Multiply-accumulates of the part.
    pub macs: u64,
    /// Total bytes moved by the part.
    pub bytes: u64,
    /// Measured wall seconds of the part.
    pub seconds: f64,
}

/// Per-layer wall times under both pool modes.
#[derive(Clone, Debug)]
pub struct LayerRow {
    /// Graph node index.
    pub node: usize,
    /// Node name.
    pub name: String,
    /// Layer operation name.
    pub kind: String,
    /// Wall seconds of the layer barrier under the cooperative plan.
    pub coop_s: f64,
    /// Wall seconds under the single-processor plan.
    pub single_s: f64,
}

/// The result of one measurement run.
#[derive(Clone, Debug)]
pub struct MeasureReport {
    /// Network name.
    pub model: String,
    /// Worker threads per pool.
    pub threads: usize,
    /// Repetitions per plan.
    pub repeat: usize,
    /// `available_parallelism` of the measuring host — on a single-core
    /// host the two pools time-share and cooperative execution cannot
    /// beat the single pool, so consumers gate the speedup expectation
    /// on this.
    pub host_parallelism: usize,
    /// Labels of the two plans.
    pub coop_label: String,
    /// Label of the single-processor plan.
    pub single_label: String,
    /// Best-of-`repeat` total wall seconds of the cooperative plan.
    pub coop_total_s: f64,
    /// Best-of-`repeat` total wall seconds of the single-processor plan.
    pub single_total_s: f64,
    /// `single_total_s / coop_total_s` (measured on this host).
    pub measured_speedup: f64,
    /// The same ratio from the simulator's latency model.
    pub modeled_speedup: f64,
    /// Per-layer wall times (from the best repetitions).
    pub layers: Vec<LayerRow>,
    /// Per-part samples of the cooperative run, for predictor
    /// calibration.
    pub samples: Vec<PartSample>,
}

/// Sum of node wall times of one repetition.
fn total_wall(timings: &[NodeTiming]) -> f64 {
    timings.iter().map(|t| t.wall_s).sum()
}

/// Runs `plan` `repeat` times on `backend`, returning the per-node
/// timings of the fastest repetition.
fn run_best(
    graph: &Graph,
    plan: &ExecutionPlan,
    weights: &Weights,
    calib: &Calibration,
    input: &Tensor,
    backend: &ParallelBackend,
    repeat: usize,
) -> Result<Vec<NodeTiming>, TensorError> {
    let mut best: Option<Vec<NodeTiming>> = None;
    for _ in 0..repeat.max(1) {
        evaluate_plan_with_backend(graph, plan, weights, calib, input, backend)?;
        let timings = backend.take_timings();
        let better = best
            .as_ref()
            .is_none_or(|b| total_wall(&timings) < total_wall(b));
        if better {
            best = Some(timings);
        }
    }
    Ok(best.expect("repeat >= 1"))
}

/// The `(dtypes, frac)` of one part of a node placement.
fn part_config(plan: &ExecutionPlan, node: usize, part_index: usize) -> (DtypePlan, f64) {
    match &plan.placements[node] {
        uruntime::NodePlacement::Single { dtypes, .. } => (*dtypes, 1.0),
        uruntime::NodePlacement::Split { parts } => {
            let (_, dtypes, frac) = parts[part_index];
            (dtypes, frac)
        }
    }
}

/// Measures `coop_plan` against `single_plan` on the worker pools and
/// reports measured and modeled speedups plus per-part samples for
/// predictor calibration.
#[allow(clippy::too_many_arguments)]
pub fn measure(
    spec: &SocSpec,
    graph: &Graph,
    weights: &Weights,
    calib: &Calibration,
    input: &Tensor,
    coop_plan: &ExecutionPlan,
    single_plan: &ExecutionPlan,
    cfg: &MeasureConfig,
) -> Result<MeasureReport, MeasureError> {
    let shapes = graph.infer_shapes()?;
    let exec_cfg = ExecConfig::with_threads(cfg.threads);
    let coop = ParallelBackend::new(spec, &exec_cfg, PoolMode::Cooperative);
    let single = ParallelBackend::new(spec, &exec_cfg, PoolMode::SinglePool);

    // Warm-up: first run pays thread spawn, arena growth, page faults.
    evaluate_plan_with_backend(graph, coop_plan, weights, calib, input, &coop)?;
    coop.take_timings();
    evaluate_plan_with_backend(graph, single_plan, weights, calib, input, &single)?;
    single.take_timings();

    let coop_t = run_best(graph, coop_plan, weights, calib, input, &coop, cfg.repeat)?;
    let single_t = run_best(
        graph,
        single_plan,
        weights,
        calib,
        input,
        &single,
        cfg.repeat,
    )?;

    let layers = graph
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, node)| LayerRow {
            node: i,
            name: node.name.clone(),
            kind: node.kind.op_name().to_string(),
            coop_s: coop_t
                .iter()
                .find(|t| t.node == i)
                .map_or(0.0, |t| t.wall_s),
            single_s: single_t
                .iter()
                .find(|t| t.node == i)
                .map_or(0.0, |t| t.wall_s),
        })
        .collect();

    // Pair every cooperative part's wall time with its analytic work.
    let mut samples = Vec::new();
    for timing in &coop_t {
        let node = &graph.nodes()[timing.node];
        let in_shape = node
            .inputs
            .first()
            .map_or(graph.input_shape(), |d| &shapes[d.0]);
        let out_shape = &shapes[timing.node];
        for part in &timing.parts {
            let (dtypes, frac) = part_config(coop_plan, timing.node, part.part_index);
            let work = usoc::layer_work(&node.kind, in_shape, out_shape, dtypes, frac);
            samples.push(PartSample {
                node: timing.node,
                name: node.name.clone(),
                kind: node.kind.op_name().to_string(),
                device: part.device,
                class: work.class,
                compute_dtype: work.compute_dtype,
                macs: work.macs,
                bytes: work.total_bytes(),
                seconds: part.seconds,
            });
        }
    }

    let coop_total_s = total_wall(&coop_t);
    let single_total_s = total_wall(&single_t);
    let modeled_coop = execute_plan(spec, graph, coop_plan)?.latency.as_secs_f64();
    let modeled_single = execute_plan(spec, graph, single_plan)?
        .latency
        .as_secs_f64();

    Ok(MeasureReport {
        model: graph.name().to_string(),
        threads: cfg.threads,
        repeat: cfg.repeat.max(1),
        host_parallelism: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        coop_label: coop_plan.label.clone(),
        single_label: single_plan.label.clone(),
        coop_total_s,
        single_total_s,
        measured_speedup: single_total_s / coop_total_s.max(f64::MIN_POSITIVE),
        modeled_speedup: modeled_single / modeled_coop.max(f64::MIN_POSITIVE),
        layers,
        samples,
    })
}
