//! Property-based tests for the tensor crate's numeric foundations.
//!
//! Runs on the in-repo `testkit` property runner: deterministic in
//! `TESTKIT_SEED`, case count overridable via `TESTKIT_CASES`.

use testkit::{prop_assert, prop_assert_eq, prop_assume, props};
use utensor::f16::{f16_bits_to_f32, f32_to_f16_bits};
use utensor::{DType, FixedPointMultiplier, QuantParams, Shape, Tensor, F16};

props! {
    #![cases(256)]

    /// Narrowing any finite f32 yields the nearest representable f16:
    /// the round-trip error is at most half an f16 ulp.
    fn f16_narrowing_is_nearest(x in -65000.0f32..65000.0) {
        let h = F16::from_f32(x);
        let back = h.to_f32();
        // ulp at |x|: spacing of f16 around the value.
        let exp = if x == 0.0 { -24 } else { (x.abs().log2().floor() as i32).clamp(-14, 15) };
        let ulp = 2.0f32.powi(exp - 10);
        prop_assert!((back - x).abs() <= ulp * 0.5 + f32::EPSILON,
            "x = {x}, back = {back}, ulp = {ulp}");
    }

    /// f16 -> f32 -> f16 is the identity on non-NaN bit patterns.
    fn f16_widening_round_trips(bits in 0u16..=u16::MAX) {
        let h = F16::from_bits(bits);
        prop_assume!(!h.is_nan());
        prop_assert_eq!(f32_to_f16_bits(f16_bits_to_f32(bits)), bits);
    }

    /// Narrowing is monotonic: a <= b implies f16(a) <= f16(b).
    fn f16_narrowing_monotonic(a in -70000.0f32..70000.0, b in -70000.0f32..70000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(F16::from_f32(lo) <= F16::from_f32(hi));
    }

    /// Quantize/dequantize error is bounded by half the scale for values
    /// inside the representable range.
    fn quant_round_trip_error_bounded(
        lo in -100.0f32..0.0,
        hi in 0.001f32..100.0,
        x in -100.0f32..100.0,
    ) {
        let p = QuantParams::from_range(lo, hi).unwrap();
        let clamped = x.clamp(p.real_min(), p.real_max());
        let err = (p.dequantize(p.quantize(clamped)) - clamped).abs();
        prop_assert!(err <= p.scale * 0.5 + p.scale * 1e-3,
            "x = {x}, clamped = {clamped}, err = {err}, scale = {}", p.scale);
    }

    /// Quantization is monotonic.
    fn quantize_monotonic(a in -50.0f32..50.0, b in -50.0f32..50.0) {
        let p = QuantParams::from_range(-50.0, 50.0).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(p.quantize(lo) <= p.quantize(hi));
    }

    /// The fixed-point multiplier matches f64 math within 1 unit on
    /// accumulators that do not overflow.
    fn fixed_point_multiplier_accurate(
        real in 1e-6f64..8.0,
        acc in -1_000_000i32..1_000_000,
    ) {
        let m = FixedPointMultiplier::from_real(real).unwrap();
        let want = acc as f64 * real;
        prop_assume!(want.abs() < (i32::MAX / 2) as f64);
        let got = m.apply(acc) as f64;
        prop_assert!((got - want).abs() <= 1.0 + want.abs() * 1e-6,
            "real = {real}, acc = {acc}, got = {got}, want = {want}");
    }

    /// Slicing a tensor in two along any axis and concatenating restores
    /// the original bits, for every dtype.
    fn slice_concat_identity(
        n in 1usize..3,
        c in 1usize..8,
        h in 1usize..6,
        w in 1usize..6,
        axis in 0usize..4,
        frac in 0.0f64..=1.0,
        dtype_idx in 0usize..3,
    ) {
        let shape = Shape::nchw(n, c, h, w);
        let data: Vec<f32> = (0..shape.numel()).map(|i| (i as f32 * 0.37).sin()).collect();
        let dtype = DType::ALL[dtype_idx];
        let t = Tensor::from_f32(shape.clone(), data).unwrap()
            .cast(dtype, Some(QuantParams::from_range(-1.0, 1.0).unwrap()))
            .unwrap();
        let len = shape.dim(axis);
        let cut = ((len as f64) * frac).round() as usize;
        let a = t.slice_axis(axis, 0, cut).unwrap();
        let b = t.slice_axis(axis, cut, len).unwrap();
        let merged = Tensor::concat_axis(axis, &[&a, &b]).unwrap();
        prop_assert!(merged.bit_equal(&t));
    }

    /// Three-way split/merge (CPU + GPU + NPU extension case).
    fn three_way_split_merge(
        c in 3usize..12,
        cut1 in 0usize..12,
        cut2 in 0usize..12,
    ) {
        let shape = Shape::nchw(1, c, 3, 3);
        let data: Vec<f32> = (0..shape.numel()).map(|i| i as f32).collect();
        let t = Tensor::from_f32(shape, data).unwrap();
        let a = cut1.min(c);
        let b = cut2.min(c).max(a);
        let p1 = t.slice_axis(1, 0, a).unwrap();
        let p2 = t.slice_axis(1, a, b).unwrap();
        let p3 = t.slice_axis(1, b, c).unwrap();
        let merged = Tensor::concat_axis(1, &[&p1, &p2, &p3]).unwrap();
        prop_assert!(merged.bit_equal(&t));
    }
}

/// Regression pinned from the retired proptest suite's saved failure
/// corpus (`props.proptest-regressions`): this (real, acc) pair once
/// exceeded the fixed-point multiplier's 1-unit error bound.
#[test]
fn fixed_point_multiplier_regression_case() {
    let real = 2.215425531657657f64;
    let acc = -2110i32;
    let m = FixedPointMultiplier::from_real(real).unwrap();
    let want = acc as f64 * real;
    let got = m.apply(acc) as f64;
    assert!(
        (got - want).abs() <= 1.0 + want.abs() * 1e-6,
        "real = {real}, acc = {acc}, got = {got}, want = {want}"
    );
}
