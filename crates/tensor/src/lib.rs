//! Tensors and numeric types for the μLayer reproduction.
//!
//! The paper's processor-friendly quantization (§4) relies on three data
//! types: 32-bit floats (`F32`, the NN default), 16-bit half-precision
//! floats (`F16`, the GPU's fast path), and 8-bit linearly-quantized
//! unsigned integers (`QUInt8`, the CPU's fast path, per Jacob et al. /
//! gemmlowp). The target host has no half-precision hardware and no
//! gemmlowp, so this crate implements both from scratch:
//!
//! - [`F16`] — a bit-accurate software IEEE 754 binary16 with
//!   round-to-nearest-even conversions and per-operation rounding, exactly
//!   what a Mali GPU's `half` ALU produces.
//! - [`QuantParams`] / [`quant`] — asymmetric affine quantization
//!   (`real = scale * (q - zero_point)`), including the gemmlowp-style
//!   fixed-point **requantization** pipeline (§4.1) that converts i32
//!   accumulators back to 8-bit outputs using an integer multiplier and a
//!   rounding right shift.
//! - [`Tensor`] — an NCHW dense tensor over any of the three types, with
//!   the axis slicing/concatenation the channel-wise workload distribution
//!   (§3.2) needs.

pub mod dtype;
pub mod error;
pub mod f16;
pub mod quant;
pub mod shape;
pub mod tensor;

pub use dtype::DType;
pub use error::TensorError;
pub use f16::F16;
pub use quant::{FixedPointMultiplier, QuantParams};
pub use shape::Shape;
pub use tensor::{Tensor, TensorData};

/// Convenience alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
