//! Dense tensor shapes.

use std::fmt;

/// The shape of a dense row-major tensor.
///
/// Activations use NCHW order (`[batch, channels, height, width]`);
/// convolution filters use OIHW (`[out_channels, in_channels, kh, kw]`).
/// Output-channel slicing — the core of the channel-wise workload
/// distribution — is therefore axis 1 for activations and axis 0 for
/// filters.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimensions.
    pub fn new(dims: impl Into<Vec<usize>>) -> Shape {
        Shape(dims.into())
    }

    /// A 4-D NCHW activation shape.
    pub fn nchw(n: usize, c: usize, h: usize, w: usize) -> Shape {
        Shape(vec![n, c, h, w])
    }

    /// A 4-D OIHW filter shape.
    pub fn oihw(o: usize, i: usize, h: usize, w: usize) -> Shape {
        Shape(vec![o, i, h, w])
    }

    /// The dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total element count (1 for rank 0).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Batch size (dim 0 of a rank-4 shape).
    ///
    /// # Panics
    ///
    /// Panics unless the shape has rank 4.
    pub fn n(&self) -> usize {
        self.expect_rank4();
        self.0[0]
    }

    /// Channels (dim 1 of a rank-4 shape).
    ///
    /// # Panics
    ///
    /// Panics unless the shape has rank 4.
    pub fn c(&self) -> usize {
        self.expect_rank4();
        self.0[1]
    }

    /// Height (dim 2 of a rank-4 shape).
    ///
    /// # Panics
    ///
    /// Panics unless the shape has rank 4.
    pub fn h(&self) -> usize {
        self.expect_rank4();
        self.0[2]
    }

    /// Width (dim 3 of a rank-4 shape).
    ///
    /// # Panics
    ///
    /// Panics unless the shape has rank 4.
    pub fn w(&self) -> usize {
        self.expect_rank4();
        self.0[3]
    }

    /// Returns a copy with dimension `axis` replaced by `len`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank`.
    pub fn with_dim(&self, axis: usize, len: usize) -> Shape {
        let mut dims = self.0.clone();
        dims[axis] = len;
        Shape(dims)
    }

    /// Row-major strides (elements, not bytes).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    fn expect_rank4(&self) {
        assert_eq!(
            self.rank(),
            4,
            "NCHW accessor on a rank-{} shape {self}",
            self.rank()
        );
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Shape {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Shape {
        Shape(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::nchw(2, 3, 4, 5);
        assert_eq!(s.rank(), 4);
        assert_eq!(s.numel(), 120);
        assert_eq!((s.n(), s.c(), s.h(), s.w()), (2, 3, 4, 5));
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::nchw(2, 3, 4, 5);
        assert_eq!(s.strides(), vec![60, 20, 5, 1]);
        let s1 = Shape::new(vec![7]);
        assert_eq!(s1.strides(), vec![1]);
    }

    #[test]
    fn with_dim() {
        let s = Shape::nchw(1, 64, 28, 28);
        let t = s.with_dim(1, 16);
        assert_eq!(t.dims(), &[1, 16, 28, 28]);
        // Original untouched.
        assert_eq!(s.c(), 64);
    }

    #[test]
    #[should_panic(expected = "rank-2")]
    fn nchw_accessor_needs_rank4() {
        Shape::new(vec![3, 4]).c();
    }

    #[test]
    fn display() {
        assert_eq!(Shape::nchw(1, 3, 224, 224).to_string(), "[1x3x224x224]");
        assert_eq!(Shape::new(Vec::new()).to_string(), "[]");
        assert_eq!(Shape::new(Vec::<usize>::new()).numel(), 1);
    }
}
