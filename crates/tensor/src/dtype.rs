//! The three data types of processor-friendly quantization.

use std::fmt;

/// Element type of a [`crate::Tensor`].
///
/// μLayer (§4) stores all tensors as [`DType::QUInt8`] in memory, computes
/// on the CPU in QUInt8, and computes on the GPU in [`DType::F16`] by
/// dequantizing loads on the fly. [`DType::F32`] is the unoptimized
/// baseline data type.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum DType {
    /// IEEE 754 binary32 — the NN default.
    F32,
    /// IEEE 754 binary16 (`half` in OpenCL) — the GPU fast path.
    F16,
    /// 8-bit asymmetric linearly-quantized unsigned integer — the CPU fast
    /// path (Jacob et al., gemmlowp).
    QUInt8,
}

impl DType {
    /// Size of one element in bytes (drives memory-traffic accounting).
    pub const fn size_bytes(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::F16 => 2,
            DType::QUInt8 => 1,
        }
    }

    /// All data types, in the order the paper's Figure 8 sweeps them.
    pub const ALL: [DType; 3] = [DType::F32, DType::F16, DType::QUInt8];

    /// True for the floating-point types.
    pub const fn is_float(self) -> bool {
        matches!(self, DType::F32 | DType::F16)
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F32 => "F32",
            DType::F16 => "F16",
            DType::QUInt8 => "QUInt8",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::QUInt8.size_bytes(), 1);
    }

    #[test]
    fn display() {
        assert_eq!(DType::F32.to_string(), "F32");
        assert_eq!(DType::F16.to_string(), "F16");
        assert_eq!(DType::QUInt8.to_string(), "QUInt8");
    }

    #[test]
    fn float_classification() {
        assert!(DType::F32.is_float());
        assert!(DType::F16.is_float());
        assert!(!DType::QUInt8.is_float());
    }
}
