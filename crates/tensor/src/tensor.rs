//! Dense tensors over the three μLayer data types.
//!
//! A [`Tensor`] owns a row-major buffer of `f32`, [`F16`], or quantized
//! `u8` elements plus its [`Shape`]. The operations the runtime needs are
//! deliberately small: dtype conversion (quantize / dequantize / narrow),
//! axis slicing and concatenation (for the channel-wise workload
//! distribution), and elementwise comparison helpers for the test suites.

use crate::dtype::DType;
use crate::error::TensorError;
use crate::f16::F16;
use crate::quant::QuantParams;
use crate::shape::Shape;

/// The storage of a [`Tensor`].
#[derive(Clone, Debug, PartialEq)]
pub enum TensorData {
    /// 32-bit floats.
    F32(Vec<f32>),
    /// Software half-precision floats.
    F16(Vec<F16>),
    /// 8-bit affine-quantized values with their parameters.
    QUInt8 {
        /// Quantized elements.
        data: Vec<u8>,
        /// The affine mapping to real values.
        params: QuantParams,
    },
}

impl TensorData {
    fn len(&self) -> usize {
        match self {
            TensorData::F32(v) => v.len(),
            TensorData::F16(v) => v.len(),
            TensorData::QUInt8 { data, .. } => data.len(),
        }
    }

    fn dtype(&self) -> DType {
        match self {
            TensorData::F32(_) => DType::F32,
            TensorData::F16(_) => DType::F16,
            TensorData::QUInt8 { .. } => DType::QUInt8,
        }
    }
}

/// A dense row-major tensor.
///
/// # Examples
///
/// Channel slicing and concatenation — the primitive of μLayer's
/// channel-wise workload distribution — is exactly lossless:
///
/// ```
/// use utensor::{Shape, Tensor};
///
/// let t = Tensor::from_f32(Shape::nchw(1, 4, 2, 2), (0..16).map(|i| i as f32).collect())
///     .unwrap();
/// let lo = t.slice_axis(1, 0, 1).unwrap(); // CPU's share
/// let hi = t.slice_axis(1, 1, 4).unwrap(); // GPU's share
/// let merged = Tensor::concat_axis(1, &[&lo, &hi]).unwrap();
/// assert!(merged.bit_equal(&t));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: TensorData,
}

impl Tensor {
    /// Creates a tensor from storage, checking the element count.
    pub fn new(shape: Shape, data: TensorData) -> Result<Tensor, TensorError> {
        if shape.numel() != data.len() {
            return Err(TensorError::LengthMismatch {
                shape,
                len: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates an `F32` tensor from a flat vector.
    pub fn from_f32(shape: Shape, data: Vec<f32>) -> Result<Tensor, TensorError> {
        Tensor::new(shape, TensorData::F32(data))
    }

    /// Creates an `F16` tensor by narrowing a flat `f32` vector.
    pub fn from_f32_as_f16(shape: Shape, data: &[f32]) -> Result<Tensor, TensorError> {
        Tensor::new(
            shape,
            TensorData::F16(data.iter().map(|&v| F16::from_f32(v)).collect()),
        )
    }

    /// Creates a `QUInt8` tensor by quantizing a flat `f32` vector with the
    /// given parameters.
    pub fn from_f32_quantized(
        shape: Shape,
        data: &[f32],
        params: QuantParams,
    ) -> Result<Tensor, TensorError> {
        Tensor::new(
            shape,
            TensorData::QUInt8 {
                data: params.quantize_slice(data),
                params,
            },
        )
    }

    /// Creates a raw `QUInt8` tensor from already-quantized bytes.
    pub fn from_quantized(
        shape: Shape,
        data: Vec<u8>,
        params: QuantParams,
    ) -> Result<Tensor, TensorError> {
        Tensor::new(shape, TensorData::QUInt8 { data, params })
    }

    /// An all-zeros tensor of the given type. For `QUInt8` the zero point
    /// encodes real zero, so the buffer is filled with it.
    pub fn zeros(shape: Shape, dtype: DType, params: Option<QuantParams>) -> Tensor {
        let n = shape.numel();
        let data = match dtype {
            DType::F32 => TensorData::F32(vec![0.0; n]),
            DType::F16 => TensorData::F16(vec![F16::ZERO; n]),
            DType::QUInt8 => {
                let params = params.unwrap_or_default();
                TensorData::QUInt8 {
                    data: vec![params.zero_point; n],
                    params,
                }
            }
        };
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The tensor's element type.
    pub fn dtype(&self) -> DType {
        self.data.dtype()
    }

    /// The tensor's storage.
    pub fn data(&self) -> &TensorData {
        &self.data
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Size of the stored buffer in bytes (drives traffic accounting).
    pub fn size_bytes(&self) -> usize {
        self.numel() * self.dtype().size_bytes()
    }

    /// The quantization parameters, if this is a `QUInt8` tensor.
    pub fn quant_params(&self) -> Option<QuantParams> {
        match &self.data {
            TensorData::QUInt8 { params, .. } => Some(*params),
            _ => None,
        }
    }

    /// Borrows the `f32` buffer, failing for other types.
    pub fn as_f32(&self) -> Result<&[f32], TensorError> {
        match &self.data {
            TensorData::F32(v) => Ok(v),
            other => Err(TensorError::DTypeMismatch {
                expected: DType::F32,
                found: other.dtype(),
            }),
        }
    }

    /// Borrows the `F16` buffer, failing for other types.
    pub fn as_f16(&self) -> Result<&[F16], TensorError> {
        match &self.data {
            TensorData::F16(v) => Ok(v),
            other => Err(TensorError::DTypeMismatch {
                expected: DType::F16,
                found: other.dtype(),
            }),
        }
    }

    /// Borrows the quantized byte buffer, failing for other types.
    pub fn as_quint8(&self) -> Result<(&[u8], QuantParams), TensorError> {
        match &self.data {
            TensorData::QUInt8 { data, params } => Ok((data, *params)),
            other => Err(TensorError::DTypeMismatch {
                expected: DType::QUInt8,
                found: other.dtype(),
            }),
        }
    }

    /// Materializes the tensor as real-valued `f32`s (dequantizing /
    /// widening as needed).
    pub fn to_f32_vec(&self) -> Vec<f32> {
        match &self.data {
            TensorData::F32(v) => v.clone(),
            TensorData::F16(v) => v.iter().map(|h| h.to_f32()).collect(),
            TensorData::QUInt8 { data, params } => params.dequantize_slice(data),
        }
    }

    /// Converts to another dtype.
    ///
    /// Converting *to* `QUInt8` requires `params` (the pre-trained
    /// quantization information of §4.2); converting to a float type
    /// ignores it.
    pub fn cast(&self, dtype: DType, params: Option<QuantParams>) -> Result<Tensor, TensorError> {
        if dtype == self.dtype() {
            if let (DType::QUInt8, Some(p)) = (dtype, params) {
                if Some(p) != self.quant_params() {
                    // Requantize to new params through real space.
                    let real = self.to_f32_vec();
                    return Tensor::from_f32_quantized(self.shape.clone(), &real, p);
                }
            }
            return Ok(self.clone());
        }
        let real = self.to_f32_vec();
        match dtype {
            DType::F32 => Tensor::from_f32(self.shape.clone(), real),
            DType::F16 => Tensor::from_f32_as_f16(self.shape.clone(), &real),
            DType::QUInt8 => {
                let params = match params {
                    Some(p) => p,
                    None => QuantParams::from_data(&real)?,
                };
                Tensor::from_f32_quantized(self.shape.clone(), &real, params)
            }
        }
    }

    /// Extracts the sub-tensor `[start, end)` along `axis`.
    ///
    /// This is the slicing primitive of the channel-wise workload
    /// distribution: filters are sliced along axis 0 (output channels),
    /// activations along axis 1 (channels) or axis 2 (rows, for pooling's
    /// spatial split).
    pub fn slice_axis(&self, axis: usize, start: usize, end: usize) -> Result<Tensor, TensorError> {
        let rank = self.shape.rank();
        if axis >= rank {
            return Err(TensorError::BadAxis { axis, rank });
        }
        let len = self.shape.dim(axis);
        if start > end || end > len {
            return Err(TensorError::BadRange { start, end, len });
        }
        let out_shape = self.shape.with_dim(axis, end - start);

        // The buffer decomposes into `outer` blocks of `len * inner`
        // elements; we copy `[start, end) * inner` from each block.
        let dims = self.shape.dims();
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();

        fn gather<T: Copy>(
            src: &[T],
            outer: usize,
            len: usize,
            inner: usize,
            start: usize,
            end: usize,
        ) -> Vec<T> {
            let mut out = Vec::with_capacity(outer * (end - start) * inner);
            for o in 0..outer {
                let base = o * len * inner;
                out.extend_from_slice(&src[base + start * inner..base + end * inner]);
            }
            out
        }

        let data = match &self.data {
            TensorData::F32(v) => TensorData::F32(gather(v, outer, len, inner, start, end)),
            TensorData::F16(v) => TensorData::F16(gather(v, outer, len, inner, start, end)),
            TensorData::QUInt8 { data, params } => TensorData::QUInt8 {
                data: gather(data, outer, len, inner, start, end),
                params: *params,
            },
        };
        Tensor::new(out_shape, data)
    }

    /// Concatenates tensors along `axis`.
    ///
    /// All parts must share dtype, rank, every non-`axis` dimension, and —
    /// for `QUInt8` — identical quantization parameters (the executor
    /// requantizes all partial outputs to the layer's output parameters
    /// before merging, so this always holds in practice).
    pub fn concat_axis(axis: usize, parts: &[&Tensor]) -> Result<Tensor, TensorError> {
        let first = parts
            .first()
            .ok_or_else(|| TensorError::BadConcat("no inputs".into()))?;
        let rank = first.shape.rank();
        if axis >= rank {
            return Err(TensorError::BadAxis { axis, rank });
        }
        let mut axis_total = 0usize;
        for p in parts {
            if p.dtype() != first.dtype() {
                return Err(TensorError::DTypeMismatch {
                    expected: first.dtype(),
                    found: p.dtype(),
                });
            }
            if p.shape.rank() != rank {
                return Err(TensorError::BadConcat(format!(
                    "rank mismatch: {} vs {}",
                    p.shape, first.shape
                )));
            }
            for d in 0..rank {
                if d != axis && p.shape.dim(d) != first.shape.dim(d) {
                    return Err(TensorError::BadConcat(format!(
                        "dim {d} mismatch: {} vs {}",
                        p.shape, first.shape
                    )));
                }
            }
            if let (Some(a), Some(b)) = (p.quant_params(), first.quant_params()) {
                if a != b {
                    return Err(TensorError::BadConcat(
                        "QUInt8 parts have different quantization parameters".into(),
                    ));
                }
            }
            axis_total += p.shape.dim(axis);
        }
        let out_shape = first.shape.with_dim(axis, axis_total);

        let dims = first.shape.dims();
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();

        fn scatter<T: Copy, F: Fn(&Tensor) -> &[T]>(
            parts: &[&Tensor],
            get: F,
            outer: usize,
            inner: usize,
            axis: usize,
            total: usize,
        ) -> Vec<T> {
            let mut out: Vec<T> = Vec::with_capacity(outer * total * inner);
            for o in 0..outer {
                for p in parts {
                    let alen = p.shape.dim(axis);
                    let src = get(p);
                    out.extend_from_slice(&src[o * alen * inner..(o + 1) * alen * inner]);
                }
            }
            out
        }

        let data = match first.dtype() {
            DType::F32 => TensorData::F32(scatter(
                parts,
                |t| t.as_f32().expect("checked dtype"),
                outer,
                inner,
                axis,
                axis_total,
            )),
            DType::F16 => TensorData::F16(scatter(
                parts,
                |t| t.as_f16().expect("checked dtype"),
                outer,
                inner,
                axis,
                axis_total,
            )),
            DType::QUInt8 => {
                let params = first.quant_params().expect("QUInt8 has params");
                TensorData::QUInt8 {
                    data: scatter(
                        parts,
                        |t| t.as_quint8().expect("checked dtype").0,
                        outer,
                        inner,
                        axis,
                        axis_total,
                    ),
                    params,
                }
            }
        };
        Tensor::new(out_shape, data)
    }

    /// Maximum absolute elementwise difference between two tensors, after
    /// materializing both as `f32`. Intended for tests and accuracy
    /// reporting.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.shape, other.shape,
            "max_abs_diff: shape mismatch {} vs {}",
            self.shape, other.shape
        );
        let a = self.to_f32_vec();
        let b = other.to_f32_vec();
        a.iter()
            .zip(&b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max)
    }

    /// True when the stored bits are identical (shape, dtype, raw values).
    pub fn bit_equal(&self, other: &Tensor) -> bool {
        if self.shape != other.shape {
            return false;
        }
        match (&self.data, &other.data) {
            (TensorData::F32(a), TensorData::F32(b)) => {
                a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (TensorData::F16(a), TensorData::F16(b)) => {
                a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (
                TensorData::QUInt8 {
                    data: a,
                    params: pa,
                },
                TensorData::QUInt8 {
                    data: b,
                    params: pb,
                },
            ) => pa == pb && a == b,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_tensor(shape: Shape) -> Tensor {
        let n = shape.numel();
        Tensor::from_f32(shape, (0..n).map(|i| i as f32).collect()).unwrap()
    }

    #[test]
    fn construction_checks_length() {
        let err = Tensor::from_f32(Shape::nchw(1, 2, 2, 2), vec![0.0; 7]).unwrap_err();
        assert!(matches!(err, TensorError::LengthMismatch { .. }));
    }

    #[test]
    fn zeros_quint8_uses_zero_point() {
        let p = QuantParams::from_range(-1.0, 1.0).unwrap();
        let t = Tensor::zeros(Shape::nchw(1, 1, 2, 2), DType::QUInt8, Some(p));
        let (q, _) = t.as_quint8().unwrap();
        assert!(q.iter().all(|&v| v == p.zero_point));
        assert!(t.to_f32_vec().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn size_bytes_tracks_dtype() {
        let s = Shape::nchw(1, 2, 3, 4);
        assert_eq!(Tensor::zeros(s.clone(), DType::F32, None).size_bytes(), 96);
        assert_eq!(Tensor::zeros(s.clone(), DType::F16, None).size_bytes(), 48);
        assert_eq!(Tensor::zeros(s, DType::QUInt8, None).size_bytes(), 24);
    }

    #[test]
    fn cast_round_trips() {
        let t = seq_tensor(Shape::nchw(1, 2, 3, 3));
        let h = t.cast(DType::F16, None).unwrap();
        assert_eq!(h.dtype(), DType::F16);
        // Small integers are exact in f16.
        assert_eq!(h.max_abs_diff(&t), 0.0);
        let q = t.cast(DType::QUInt8, None).unwrap();
        let params = q.quant_params().unwrap();
        assert!(q.max_abs_diff(&t) <= params.scale * 0.5 + 1e-5);
        let back = q.cast(DType::F32, None).unwrap();
        assert_eq!(back.dtype(), DType::F32);
    }

    #[test]
    fn cast_same_dtype_is_identity() {
        let t = seq_tensor(Shape::new(vec![5]));
        let u = t.cast(DType::F32, None).unwrap();
        assert!(t.bit_equal(&u));
    }

    #[test]
    fn cast_requantizes_when_params_change() {
        let p1 = QuantParams::from_range(0.0, 10.0).unwrap();
        let p2 = QuantParams::from_range(0.0, 20.0).unwrap();
        let t = Tensor::from_f32_quantized(Shape::new(vec![3]), &[1.0, 5.0, 9.0], p1).unwrap();
        let u = t.cast(DType::QUInt8, Some(p2)).unwrap();
        assert_eq!(u.quant_params(), Some(p2));
        assert!(u.max_abs_diff(&t) <= p2.scale + 1e-5);
    }

    #[test]
    fn slice_axis0_of_filters() {
        // OIHW [4, 2, 1, 1]: slicing output channels.
        let t = seq_tensor(Shape::oihw(4, 2, 1, 1));
        let lo = t.slice_axis(0, 0, 2).unwrap();
        let hi = t.slice_axis(0, 2, 4).unwrap();
        assert_eq!(lo.shape().dims(), &[2, 2, 1, 1]);
        assert_eq!(lo.as_f32().unwrap(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(hi.as_f32().unwrap(), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn slice_axis1_of_activations() {
        // NCHW [1, 3, 2, 2].
        let t = seq_tensor(Shape::nchw(1, 3, 2, 2));
        let mid = t.slice_axis(1, 1, 2).unwrap();
        assert_eq!(mid.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(mid.as_f32().unwrap(), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn slice_with_batch_outer_dim() {
        // Slicing channels with n = 2 exercises the outer loop.
        let t = seq_tensor(Shape::nchw(2, 2, 1, 2));
        let c1 = t.slice_axis(1, 1, 2).unwrap();
        assert_eq!(c1.shape().dims(), &[2, 1, 1, 2]);
        assert_eq!(c1.as_f32().unwrap(), &[2.0, 3.0, 6.0, 7.0]);
    }

    #[test]
    fn slice_errors() {
        let t = seq_tensor(Shape::nchw(1, 3, 2, 2));
        assert!(matches!(
            t.slice_axis(7, 0, 1).unwrap_err(),
            TensorError::BadAxis { .. }
        ));
        assert!(matches!(
            t.slice_axis(1, 2, 5).unwrap_err(),
            TensorError::BadRange { .. }
        ));
        assert!(matches!(
            t.slice_axis(1, 2, 1).unwrap_err(),
            TensorError::BadRange { .. }
        ));
    }

    #[test]
    fn concat_inverts_slice() {
        for axis in 0..4 {
            let t = seq_tensor(Shape::nchw(2, 4, 3, 5));
            let len = t.shape().dim(axis);
            let a = t.slice_axis(axis, 0, len / 2).unwrap();
            let b = t.slice_axis(axis, len / 2, len).unwrap();
            let merged = Tensor::concat_axis(axis, &[&a, &b]).unwrap();
            assert!(merged.bit_equal(&t), "axis {axis}");
        }
    }

    #[test]
    fn concat_inverts_slice_quint8() {
        let p = QuantParams::from_range(0.0, 120.0).unwrap();
        let data: Vec<f32> = (0..24).map(|i| i as f32).collect();
        let t = Tensor::from_f32_quantized(Shape::nchw(1, 6, 2, 2), &data, p).unwrap();
        let a = t.slice_axis(1, 0, 2).unwrap();
        let b = t.slice_axis(1, 2, 6).unwrap();
        let merged = Tensor::concat_axis(1, &[&a, &b]).unwrap();
        assert!(merged.bit_equal(&t));
    }

    #[test]
    fn concat_rejects_mismatches() {
        let a = seq_tensor(Shape::nchw(1, 2, 2, 2));
        let b = seq_tensor(Shape::nchw(1, 2, 3, 2));
        assert!(Tensor::concat_axis(1, &[&a, &b]).is_err());
        let h = a.cast(DType::F16, None).unwrap();
        assert!(Tensor::concat_axis(1, &[&a, &h]).is_err());
        assert!(Tensor::concat_axis(0, &[]).is_err());
        let p1 = QuantParams::from_range(0.0, 1.0).unwrap();
        let p2 = QuantParams::from_range(0.0, 2.0).unwrap();
        let qa = a.cast(DType::QUInt8, Some(p1)).unwrap();
        let qb = a.cast(DType::QUInt8, Some(p2)).unwrap();
        assert!(Tensor::concat_axis(1, &[&qa, &qb]).is_err());
    }

    #[test]
    fn empty_slice_is_allowed() {
        let t = seq_tensor(Shape::nchw(1, 3, 2, 2));
        let empty = t.slice_axis(1, 1, 1).unwrap();
        assert_eq!(empty.numel(), 0);
    }

    #[test]
    fn max_abs_diff_basics() {
        let a = Tensor::from_f32(Shape::new(vec![3]), vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_f32(Shape::new(vec![3]), vec![1.0, 2.5, 2.0]).unwrap();
        assert_eq!(a.max_abs_diff(&b), 1.0);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }
}
