//! Error type for tensor operations.

use std::fmt;

use crate::dtype::DType;
use crate::shape::Shape;

/// Errors produced by tensor construction and manipulation.
#[derive(Clone, Debug, PartialEq)]
pub enum TensorError {
    /// The element count does not match the shape.
    LengthMismatch {
        /// Shape the caller requested.
        shape: Shape,
        /// Number of elements actually provided.
        len: usize,
    },
    /// Two shapes that must agree do not.
    ShapeMismatch {
        /// Expected shape.
        expected: Shape,
        /// Shape found.
        found: Shape,
    },
    /// An operation received a tensor of the wrong data type.
    DTypeMismatch {
        /// Expected data type.
        expected: DType,
        /// Data type found.
        found: DType,
    },
    /// An axis index is out of range for the tensor's rank.
    BadAxis {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// A slice range `[start, end)` is invalid for the axis length.
    BadRange {
        /// Range start.
        start: usize,
        /// Range end.
        end: usize,
        /// Axis length.
        len: usize,
    },
    /// Concatenation received no inputs or inputs with incompatible shapes.
    BadConcat(String),
    /// Quantization parameters are invalid (non-finite or non-positive
    /// scale).
    BadQuantParams(String),
    /// A graph structure is invalid (non-topological wiring, dangling
    /// output, malformed pass rewrite).
    BadGraph(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { shape, len } => {
                write!(
                    f,
                    "shape {shape} needs {} elements, got {len}",
                    shape.numel()
                )
            }
            TensorError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            TensorError::DTypeMismatch { expected, found } => {
                write!(f, "dtype mismatch: expected {expected}, found {found}")
            }
            TensorError::BadAxis { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::BadRange { start, end, len } => {
                write!(f, "range {start}..{end} invalid for axis of length {len}")
            }
            TensorError::BadConcat(msg) => write!(f, "bad concat: {msg}"),
            TensorError::BadQuantParams(msg) => write!(f, "bad quantization params: {msg}"),
            TensorError::BadGraph(msg) => write!(f, "bad graph: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}
