//! 8-bit asymmetric affine quantization (QUInt8) and fixed-point
//! requantization.
//!
//! This implements the linear quantization scheme of Jacob et al. (CVPR'18)
//! as used by gemmlowp and TensorFlow Lite, which the paper adopts for the
//! CPU fast path (§4.1):
//!
//! ```text
//! real = scale * (q - zero_point),   q ∈ [0, 255]
//! ```
//!
//! Multiplying two quantized values produces (after subtracting zero
//! points) an `i32` accumulator; converting the accumulator back to an
//! 8-bit output — *requantization* — multiplies by
//! `M = (scale_lhs * scale_rhs) / scale_out`, which is implemented in pure
//! integer arithmetic as an `i32` fixed-point multiplier plus a rounding
//! right shift ([`FixedPointMultiplier`]), bit-for-bit matching gemmlowp's
//! `SaturatingRoundingDoublingHighMul` + `RoundingDivideByPOT` pipeline.

use crate::error::TensorError;

/// Affine quantization parameters: `real = scale * (q - zero_point)`.
///
/// # Examples
///
/// ```
/// use utensor::QuantParams;
///
/// let p = QuantParams::from_range(-1.0, 1.0).unwrap();
/// let q = p.quantize(0.5);
/// let back = p.dequantize(q);
/// assert!((back - 0.5).abs() <= p.scale / 2.0);
/// // Real zero is always exactly representable.
/// assert_eq!(p.dequantize(p.quantize(0.0)), 0.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuantParams {
    /// Positive, finite scale factor.
    pub scale: f32,
    /// The quantized value representing real zero.
    pub zero_point: u8,
}

impl Default for QuantParams {
    /// A generic unit-interval default covering `[-0.5, 0.5]`-ish data.
    fn default() -> Self {
        QuantParams {
            scale: 1.0 / 255.0,
            zero_point: 128,
        }
    }
}

impl QuantParams {
    /// Derives parameters covering the real interval `[min, max]`.
    ///
    /// The interval is first widened to include zero (so that zero is
    /// exactly representable, a requirement for zero-padding correctness in
    /// convolutions), then the zero point is nudged onto the integer grid,
    /// mirroring TensorFlow Lite's `ChooseQuantizationParams`.
    ///
    /// Degenerate inputs (`min == max == 0`) produce a scale of 1.
    pub fn from_range(min: f32, max: f32) -> Result<QuantParams, TensorError> {
        if !min.is_finite() || !max.is_finite() {
            return Err(TensorError::BadQuantParams(format!(
                "non-finite range [{min}, {max}]"
            )));
        }
        if min > max {
            return Err(TensorError::BadQuantParams(format!(
                "inverted range [{min}, {max}]"
            )));
        }
        let min = min.min(0.0);
        let max = max.max(0.0);
        if min == 0.0 && max == 0.0 {
            return Ok(QuantParams {
                scale: 1.0,
                zero_point: 0,
            });
        }
        let scale = (max - min) / 255.0;
        // The real value that q = 0 should map to is `min`; zero_point is
        // the quantized value of real 0.
        let zp_real = -min / scale;
        let zero_point = zp_real.round().clamp(0.0, 255.0) as u8;
        Ok(QuantParams { scale, zero_point })
    }

    /// Derives parameters from a data slice (its observed min/max).
    ///
    /// An empty slice yields the degenerate all-zero parameters.
    pub fn from_data(data: &[f32]) -> Result<QuantParams, TensorError> {
        let mut min = 0.0f32;
        let mut max = 0.0f32;
        for &v in data {
            if v.is_finite() {
                min = min.min(v);
                max = max.max(v);
            }
        }
        QuantParams::from_range(min, max)
    }

    /// Quantizes one real value with round-to-nearest and saturation.
    ///
    /// Non-finite inputs saturate deterministically instead of relying
    /// on float→int cast edge semantics: `+∞` → 255, `-∞` → 0, and
    /// `NaN` → `zero_point` (NaN carries no usable magnitude, so it
    /// maps to real zero rather than either rail). The same rails apply
    /// if a hand-constructed `scale` of 0 or NaN makes the intermediate
    /// division non-finite.
    pub fn quantize(&self, real: f32) -> u8 {
        let q = (real / self.scale).round() + self.zero_point as f32;
        if q.is_nan() {
            self.zero_point
        } else if q >= 255.0 {
            255
        } else if q <= 0.0 {
            0
        } else {
            q as u8
        }
    }

    /// Dequantizes one 8-bit value.
    ///
    /// With the finite positive `scale` that [`QuantParams::from_range`]
    /// guarantees this is exact affine arithmetic. A hand-constructed
    /// non-finite scale saturates instead of propagating: `NaN` results
    /// become 0.0 and infinite results clamp to `±f32::MAX`.
    pub fn dequantize(&self, q: u8) -> f32 {
        let real = (q as i32 - self.zero_point as i32) as f32 * self.scale;
        if real.is_nan() {
            0.0
        } else {
            real.clamp(f32::MIN, f32::MAX)
        }
    }

    /// Quantizes a slice.
    pub fn quantize_slice(&self, real: &[f32]) -> Vec<u8> {
        real.iter().map(|&v| self.quantize(v)).collect()
    }

    /// Dequantizes a slice.
    pub fn dequantize_slice(&self, q: &[u8]) -> Vec<f32> {
        q.iter().map(|&v| self.dequantize(v)).collect()
    }

    /// The largest representable real value.
    pub fn real_max(&self) -> f32 {
        self.dequantize(255)
    }

    /// The smallest representable real value.
    pub fn real_min(&self) -> f32 {
        self.dequantize(0)
    }
}

/// An `i32` fixed-point representation of a positive real multiplier, as
/// used by gemmlowp for requantization.
///
/// Represents `value ≈ multiplier * 2^(-right_shift - 31)`, with
/// `multiplier` in `[2^30, 2^31)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FixedPointMultiplier {
    /// The normalized `i32` mantissa.
    pub multiplier: i32,
    /// Rounding right-shift applied after the high multiply. May be
    /// negative for real multipliers ≥ 1 (becomes a left shift).
    pub right_shift: i32,
}

impl FixedPointMultiplier {
    /// Quantizes a positive real multiplier into fixed point.
    ///
    /// Zero maps to the exact zero multiplier. Negative or non-finite
    /// inputs are rejected.
    pub fn from_real(real: f64) -> Result<FixedPointMultiplier, TensorError> {
        if !real.is_finite() || real < 0.0 {
            return Err(TensorError::BadQuantParams(format!(
                "requantization multiplier must be finite and >= 0, got {real}"
            )));
        }
        if real == 0.0 {
            return Ok(FixedPointMultiplier {
                multiplier: 0,
                right_shift: 0,
            });
        }
        // Normalize real = q * 2^shift with q in [0.5, 1).
        let mut q = real;
        let mut shift = 0i32;
        while q >= 1.0 {
            q /= 2.0;
            shift += 1;
        }
        while q < 0.5 {
            q *= 2.0;
            shift -= 1;
        }
        let mut q_fixed = (q * (1i64 << 31) as f64).round() as i64;
        debug_assert!(q_fixed <= (1i64 << 31));
        if q_fixed == (1i64 << 31) {
            q_fixed /= 2;
            shift += 1;
        }
        Ok(FixedPointMultiplier {
            multiplier: q_fixed as i32,
            right_shift: -shift,
        })
    }

    /// Applies the multiplier to an `i32` accumulator:
    /// `round(value * real_multiplier)` in pure integer arithmetic.
    pub fn apply(&self, value: i32) -> i32 {
        if self.right_shift >= 0 {
            rounding_divide_by_pot(
                saturating_rounding_doubling_high_mul(value, self.multiplier),
                self.right_shift,
            )
        } else {
            // Left shift first (multiplier >= 1). Saturating to keep the
            // same overflow semantics as gemmlowp's MultiplyByQuantizedMultiplier.
            let shifted = (value as i64) << (-self.right_shift) as u32;
            let shifted = shifted.clamp(i32::MIN as i64, i32::MAX as i64) as i32;
            saturating_rounding_doubling_high_mul(shifted, self.multiplier)
        }
    }

    /// The real multiplier this fixed-point value approximates.
    pub fn to_real(&self) -> f64 {
        self.multiplier as f64 * 2f64.powi(-31 - self.right_shift)
    }
}

/// gemmlowp's `SaturatingRoundingDoublingHighMul`: `round(a * b / 2^31)`
/// with saturation on the single overflow case `a == b == i32::MIN`.
pub fn saturating_rounding_doubling_high_mul(a: i32, b: i32) -> i32 {
    if a == i32::MIN && b == i32::MIN {
        return i32::MAX;
    }
    let ab = a as i64 * b as i64;
    let nudge: i64 = if ab >= 0 { 1 << 30 } else { 1 - (1 << 30) };
    // gemmlowp divides (truncating toward zero); an arithmetic shift would
    // floor instead and be off by one for negative products.
    ((ab + nudge) / (1i64 << 31)) as i32
}

/// gemmlowp's `RoundingDivideByPOT`: `round(x / 2^exponent)` with
/// round-half-away-from-zero.
///
/// # Panics
///
/// Panics if `exponent` is outside `[0, 31]`.
pub fn rounding_divide_by_pot(x: i32, exponent: i32) -> i32 {
    assert!(
        (0..=31).contains(&exponent),
        "rounding_divide_by_pot exponent out of range: {exponent}"
    );
    if exponent == 0 {
        return x;
    }
    let mask: i32 = (1i64 << exponent).wrapping_sub(1) as i32;
    let remainder = x & mask;
    let threshold = (mask >> 1) + i32::from(x < 0);
    (x >> exponent) + i32::from(remainder > threshold)
}

/// Requantizes an `i32` accumulator to a `u8` output value:
/// `clamp(zero_point + round(multiplier * acc))`.
pub fn requantize(acc: i32, multiplier: &FixedPointMultiplier, output_zero_point: u8) -> u8 {
    let scaled = multiplier.apply(acc);
    (scaled + output_zero_point as i32).clamp(0, 255) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_includes_zero() {
        let p = QuantParams::from_range(2.0, 8.0).unwrap();
        // Min is widened to 0.
        assert_eq!(p.zero_point, 0);
        assert!((p.scale - 8.0 / 255.0).abs() < 1e-7);
        let p = QuantParams::from_range(-8.0, -2.0).unwrap();
        assert_eq!(p.zero_point, 255);
    }

    #[test]
    fn degenerate_range() {
        let p = QuantParams::from_range(0.0, 0.0).unwrap();
        assert_eq!(p.scale, 1.0);
        assert_eq!(p.quantize(0.0), 0);
        let p = QuantParams::from_data(&[]).unwrap();
        assert_eq!(p.scale, 1.0);
    }

    #[test]
    fn invalid_ranges_rejected() {
        assert!(QuantParams::from_range(f32::NAN, 1.0).is_err());
        assert!(QuantParams::from_range(0.0, f32::INFINITY).is_err());
        assert!(QuantParams::from_range(3.0, 2.0).is_err());
    }

    #[test]
    fn zero_is_exact() {
        for (lo, hi) in [(-1.0f32, 1.0f32), (-0.3, 2.7), (-10.0, 0.5), (0.0, 6.0)] {
            let p = QuantParams::from_range(lo, hi).unwrap();
            assert_eq!(p.dequantize(p.quantize(0.0)), 0.0, "range [{lo}, {hi}]");
        }
    }

    #[test]
    fn quantize_dequantize_error_bounded_by_half_scale() {
        let p = QuantParams::from_range(-4.0, 4.0).unwrap();
        for i in -400..=400 {
            let v = i as f32 / 100.0;
            let err = (p.dequantize(p.quantize(v)) - v).abs();
            assert!(err <= p.scale * 0.5 + 1e-6, "v = {v}, err = {err}");
        }
    }

    #[test]
    fn saturation_at_the_rails() {
        let p = QuantParams::from_range(-1.0, 1.0).unwrap();
        assert_eq!(p.quantize(100.0), 255);
        assert_eq!(p.quantize(-100.0), 0);
    }

    #[test]
    fn non_finite_inputs_saturate_deterministically() {
        let p = QuantParams::from_range(-1.0, 1.0).unwrap();
        assert_eq!(p.quantize(f32::INFINITY), 255);
        assert_eq!(p.quantize(f32::NEG_INFINITY), 0);
        assert_eq!(p.quantize(f32::NAN), p.zero_point);
        // NaN maps to real zero, exactly.
        assert_eq!(p.dequantize(p.quantize(f32::NAN)), 0.0);
        // The documented rails hold for every zero point, including the
        // extremes where one rail *is* the zero point.
        for zp in [0u8, 1, 127, 254, 255] {
            let p = QuantParams {
                scale: 0.5,
                zero_point: zp,
            };
            assert_eq!(p.quantize(f32::INFINITY), 255, "zp {zp}");
            assert_eq!(p.quantize(f32::NEG_INFINITY), 0, "zp {zp}");
            assert_eq!(p.quantize(f32::NAN), zp, "zp {zp}");
        }
    }

    #[test]
    fn degenerate_scales_never_produce_non_finite_results() {
        // `from_range` rejects these scales; hand-constructed params must
        // still saturate instead of emitting NaN/∞ or tripping UB-adjacent
        // casts.
        for scale in [0.0f32, f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let p = QuantParams {
                scale,
                zero_point: 128,
            };
            for v in [0.0f32, 1.0, -1.0, f32::NAN, f32::INFINITY] {
                let q = p.quantize(v); // must not panic; u8 by construction
                assert!(p.dequantize(q).is_finite(), "scale {scale}, v {v}");
            }
            assert!(p.dequantize(0).is_finite(), "scale {scale}");
            assert!(p.dequantize(255).is_finite(), "scale {scale}");
        }
        // 0/0 inside quantize (real 0, scale 0) hits the NaN rail.
        let p = QuantParams {
            scale: 0.0,
            zero_point: 7,
        };
        assert_eq!(p.quantize(0.0), 7);
        assert_eq!(p.quantize(1.0), 255);
        assert_eq!(p.quantize(-1.0), 0);
    }

    #[test]
    fn slices_round_trip() {
        let p = QuantParams::from_range(-2.0, 2.0).unwrap();
        let data = vec![-2.0f32, -1.0, 0.0, 0.5, 1.999];
        let q = p.quantize_slice(&data);
        let d = p.dequantize_slice(&q);
        for (orig, deq) in data.iter().zip(&d) {
            assert!((orig - deq).abs() <= p.scale * 0.5 + 1e-6);
        }
    }

    #[test]
    fn real_min_max() {
        let p = QuantParams::from_range(-1.0, 3.0).unwrap();
        assert!(p.real_min() <= -1.0 + p.scale);
        assert!(p.real_max() >= 3.0 - p.scale);
    }

    #[test]
    fn srdhm_matches_reference() {
        // Reference: round(a*b / 2^31) with round-half-away-from-zero.
        let cases = [
            (0i32, 0i32),
            (1, 1),
            (1 << 30, 2),
            (i32::MAX, i32::MAX),
            (i32::MIN, i32::MAX),
            (-(1 << 30), 3),
            (123456789, -987654321),
        ];
        for (a, b) in cases {
            let got = saturating_rounding_doubling_high_mul(a, b);
            let exact = a as i64 * b as i64;
            // Round half away from zero: nudge then truncate toward zero.
            let want = if exact >= 0 {
                (exact + (1 << 30)) / (1i64 << 31)
            } else {
                (exact + 1 - (1 << 30)) / (1i64 << 31)
            } as i32;
            assert_eq!(got, want, "a = {a}, b = {b}");
        }
        // The single saturating case.
        assert_eq!(
            saturating_rounding_doubling_high_mul(i32::MIN, i32::MIN),
            i32::MAX
        );
    }

    #[test]
    fn rdbpot_rounds_half_away_from_zero() {
        assert_eq!(rounding_divide_by_pot(5, 1), 3); // 2.5 -> 3
        assert_eq!(rounding_divide_by_pot(-5, 1), -3); // -2.5 -> -3
        assert_eq!(rounding_divide_by_pot(4, 1), 2);
        assert_eq!(rounding_divide_by_pot(-4, 1), -2);
        assert_eq!(rounding_divide_by_pot(7, 2), 2); // 1.75 -> 2
        assert_eq!(rounding_divide_by_pot(100, 0), 100);
        assert_eq!(rounding_divide_by_pot(1 << 20, 20), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rdbpot_rejects_bad_exponent() {
        rounding_divide_by_pot(1, 32);
    }

    #[test]
    fn fixed_point_multiplier_accuracy() {
        for &real in &[0.25f64, 0.5, 0.7431, 0.001234, 0.999999, 1.0, 3.7, 100.0] {
            let m = FixedPointMultiplier::from_real(real).unwrap();
            let approx = m.to_real();
            assert!(
                (approx - real).abs() / real < 1e-8,
                "real = {real}, approx = {approx}"
            );
            // Applying to a mid-size accumulator matches f64 math closely.
            for &acc in &[1i32, 100, -100, 12345, -999999, 1 << 20] {
                let got = m.apply(acc);
                let want = (acc as f64 * real).round();
                if want.abs() < i32::MAX as f64 / 2.0 {
                    assert!(
                        (got as f64 - want).abs() <= 1.0,
                        "real = {real}, acc = {acc}, got = {got}, want = {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_multiplier() {
        let m = FixedPointMultiplier::from_real(0.0).unwrap();
        assert_eq!(m.apply(123456), 0);
    }

    #[test]
    fn negative_multiplier_rejected() {
        assert!(FixedPointMultiplier::from_real(-0.5).is_err());
        assert!(FixedPointMultiplier::from_real(f64::NAN).is_err());
    }

    #[test]
    fn multiplier_normalized_mantissa() {
        for &real in &[0.3f64, 0.03, 3.0, 0.9999] {
            let m = FixedPointMultiplier::from_real(real).unwrap();
            assert!(
                m.multiplier >= (1 << 30),
                "mantissa not normalized for {real}: {}",
                m.multiplier
            );
        }
    }

    #[test]
    fn requantize_end_to_end() {
        // Simulate a dot product: lhs scale 0.02, rhs scale 0.05, output
        // scale 0.1 -> M = 0.01.
        let m = FixedPointMultiplier::from_real(0.01).unwrap();
        let acc = 5000i32; // real value = 5000 * 0.001 = 5.0; output q steps of 0.1
        let q = requantize(acc, &m, 10);
        // 5000 * 0.01 = 50, + zp 10 = 60.
        assert_eq!(q, 60);
        // Saturation.
        assert_eq!(requantize(1 << 30, &m, 0), 255);
        assert_eq!(requantize(-(1 << 30), &m, 0), 0);
    }
}
