//! Software IEEE 754 binary16 (`half`).
//!
//! μLayer's GPU path computes in 16-bit half-precision floats (OpenCL
//! `half`, §4.1). The reproduction host has no native `f16`, so this module
//! implements binary16 in software:
//!
//! - `f32 → f16` conversion with round-to-nearest-even, including
//!   subnormals, overflow-to-infinity, and NaN canonicalization;
//! - exact `f16 → f32` widening;
//! - arithmetic by widening to `f32`, operating, and rounding the result
//!   back — which is precisely the per-operation rounding a hardware FP16
//!   ALU performs for individually-rounded operations.
//!
//! The representation is the raw bit pattern, so tensors of [`F16`] occupy
//! 2 bytes per element and the memory-traffic accounting is exact.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A 16-bit IEEE 754 binary16 floating-point number.
///
/// # Examples
///
/// ```
/// use utensor::F16;
///
/// let a = F16::from_f32(1.5);
/// let b = F16::from_f32(2.5);
/// assert_eq!((a + b).to_f32(), 4.0);
///
/// // Narrowing rounds to the nearest representable value.
/// let c = F16::from_f32(2048.0) + F16::from_f32(1.0);
/// assert_eq!(c.to_f32(), 2048.0); // spacing is 2.0 at this magnitude
/// ```
// `repr(transparent)` guarantees the layout *is* the bit pattern, so
// slices of `F16` may be reinterpreted as slices of `u16` (SIMD kernels
// rely on this for F16C loads/stores).
#[derive(Clone, Copy, Default)]
#[repr(transparent)]
pub struct F16(u16);

/// Shifts `v` right by `shift` bits with round-to-nearest-even.
fn round_shift_rne(v: u32, shift: u32) -> u32 {
    if shift == 0 {
        return v;
    }
    if shift >= 32 {
        return 0;
    }
    let kept = v >> shift;
    let rest = v & ((1u32 << shift) - 1);
    let half = 1u32 << (shift - 1);
    if rest > half || (rest == half && (kept & 1) == 1) {
        kept + 1
    } else {
        kept
    }
}

/// Converts an `f32` to binary16 bits with round-to-nearest-even.
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let x = value.to_bits();
    let sign = ((x >> 16) & 0x8000) as u16;
    let abs = x & 0x7FFF_FFFF;

    if abs >= 0x7F80_0000 {
        // Inf or NaN; NaNs collapse to the canonical quiet NaN.
        return if abs > 0x7F80_0000 {
            sign | 0x7E00
        } else {
            sign | 0x7C00
        };
    }

    let e = (abs >> 23) as i32; // biased f32 exponent, 0..=254
    let man = abs & 0x7F_FFFF;

    if e >= 143 {
        // Half exponent would be >= 31: overflow to infinity.
        return sign | 0x7C00;
    }
    if e >= 113 {
        // Normal half range; a rounding carry may propagate into the
        // exponent and even produce the exact infinity pattern (65520.0
        // upward), which is the correct IEEE behaviour.
        let half_man = round_shift_rne(man, 13);
        let h = (((e - 112) as u32) << 10) + half_man;
        return sign | (h as u16);
    }
    if e == 0 {
        // f32 subnormals are < 2^-126, far below half's subnormal range.
        return sign;
    }
    // Subnormal half (or underflow to zero). value = (man|implicit) *
    // 2^(e-150); the 10-bit subnormal significand is that value * 2^24.
    let full = man | 0x80_0000;
    let shift = (126 - e) as u32; // >= 14
    let s = round_shift_rne(full, shift);
    sign | (s as u16)
}

/// Converts binary16 bits to the exactly-representable `f32`.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let man = (h & 0x3FF) as u32;

    if exp == 0x1F {
        // Inf / NaN.
        return f32::from_bits(sign | 0x7F80_0000 | (man << 13));
    }
    if exp == 0 {
        if man == 0 {
            return f32::from_bits(sign); // ±0
        }
        // Subnormal: value = man * 2^-24; normalize into f32.
        let p = 31 - man.leading_zeros(); // msb index, 0..=9
        let exp32 = (p + 103) << 23;
        let man32 = (man << (23 - p)) & 0x7F_FFFF;
        return f32::from_bits(sign | exp32 | man32);
    }
    f32::from_bits(sign | ((exp + 112) << 23) | (man << 13))
}

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Negative one.
    pub const NEG_ONE: F16 = F16(0xBC00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// Canonical quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7BFF);
    /// Most negative finite value (-65504).
    pub const MIN: F16 = F16(0xFBFF);
    /// Smallest positive normal value (2^-14).
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value (2^-24).
    pub const MIN_POSITIVE_SUBNORMAL: F16 = F16(0x0001);
    /// The machine epsilon (2^-10).
    pub const EPSILON: F16 = F16(0x1400);

    /// Converts from `f32` with round-to-nearest-even.
    pub fn from_f32(value: f32) -> F16 {
        F16(f32_to_f16_bits(value))
    }

    /// Widens to `f32` exactly.
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }

    /// Constructs from raw binary16 bits.
    pub const fn from_bits(bits: u16) -> F16 {
        F16(bits)
    }

    /// The raw binary16 bits.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// True if the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// True if the value is +∞ or -∞.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// True if the value is neither NaN nor infinite.
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }

    /// True for subnormal values (nonzero with a zero exponent field).
    pub fn is_subnormal(self) -> bool {
        (self.0 & 0x7C00) == 0 && (self.0 & 0x03FF) != 0
    }

    /// Absolute value.
    pub fn abs(self) -> F16 {
        F16(self.0 & 0x7FFF)
    }

    /// Fused multiply-add: `self * a + b`, with a single rounding at the
    /// end (models a hardware FP16 FMA with a wide internal accumulator).
    pub fn mul_add(self, a: F16, b: F16) -> F16 {
        F16::from_f32(self.to_f32().mul_add(a.to_f32(), b.to_f32()))
    }

    /// The larger of two values; NaN loses against any number.
    pub fn max(self, other: F16) -> F16 {
        F16::from_f32(self.to_f32().max(other.to_f32()))
    }

    /// The smaller of two values; NaN loses against any number.
    pub fn min(self, other: F16) -> F16 {
        F16::from_f32(self.to_f32().min(other.to_f32()))
    }
}

impl From<f32> for F16 {
    fn from(v: f32) -> Self {
        F16::from_f32(v)
    }
}

impl From<F16> for f32 {
    fn from(v: F16) -> Self {
        v.to_f32()
    }
}

impl PartialEq for F16 {
    fn eq(&self, other: &Self) -> bool {
        self.to_f32() == other.to_f32()
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl Add for F16 {
    type Output = F16;
    fn add(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl AddAssign for F16 {
    fn add_assign(&mut self, rhs: F16) {
        *self = *self + rhs;
    }
}

impl Sub for F16 {
    type Output = F16;
    fn sub(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl Mul for F16 {
    type Output = F16;
    fn mul(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl Div for F16 {
    type Output = F16;
    fn div(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() / rhs.to_f32())
    }
}

impl Neg for F16 {
    type Output = F16;
    fn neg(self) -> F16 {
        F16(self.0 ^ 0x8000)
    }
}

impl Sum for F16 {
    fn sum<I: Iterator<Item = F16>>(iter: I) -> F16 {
        iter.fold(F16::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({}={:#06x})", self.to_f32(), self.0)
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_round_trip() {
        for i in -2048..=2048 {
            let f = i as f32;
            assert_eq!(F16::from_f32(f).to_f32(), f, "i = {i}");
        }
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(F16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(F16::from_f32(1.0).to_bits(), 0x3C00);
        assert_eq!(F16::from_f32(-1.0).to_bits(), 0xBC00);
        assert_eq!(F16::from_f32(2.0).to_bits(), 0x4000);
        assert_eq!(F16::from_f32(0.5).to_bits(), 0x3800);
        assert_eq!(F16::from_f32(65504.0).to_bits(), 0x7BFF);
        assert_eq!(F16::from_f32(f32::INFINITY).to_bits(), 0x7C00);
        assert_eq!(F16::from_f32(f32::NEG_INFINITY).to_bits(), 0xFC00);
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        // 65504 is the max finite; anything >= 65520 rounds to +inf.
        assert_eq!(F16::from_f32(65519.0).to_bits(), 0x7BFF);
        assert_eq!(F16::from_f32(65520.0).to_bits(), 0x7C00);
        assert_eq!(F16::from_f32(1e9).to_bits(), 0x7C00);
        assert_eq!(F16::from_f32(-1e9).to_bits(), 0xFC00);
    }

    #[test]
    fn nan_propagates() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::NAN.to_f32().is_nan());
        assert!((F16::NAN + F16::ONE).is_nan());
    }

    #[test]
    fn subnormals() {
        // Smallest positive subnormal: 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(tiny).to_bits(), 0x0001);
        assert_eq!(F16::from_bits(0x0001).to_f32(), tiny);
        // Largest subnormal: (1023/1024) * 2^-14.
        let largest_sub = 1023.0 * 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(largest_sub).to_bits(), 0x03FF);
        assert_eq!(F16::from_bits(0x03FF).to_f32(), largest_sub);
        assert!(F16::from_bits(0x03FF).is_subnormal());
        // Smallest normal: 2^-14.
        let min_norm = 2.0f32.powi(-14);
        assert_eq!(F16::from_f32(min_norm).to_bits(), 0x0400);
        assert!(!F16::from_bits(0x0400).is_subnormal());
    }

    #[test]
    fn underflow_to_zero_and_ties() {
        // Exactly 2^-25 ties between 0 and the smallest subnormal; RNE
        // picks the even one (zero).
        assert_eq!(F16::from_f32(2.0f32.powi(-25)).to_bits(), 0x0000);
        // Just above the tie rounds up.
        assert_eq!(F16::from_f32(2.0f32.powi(-25) * 1.0001).to_bits(), 0x0001);
        // Far below underflows.
        assert_eq!(F16::from_f32(1e-20).to_bits(), 0x0000);
        assert_eq!(F16::from_f32(-1e-20).to_bits(), 0x8000);
        // f32 subnormals underflow too.
        assert_eq!(F16::from_f32(f32::MIN_POSITIVE / 2.0).to_bits(), 0x0000);
    }

    #[test]
    fn round_to_nearest_even_at_mantissa_boundary() {
        // 1 + 2^-11 is exactly between 1.0 and 1 + 2^-10: ties to even (1.0).
        let tie = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(tie).to_bits(), 0x3C00);
        // 1 + 3*2^-11 ties between odd and even mantissa: goes to even (2 ulp).
        let tie2 = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(tie2).to_bits(), 0x3C02);
        // Just above a tie rounds up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(F16::from_f32(above).to_bits(), 0x3C01);
    }

    #[test]
    fn rounding_carry_into_exponent() {
        // 2047.5 -> rounds to 2048 (carry from mantissa into exponent).
        assert_eq!(F16::from_f32(2047.9).to_f32(), 2048.0);
    }

    #[test]
    fn every_f16_bit_pattern_round_trips_through_f32() {
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            let f = h.to_f32();
            let back = F16::from_f32(f);
            if h.is_nan() {
                assert!(back.is_nan(), "bits {bits:#06x}");
            } else {
                assert_eq!(back.to_bits(), bits, "bits {bits:#06x} (f = {f})");
            }
        }
    }

    #[test]
    fn arithmetic_rounds_per_operation() {
        // 1024 + 1 is not representable (spacing is 1 at 1024? no: spacing
        // at [1024, 2048) is 1.0, so it is representable); use 2048 + 1,
        // where spacing is 2: result rounds to even -> 2048.
        let a = F16::from_f32(2048.0);
        let b = F16::from_f32(1.0);
        assert_eq!((a + b).to_f32(), 2048.0);
        // 2048 + 3 = 2051 ties between 2050 and 2052; even mantissa wins.
        let c = F16::from_f32(3.0);
        assert_eq!((a + c).to_f32(), 2052.0);
        // 2048 + 5 = 2053 is nearest to 2052.
        let d = F16::from_f32(5.0);
        assert_eq!((a + d).to_f32(), 2052.0);
    }

    #[test]
    fn basic_ops() {
        let a = F16::from_f32(1.5);
        let b = F16::from_f32(2.5);
        assert_eq!((a + b).to_f32(), 4.0);
        assert_eq!((b - a).to_f32(), 1.0);
        assert_eq!((a * b).to_f32(), 3.75);
        // 2.5/1.5 is not representable; the division rounds once.
        assert_eq!((b / a).to_f32(), F16::from_f32(2.5 / 1.5).to_f32());
        assert_eq!((-a).to_f32(), -1.5);
        assert_eq!(a.abs(), a);
        assert_eq!((-a).abs(), a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn mul_add_single_rounding() {
        // fma(a, b, c) can differ from a*b + c under double rounding.
        let a = F16::from_f32(1.0 + 3.0 * 2.0f32.powi(-10));
        let r_fma = a.mul_add(a, F16::from_f32(-1.0));
        let r_sep = a * a - F16::ONE;
        // a^2 = 1 + 3*2^-9 + 9*2^-20; the separate multiply rounds the
        // 9*2^-20 term away before the subtract, the FMA keeps it.
        assert!(r_fma.to_f32() > r_sep.to_f32());
    }

    #[test]
    fn sum_iterator() {
        let total: F16 = (1..=10).map(|i| F16::from_f32(i as f32)).sum();
        assert_eq!(total.to_f32(), 55.0);
    }

    #[test]
    fn comparisons() {
        assert!(F16::from_f32(1.0) < F16::from_f32(2.0));
        assert!(F16::from_f32(-0.0) == F16::from_f32(0.0));
        assert!(F16::NAN.partial_cmp(&F16::ONE).is_none());
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN.to_f32(), -65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
        assert_eq!(F16::MIN_POSITIVE_SUBNORMAL.to_f32(), 2.0f32.powi(-24));
        assert_eq!(F16::EPSILON.to_f32(), 2.0f32.powi(-10));
        assert!(F16::INFINITY.is_infinite());
        assert!(F16::NEG_INFINITY.is_infinite());
    }
}
