//! The `repro` CLI contract, table-driven: every subcommand's flag
//! table rejects unknown flags and malformed `--key=value` pairs with
//! a typed error, accepts its documented forms, and the enumerated
//! value lists stay in sync with the enums they name.

use ubench::cli::{self, parse_flags, CliError, FlagKind};

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

/// Every subcommand rejects a flag nobody declares, with the offending
/// token preserved in the error.
#[test]
fn every_subcommand_rejects_unknown_flags() {
    for &(sub, specs) in cli::SUBCOMMANDS {
        for bad in ["--definitely-not-a-flag", "--definitely-not-a-flag=1"] {
            let e = parse_flags(sub, &args(&[bad]), specs).unwrap_err();
            assert_eq!(
                e,
                CliError::UnknownFlag {
                    subcommand: sub,
                    flag: bad.into()
                },
                "{sub} accepted {bad}"
            );
            assert!(e.to_string().contains(bad), "{sub}: error hides the token");
        }
    }
}

/// Malformed values for every declared value flag of every subcommand:
/// each kind gets the inputs that must fail it.
#[test]
fn every_value_flag_rejects_malformed_values() {
    for &(sub, specs) in cli::SUBCOMMANDS {
        for spec in specs {
            let bad_values: &[&str] = match spec.kind {
                // A switch must reject any value at all.
                FlagKind::Switch => &["yes", "1", ""],
                FlagKind::U64 => &["banana", "-1", "1.5", ""],
                FlagKind::UsizeMin(_) => &["banana", "-1", "1.5", ""],
                FlagKind::F64NonNeg => &["banana", "-0.5", ""],
                FlagKind::Str => &[""],
                FlagKind::OneOf(_) => &["definitely-not-a-member", ""],
            };
            for v in bad_values {
                let token = format!("{}={v}", spec.name);
                let e = parse_flags(sub, &args(&[&token]), specs).unwrap_err();
                assert!(
                    matches!(&e, CliError::BadValue { subcommand, flag, .. }
                        if *subcommand == sub && *flag == spec.name),
                    "{sub} {token}: expected BadValue, got {e:?}"
                );
            }
            // Below-minimum integers.
            if let FlagKind::UsizeMin(min) = spec.kind {
                if min > 0 {
                    let token = format!("{}={}", spec.name, min - 1);
                    assert!(
                        parse_flags(sub, &args(&[&token]), specs).is_err(),
                        "{sub} accepted {token}"
                    );
                }
            }
            // A value flag with no value at all.
            if spec.kind != FlagKind::Switch {
                let e = parse_flags(sub, &args(&[spec.name]), specs).unwrap_err();
                assert!(
                    matches!(&e, CliError::BadValue { given, .. } if given.is_empty()),
                    "{sub} {}: expected missing-value error, got {e:?}",
                    spec.name
                );
            }
        }
    }
}

/// Well-formed values for every declared flag parse and come back
/// through the typed accessors.
#[test]
fn every_flag_accepts_its_documented_form() {
    for &(sub, specs) in cli::SUBCOMMANDS {
        for spec in specs {
            let good: String = match spec.kind {
                FlagKind::Switch => spec.name.to_string(),
                FlagKind::U64 => format!("{}=18446744073709551615", spec.name),
                FlagKind::UsizeMin(min) => format!("{}={}", spec.name, min.max(1)),
                FlagKind::F64NonNeg => format!("{}=12.5", spec.name),
                FlagKind::Str => format!("{}=some/path.json", spec.name),
                FlagKind::OneOf(names) => format!("{}={}", spec.name, names[0]),
            };
            let p = parse_flags(sub, &args(&[&good]), specs)
                .unwrap_or_else(|e| panic!("{sub} rejected {good}: {e}"));
            match spec.kind {
                FlagKind::Switch => assert!(p.switch(spec.name)),
                FlagKind::U64 => assert_eq!(p.u64_of(spec.name), Some(u64::MAX)),
                FlagKind::UsizeMin(min) => {
                    assert_eq!(p.usize_of(spec.name), Some(min.max(1)));
                }
                FlagKind::F64NonNeg => assert_eq!(p.f64_of(spec.name), Some(12.5)),
                FlagKind::Str => assert_eq!(p.str_of(spec.name), Some("some/path.json")),
                FlagKind::OneOf(names) => assert_eq!(p.str_of(spec.name), Some(names[0])),
            }
        }
    }
}

/// Positionals pass through untouched and mix freely with flags.
#[test]
fn positionals_pass_through() {
    let p = parse_flags(
        "fleet",
        &args(&["squeezenet", "--devices=64", "--storm=gpu-loss"]),
        cli::FLEET_FLAGS,
    )
    .expect("parse");
    assert_eq!(p.positional, vec!["squeezenet".to_string()]);
    assert_eq!(p.usize_of("--devices"), Some(64));
    assert_eq!(p.str_of("--storm"), Some("gpu-loss"));
}

/// The enumerated value lists the tables advertise stay in sync with
/// the enums that actually parse them.
#[test]
fn enumerated_lists_match_their_enums() {
    let arrivals: Vec<&str> = simcore::ArrivalKind::ALL.iter().map(|k| k.name()).collect();
    assert_eq!(cli::ARRIVALS, arrivals.as_slice());
    let scenarios: Vec<&str> = simcore::Scenario::ALL.iter().map(|s| s.name()).collect();
    assert_eq!(cli::SCENARIOS, scenarios.as_slice());
    let mut storms = vec!["none"];
    storms.extend(simcore::FleetScenario::ALL.iter().map(|s| s.name()));
    assert_eq!(cli::STORMS, storms.as_slice());
    for name in cli::STORMS.iter().filter(|n| **n != "none") {
        assert!(
            simcore::FleetScenario::from_name(name).is_some(),
            "storm {name} does not round-trip"
        );
    }
    let mut link_faults = vec!["none"];
    link_faults.extend(simcore::LinkFaultScenario::ALL.iter().map(|s| s.name()));
    assert_eq!(cli::LINK_FAULTS, link_faults.as_slice());
    for name in cli::LINK_FAULTS.iter().filter(|n| **n != "none") {
        assert!(
            simcore::LinkFaultScenario::from_name(name).is_some(),
            "link fault {name} does not round-trip"
        );
    }
    for name in cli::KERNEL_PATHS {
        assert!(
            ukernels::PathChoice::parse(name).is_some(),
            "kernel path {name} does not round-trip"
        );
    }
}

/// The typed errors render the subcommand, the flag, and what was
/// expected — what a user needs to fix the invocation.
#[test]
fn error_rendering_names_the_problem() {
    let e = parse_flags("serve", &args(&["--queue=zero"]), cli::SERVE_FLAGS).unwrap_err();
    let msg = e.to_string();
    assert!(msg.contains("serve"), "{msg}");
    assert!(msg.contains("--queue"), "{msg}");
    assert!(msg.contains("zero"), "{msg}");
    assert!(msg.contains(">= 1"), "{msg}");

    let e = CliError::BadPositional {
        subcommand: "fleet",
        given: "resnet".into(),
    };
    let msg = e.to_string();
    assert!(
        msg.contains("resnet") && msg.contains("squeezenet"),
        "{msg}"
    );
}
