//! Plain-text table rendering for the reproduction harness.

use std::fmt::Write as _;

/// A simple aligned-column text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let sep = if i + 1 == cols { "\n" } else { "  " };
                let _ = write!(out, "{c:<width$}{sep}", width = widths[i]);
            }
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Formats a milliseconds value.
pub fn ms(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats an optional latency span in milliseconds; `-` when there is
/// no sample (e.g. the percentile of an all-shed stream).
pub fn opt_ms(v: Option<simcore::SimSpan>) -> String {
    match v {
        Some(s) => ms(s.as_millis_f64()),
        None => "-".to_string(),
    }
}

/// Formats a normalized ratio.
pub fn ratio(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Geometric mean of positive values (1.0 for empty input).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("longer-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All data lines are equally wide (aligned columns).
        assert_eq!(lines[2].find('1'), lines[3].find('2'));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(1.2345), "1.23");
        assert_eq!(ratio(0.56789), "0.568");
        assert_eq!(pct(0.305), "30.5%");
    }
}
