//! Machine-readable export of the reproduction results.
//!
//! `repro --json <dir>` writes one JSON document per figure so external
//! plotting (matplotlib, gnuplot, a notebook) can regenerate the paper's
//! charts from this reproduction's data.

use std::fs;
use std::io;
use std::path::Path;

use crate::figures;
use crate::json::Json;

fn eval_to_json(evals: &[figures::Evaluation], metric: &str) -> Json {
    Json::Arr(
        evals
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("soc", Json::s(e.soc.clone())),
                    (
                        "networks",
                        Json::Arr(
                            e.rows
                                .iter()
                                .map(|(net, mechs)| {
                                    Json::obj(vec![
                                        ("network", Json::s(net.clone())),
                                        (
                                            "mechanisms",
                                            Json::Arr(
                                                mechs
                                                    .iter()
                                                    .map(|m| {
                                                        Json::obj(vec![
                                                            ("label", Json::s(m.label.clone())),
                                                            (
                                                                metric,
                                                                Json::n(
                                                                    if metric == "latency_ms" {
                                                                        m.latency_ms
                                                                    } else {
                                                                        m.energy_mj
                                                                    },
                                                                ),
                                                            ),
                                                        ])
                                                    })
                                                    .collect(),
                                            ),
                                        ),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

/// Writes every latency/energy figure's data as JSON files into `dir`.
///
/// Skips the accuracy figure (fig10) unless `include_fig10` is set,
/// since it trains models for minutes.
pub fn export_all(dir: &Path, include_fig10: bool) -> io::Result<Vec<String>> {
    fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    let mut write = |name: &str, value: Json| -> io::Result<()> {
        let path = dir.join(name);
        fs::write(&path, value.render() + "\n")?;
        written.push(name.to_string());
        Ok(())
    };

    // Table 1.
    let table1 = Json::Arr(
        figures::table1()
            .into_iter()
            .map(|(net, app)| {
                Json::obj(vec![
                    ("network", Json::s(net)),
                    ("channel_distribution", Json::Bool(app.channel_distribution)),
                    (
                        "processor_quantization",
                        Json::Bool(app.processor_quantization),
                    ),
                    ("branch_distribution", Json::Bool(app.branch_distribution)),
                ])
            })
            .collect(),
    );
    write("table1.json", table1)?;

    // Figure 5.
    let fig5 = Json::Arr(
        figures::fig5()
            .into_iter()
            .map(|soc| {
                Json::obj(vec![
                    ("soc", Json::s(soc.soc)),
                    ("mean_gpu_speedup", Json::n(soc.mean_gpu_speedup)),
                    (
                        "layers",
                        Json::Arr(
                            soc.layers
                                .into_iter()
                                .map(|(name, cpu, gpu)| {
                                    Json::obj(vec![
                                        ("layer", Json::s(name)),
                                        ("cpu_ms", Json::n(cpu)),
                                        ("gpu_ms", Json::n(gpu)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    );
    write("fig5.json", fig5)?;

    // Figure 6.
    let fig6 = Json::Arr(
        figures::fig6()
            .into_iter()
            .map(|soc| {
                Json::obj(vec![
                    ("soc", Json::s(soc.soc)),
                    (
                        "networks",
                        Json::Arr(
                            soc.rows
                                .into_iter()
                                .map(|(net, cpu, gpu)| {
                                    Json::obj(vec![
                                        ("network", Json::s(net)),
                                        ("cpu_ms", Json::n(cpu)),
                                        ("gpu_ms", Json::n(gpu)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    );
    write("fig6.json", fig6)?;

    // Figure 8.
    let fig8 = Json::Arr(
        figures::fig8()
            .into_iter()
            .map(|soc| {
                Json::obj(vec![
                    ("soc", Json::s(soc.soc)),
                    (
                        "networks",
                        Json::Arr(
                            soc.rows
                                .into_iter()
                                .map(|(net, m)| {
                                    let mut pairs = vec![("network", Json::s(net))];
                                    let entries: Vec<(String, Json)> =
                                        m.into_iter().map(|(k, v)| (k, Json::n(v))).collect();
                                    pairs.push(("normalized_latency", Json::Obj(entries)));
                                    Json::obj(pairs)
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    );
    write("fig8.json", fig8)?;

    if include_fig10 {
        let fig10 = Json::Arr(
            quantlab::run_figure10()
                .into_iter()
                .map(|(net, rows)| {
                    Json::obj(vec![
                        ("network", Json::s(net)),
                        (
                            "variants",
                            Json::Arr(
                                rows.into_iter()
                                    .map(|r| {
                                        Json::obj(vec![
                                            ("variant", Json::s(r.variant)),
                                            ("accuracy", Json::n(r.accuracy)),
                                            ("drop_pp", Json::n(r.drop_pp)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        write("fig10.json", fig10)?;
    }

    // Figure 12.
    let d = figures::fig12();
    write(
        "fig12.json",
        Json::obj(vec![
            ("cpu_only_ms", Json::n(d.cpu_only_ms)),
            ("cooperative_ms", Json::n(d.cooperative_ms)),
            ("optimal_ms", Json::n(d.optimal_ms)),
        ]),
    )?;

    // Figures 16 and 18 share the evaluation sweep.
    let evals = figures::evaluation();
    write("fig16.json", eval_to_json(&evals, "latency_ms"))?;
    write("fig18.json", eval_to_json(&evals, "energy_mj"))?;

    // Figure 17.
    let fig17 = Json::Arr(
        figures::fig17()
            .into_iter()
            .map(|soc| {
                Json::obj(vec![
                    ("soc", Json::s(soc.soc)),
                    (
                        "networks",
                        Json::Arr(
                            soc.rows
                                .into_iter()
                                .map(|(net, steps)| {
                                    Json::obj(vec![
                                        ("network", Json::s(net)),
                                        ("layer_to_proc_ms", Json::n(steps[0])),
                                        ("ch_dist_ms", Json::n(steps[1])),
                                        ("proc_quant_ms", Json::n(steps[2])),
                                        ("br_dist_ms", Json::n(steps[3])),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    );
    write("fig17.json", fig17)?;

    // NPU extension.
    let npu = Json::Arr(
        figures::npu_extension()
            .into_iter()
            .map(|r| {
                Json::obj(vec![
                    ("network", Json::s(r.network)),
                    ("base_ms", Json::n(r.base_ms)),
                    ("npu_ms", Json::n(r.npu_ms)),
                ])
            })
            .collect(),
    );
    write("npu.json", npu)?;

    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_writes_parseable_documents() {
        let dir = std::env::temp_dir().join("ulayer-export-test");
        let _ = fs::remove_dir_all(&dir);
        let written = export_all(&dir, false).expect("export");
        assert!(written.contains(&"fig16.json".to_string()));
        assert!(!written.contains(&"fig10.json".to_string()));
        for name in &written {
            let body = fs::read_to_string(dir.join(name)).expect("read back");
            // Cheap structural sanity: balanced braces/brackets and no
            // trailing garbage.
            assert!(body.starts_with('[') || body.starts_with('{'), "{name}");
            let opens = body.matches(['{', '[']).count();
            let closes = body.matches(['}', ']']).count();
            assert_eq!(opens, closes, "{name}");
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
