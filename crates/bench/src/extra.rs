//! Extra analyses beyond the paper's figures: design-choice ablations
//! and robustness sweeps for the reproduction's own decisions.

use ulayer::{ULayer, ULayerConfig};
use unn::ModelId;
use uruntime::run_layer_to_processor;
use usoc::SocSpec;
use utensor::DType;

use crate::report::geomean;

/// One row of the split-ratio granularity ablation.
#[derive(Clone, Debug)]
pub struct PGranularityRow {
    /// Label of the candidate set.
    pub label: String,
    /// The candidate `p` values.
    pub candidates: Vec<f64>,
    /// Geomean latency improvement over layer-to-processor across the
    /// five networks (high-end SoC).
    pub geomean_improvement: f64,
}

/// §6 fixes `p ∈ {0.25, 0.5, 0.75}`. How much does the granularity
/// matter? Sweeps coarser and finer candidate sets.
pub fn p_granularity() -> Vec<PGranularityRow> {
    let spec = SocSpec::exynos_7420();
    let sets: Vec<(&str, Vec<f64>)> = vec![
        ("single {0.5}", vec![0.5]),
        ("paper {0.25,0.5,0.75}", vec![0.25, 0.5, 0.75]),
        (
            "fine {0.125..0.875}",
            (1..8).map(|i| i as f64 / 8.0).collect(),
        ),
        (
            "very fine {0.05..0.95}",
            (1..20).map(|i| i as f64 / 20.0).collect(),
        ),
    ];
    sets.into_iter()
        .map(|(label, candidates)| {
            let cfg = ULayerConfig {
                p_candidates: candidates.clone(),
                ..ULayerConfig::full()
            };
            let runtime = ULayer::with_config(spec.clone(), cfg).expect("runtime");
            let ratios: Vec<f64> = ModelId::EVALUATED
                .iter()
                .map(|id| {
                    let g = id.build();
                    let u = runtime.run(&g).expect("run").latency.as_secs_f64();
                    let l2p = run_layer_to_processor(&spec, &g, DType::QUInt8)
                        .expect("l2p")
                        .latency
                        .as_secs_f64();
                    u / l2p
                })
                .collect();
            PGranularityRow {
                label: label.to_string(),
                candidates,
                geomean_improvement: 1.0 - geomean(&ratios),
            }
        })
        .collect()
}

/// One row of the overhead-sensitivity sweep.
#[derive(Clone, Debug)]
pub struct OverheadRow {
    /// Multiplier applied to all §6 management overheads.
    pub scale: f64,
    /// Geomean improvement over layer-to-processor (high-end SoC).
    pub geomean_improvement: f64,
}

/// Scales every multi-processor management overhead (issue, wait, map,
/// dispatch) and reports how μLayer's advantage responds — the paper's
/// §3.1 argument that overheads would "easily offset" gains if the
/// processors were unbalanced or synchronization were expensive.
pub fn overhead_sensitivity() -> Vec<OverheadRow> {
    [0.25f64, 0.5, 1.0, 2.0, 4.0, 8.0]
        .into_iter()
        .map(|scale| {
            let mut spec = SocSpec::exynos_7420();
            spec.overheads.gpu_issue_us *= scale;
            spec.overheads.gpu_wait_us *= scale;
            spec.overheads.map_us *= scale;
            spec.overheads.cpu_dispatch_us *= scale;
            let runtime = ULayer::new(spec.clone()).expect("runtime");
            let ratios: Vec<f64> = ModelId::EVALUATED
                .iter()
                .map(|id| {
                    let g = id.build();
                    let u = runtime.run(&g).expect("run").latency.as_secs_f64();
                    let l2p = run_layer_to_processor(&spec, &g, DType::QUInt8)
                        .expect("l2p")
                        .latency
                        .as_secs_f64();
                    u / l2p
                })
                .collect();
            OverheadRow {
                scale,
                geomean_improvement: 1.0 - geomean(&ratios),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_granularity_is_a_good_tradeoff() {
        let rows = p_granularity();
        let by = |label: &str| {
            rows.iter()
                .find(|r| r.label.starts_with(label))
                .expect("row")
                .geomean_improvement
        };
        // More candidates never hurt (the partitioner picks the min).
        assert!(by("paper") >= by("single") - 1e-9);
        assert!(by("fine") >= by("paper") - 1e-9);
        // ...but the paper's 3-candidate set already captures nearly all
        // of the benefit: the very-fine sweep adds < 3 points.
        assert!(
            by("very fine") - by("paper") < 0.03,
            "paper set leaves too much on the table: {rows:?}"
        );
    }

    #[test]
    fn gains_shrink_as_overheads_grow() {
        let rows = overhead_sensitivity();
        // Monotone (within noise): heavier management overheads erode the
        // cooperative advantage, exactly as §3.1 argues.
        let first = rows.first().expect("rows").geomean_improvement;
        let last = rows.last().expect("rows").geomean_improvement;
        assert!(
            first > last + 0.03,
            "overhead scaling had no effect: {rows:?}"
        );
        // μLayer never becomes *worse* than the baseline — the partitioner
        // falls back to single-processor placements.
        for r in &rows {
            assert!(
                r.geomean_improvement > -0.02,
                "scale {}: regressed {:?}",
                r.scale,
                r.geomean_improvement
            );
        }
    }
}
