//! Benchmark and reproduction harness for the μLayer paper.
//!
//! - [`figures`] — one experiment function per table/figure of the
//!   paper's evaluation (the data producers).
//! - [`report`] — plain-text table rendering and summary statistics.
//!
//! The `repro` binary drives these and prints paper-style rows; the
//! criterion benches under `benches/` measure the same workloads.

pub mod cli;
pub mod export;
pub mod extra;
pub mod figures;
pub mod json;
pub mod report;

pub use cli::{parse_flags, CliError, FlagKind, FlagSpec, Parsed};
pub use export::export_all;
pub use extra::{overhead_sensitivity, p_granularity, OverheadRow, PGranularityRow};
pub use figures::{
    evaluation, fig12, fig17, fig5, fig6, fig8, fleet_storm, inception_3a_graph, mesh_scenario,
    mesh_workload_graph, npu_extension, overhead_attribution, overhead_attribution_with_passes,
    pass_pipeline, run_all_mechanisms, table1, AttributionReport, Evaluation, Fig12, Fig17, Fig5,
    Fig6, Fig8, FleetStormReport, MechanismResult, MeshScenarioReport, NpuRow, PassPipelineReport,
};
pub use json::Json;
pub use report::{geomean, ms, pct, ratio, Table};
