//! A minimal JSON document builder for machine-readable result export.
//!
//! Hand-rolled (the workspace's dependency policy allows no external
//! crates at all); covers exactly what the reproduction
//! harness emits: numbers, strings, booleans, arrays, and objects with
//! preserved key order.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: a string value.
    pub fn s(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Convenience: a number value.
    pub fn n(v: f64) -> Json {
        Json::Num(v)
    }

    /// Convenience: an object from pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // Integers render without a fraction for readability.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{}", *v as i64);
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::n(3.0).render(), "3");
        assert_eq!(Json::n(3.25).render(), "3.25");
        assert_eq!(Json::n(f64::NAN).render(), "null");
        assert_eq!(Json::s("hi").render(), "\"hi\"");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(Json::s("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::s("\u{1}").render(), "\"\\u0001\"");
        // Unicode passes through.
        assert_eq!(Json::s("μLayer").render(), "\"μLayer\"");
    }

    #[test]
    fn containers() {
        let v = Json::obj(vec![
            ("name", Json::s("VGG-16")),
            ("ms", Json::n(12.5)),
            ("rows", Json::Arr(vec![Json::n(1.0), Json::n(2.0)])),
        ]);
        assert_eq!(v.render(), r#"{"name":"VGG-16","ms":12.5,"rows":[1,2]}"#);
    }

    #[test]
    fn key_order_preserved() {
        let v = Json::obj(vec![("z", Json::n(1.0)), ("a", Json::n(2.0))]);
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
    }
}
