//! The per-figure reproduction experiments.
//!
//! One function per table/figure of the paper's evaluation, each
//! returning structured data (consumed by the `repro` binary, the
//! criterion benches, and the integration tests). The index of figures
//! and the expected shapes are documented in DESIGN.md §4 and
//! EXPERIMENTS.md.

use std::collections::BTreeMap;

use ulayer::{ULayer, ULayerConfig};
use unn::{Graph, ModelId};
use uruntime::{run_layer_to_processor, run_single_processor};
use usoc::{profile_graph, DtypePlan, SocSpec};
use utensor::DType;

/// Per-layer CPU/GPU latency of VGG-16 (Figure 5).
#[derive(Clone, Debug)]
pub struct Fig5 {
    /// SoC name.
    pub soc: String,
    /// `(layer name, cpu ms, gpu ms)` for every layer.
    pub layers: Vec<(String, f64, f64)>,
    /// Mean GPU speedup over the CPU across conv/FC layers.
    pub mean_gpu_speedup: f64,
}

/// Runs Figure 5 on both SoCs: per-layer VGG-16 latency at F32.
pub fn fig5() -> Vec<Fig5> {
    SocSpec::evaluated()
        .into_iter()
        .map(|spec| {
            let g = ModelId::Vgg16.build();
            let plan = DtypePlan::uniform(DType::F32);
            let cpu = profile_graph(&spec, spec.cpu(), &g, plan).expect("cpu profile");
            let gpu = profile_graph(&spec, spec.gpu(), &g, plan).expect("gpu profile");
            let layers: Vec<(String, f64, f64)> = cpu
                .iter()
                .zip(&gpu)
                .map(|(c, gp)| {
                    (
                        c.name.clone(),
                        c.latency.as_millis_f64(),
                        gp.latency.as_millis_f64(),
                    )
                })
                .collect();
            // Mean speedup over the compute layers (conv/fc), as in §3.1.
            let speedups: Vec<f64> = cpu
                .iter()
                .zip(&gpu)
                .filter(|(c, _)| c.op == "conv" || c.op == "fc")
                .map(|(c, gp)| c.latency.as_secs_f64() / gp.latency.as_secs_f64())
                .collect();
            Fig5 {
                soc: spec.name.clone(),
                layers,
                mean_gpu_speedup: speedups.iter().sum::<f64>() / speedups.len() as f64,
            }
        })
        .collect()
}

/// Whole-network CPU vs GPU latency (Figure 6), at F32.
#[derive(Clone, Debug)]
pub struct Fig6 {
    /// SoC name.
    pub soc: String,
    /// `(network, cpu ms, gpu ms)`.
    pub rows: Vec<(String, f64, f64)>,
}

/// Runs Figure 6: the five networks on CPU and GPU of both SoCs.
pub fn fig6() -> Vec<Fig6> {
    SocSpec::evaluated()
        .into_iter()
        .map(|spec| {
            let rows = ModelId::EVALUATED
                .iter()
                .map(|id| {
                    let g = id.build();
                    let cpu = run_single_processor(&spec, &g, spec.cpu(), DType::F32)
                        .expect("cpu run")
                        .latency_ms();
                    let gpu = run_single_processor(&spec, &g, spec.gpu(), DType::F32)
                        .expect("gpu run")
                        .latency_ms();
                    (id.name().to_string(), cpu, gpu)
                })
                .collect();
            Fig6 {
                soc: spec.name.clone(),
                rows,
            }
        })
        .collect()
}

/// Quantization impact on latency (Figure 8): per network, the latency of
/// each (device, dtype), normalized to CPU-F32.
#[derive(Clone, Debug)]
pub struct Fig8 {
    /// SoC name.
    pub soc: String,
    /// Per network: `(name, map from "CPU F16"-style keys to normalized
    /// latency)`.
    pub rows: Vec<(String, BTreeMap<String, f64>)>,
}

/// Runs Figure 8 on both SoCs.
pub fn fig8() -> Vec<Fig8> {
    SocSpec::evaluated()
        .into_iter()
        .map(|spec| {
            let rows = ModelId::EVALUATED
                .iter()
                .map(|id| {
                    let g = id.build();
                    let mut m = BTreeMap::new();
                    let base = run_single_processor(&spec, &g, spec.cpu(), DType::F32)
                        .expect("base run")
                        .latency
                        .as_secs_f64();
                    for (dev, dev_name) in [(spec.cpu(), "CPU"), (spec.gpu(), "GPU")] {
                        for dtype in DType::ALL {
                            let lat = run_single_processor(&spec, &g, dev, dtype)
                                .expect("run")
                                .latency
                                .as_secs_f64();
                            m.insert(format!("{dev_name} {dtype}"), lat / base);
                        }
                    }
                    (id.name().to_string(), m)
                })
                .collect();
            Fig8 {
                soc: spec.name.clone(),
                rows,
            }
        })
        .collect()
}

/// The Figure 12 Inception-3a case study.
#[derive(Clone, Debug)]
pub struct Fig12 {
    /// CPU-only QUInt8 latency of the module, ms.
    pub cpu_only_ms: f64,
    /// Channel-wise cooperative (+ processor-friendly quantization), ms.
    pub cooperative_ms: f64,
    /// With branch distribution (the paper's "Cooperative (Optimal)"), ms.
    pub optimal_ms: f64,
}

/// Builds a standalone Inception-3a module graph fed by the graph input.
pub fn inception_3a_graph() -> Graph {
    let mut g = Graph::new("inception-3a", utensor::Shape::nchw(1, 192, 28, 28));
    // A pass-through stem gives the module a fork node, like in the full
    // network where the preceding pool output forks into the branches.
    let stem = g.add_input_layer("stem", unn::LayerKind::Relu);
    unn::models::googlenet::inception(&mut g, "inception_3a", stem, (64, 96, 128, 16, 32, 32));
    g
}

/// Runs the Figure 12 case study on the high-end SoC.
pub fn fig12() -> Fig12 {
    let spec = SocSpec::exynos_7420();
    let g = inception_3a_graph();
    let cpu_only = run_single_processor(&spec, &g, spec.cpu(), DType::QUInt8)
        .expect("cpu run")
        .latency_ms();
    let coop = ULayer::with_config(spec.clone(), ULayerConfig::with_proc_quant())
        .expect("ulayer")
        .run(&g)
        .expect("coop run")
        .latency_ms();
    let optimal = ULayer::with_config(spec, ULayerConfig::full())
        .expect("ulayer")
        .run(&g)
        .expect("optimal run")
        .latency_ms();
    Fig12 {
        cpu_only_ms: cpu_only,
        cooperative_ms: coop,
        optimal_ms: optimal,
    }
}

/// One mechanism's end-to-end result for Figures 16 and 18.
#[derive(Clone, Debug)]
pub struct MechanismResult {
    /// Mechanism label (paper legend).
    pub label: String,
    /// End-to-end latency, ms.
    pub latency_ms: f64,
    /// Total energy, mJ.
    pub energy_mj: f64,
}

/// Runs every compared mechanism on one network/SoC: the six
/// single-processor bars, the layer-to-processor baseline (QUInt8), and
/// μLayer.
pub fn run_all_mechanisms(spec: &SocSpec, graph: &Graph) -> Vec<MechanismResult> {
    let mut out = Vec::new();
    for (dev, dev_name) in [(spec.cpu(), "CPU"), (spec.gpu(), "GPU")] {
        for dtype in DType::ALL {
            let r = run_single_processor(spec, graph, dev, dtype).expect("single run");
            out.push(MechanismResult {
                label: format!("{dev_name}-only {dtype}"),
                latency_ms: r.latency_ms(),
                energy_mj: r.energy.total_mj(),
            });
        }
    }
    let l2p = run_layer_to_processor(spec, graph, DType::QUInt8).expect("l2p run");
    out.push(MechanismResult {
        label: "layer-to-proc QUInt8".into(),
        latency_ms: l2p.latency_ms(),
        energy_mj: l2p.energy.total_mj(),
    });
    let u = ULayer::new(spec.clone())
        .expect("ulayer")
        .run(graph)
        .expect("ulayer run");
    out.push(MechanismResult {
        label: "uLayer".into(),
        latency_ms: u.latency_ms(),
        energy_mj: u.energy.total_mj(),
    });
    out
}

/// Figures 16/18 data: per SoC, per network, all mechanisms.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// SoC name.
    pub soc: String,
    /// `(network, mechanism results)`.
    pub rows: Vec<(String, Vec<MechanismResult>)>,
}

impl Evaluation {
    /// μLayer's latency improvement over layer-to-processor per network:
    /// `1 - t_ulayer / t_l2p`.
    pub fn latency_improvements(&self) -> Vec<(String, f64)> {
        self.improvements(|m| m.latency_ms)
    }

    /// μLayer's energy-efficiency factor over layer-to-processor per
    /// network: `e_l2p / e_ulayer`.
    pub fn energy_factors(&self) -> Vec<(String, f64)> {
        self.rows
            .iter()
            .map(|(net, mechs)| {
                let l2p = find(mechs, "layer-to-proc QUInt8").energy_mj;
                let u = find(mechs, "uLayer").energy_mj;
                (net.clone(), l2p / u)
            })
            .collect()
    }

    fn improvements(&self, f: impl Fn(&MechanismResult) -> f64) -> Vec<(String, f64)> {
        self.rows
            .iter()
            .map(|(net, mechs)| {
                let l2p = f(find(mechs, "layer-to-proc QUInt8"));
                let u = f(find(mechs, "uLayer"));
                (net.clone(), 1.0 - u / l2p)
            })
            .collect()
    }
}

fn find<'a>(mechs: &'a [MechanismResult], label: &str) -> &'a MechanismResult {
    mechs
        .iter()
        .find(|m| m.label == label)
        .unwrap_or_else(|| panic!("mechanism {label} missing"))
}

/// Runs the full Figure 16 / Figure 18 evaluation on both SoCs.
pub fn evaluation() -> Vec<Evaluation> {
    SocSpec::evaluated()
        .into_iter()
        .map(|spec| {
            let rows = ModelId::EVALUATED
                .iter()
                .map(|id| {
                    (
                        id.name().to_string(),
                        run_all_mechanisms(&spec, &id.build()),
                    )
                })
                .collect();
            Evaluation {
                soc: spec.name.clone(),
                rows,
            }
        })
        .collect()
}

/// Figure 17 ablation data: latency per configuration step, per network.
#[derive(Clone, Debug)]
pub struct Fig17 {
    /// SoC name.
    pub soc: String,
    /// `(network, [l2p, +ChDist, +ProcQuant, +BrDist] ms)`.
    pub rows: Vec<(String, [f64; 4])>,
}

/// Runs the Figure 17 ablation on both SoCs.
pub fn fig17() -> Vec<Fig17> {
    SocSpec::evaluated()
        .into_iter()
        .map(|spec| {
            let configs = [
                ULayerConfig::channel_distribution_only(),
                ULayerConfig::with_proc_quant(),
                ULayerConfig::full(),
            ];
            let runtimes: Vec<ULayer> = configs
                .iter()
                .map(|c| ULayer::with_config(spec.clone(), c.clone()).expect("ulayer"))
                .collect();
            let rows = ModelId::EVALUATED
                .iter()
                .map(|id| {
                    let g = id.build();
                    let l2p = run_layer_to_processor(&spec, &g, DType::QUInt8)
                        .expect("l2p")
                        .latency_ms();
                    let mut steps = [l2p, 0.0, 0.0, 0.0];
                    for (i, rt) in runtimes.iter().enumerate() {
                        steps[i + 1] = rt.run(&g).expect("step run").latency_ms();
                    }
                    (id.name().to_string(), steps)
                })
                .collect();
            Fig17 {
                soc: spec.name.clone(),
                rows,
            }
        })
        .collect()
}

/// Table 1: mechanism applicability per network.
pub fn table1() -> Vec<(String, unn::Applicability)> {
    ModelId::EVALUATED
        .iter()
        .map(|id| (id.name().to_string(), unn::applicability(&id.build())))
        .collect()
}

/// The §8.3 NPU extension experiment: μLayer with and without an NPU.
#[derive(Clone, Debug)]
pub struct NpuRow {
    /// Network name.
    pub network: String,
    /// μLayer latency on the plain SoC, ms.
    pub base_ms: f64,
    /// μLayer latency with the NPU added, ms.
    pub npu_ms: f64,
}

/// Runs the NPU extension on the high-end SoC.
pub fn npu_extension() -> Vec<NpuRow> {
    let base_spec = SocSpec::exynos_7420();
    let npu_spec = SocSpec::exynos_7420().with_npu();
    let base_rt = ULayer::new(base_spec).expect("ulayer");
    let npu_rt = ULayer::new(npu_spec).expect("ulayer+npu");
    ModelId::EVALUATED
        .iter()
        .map(|id| {
            let g = id.build();
            NpuRow {
                network: id.name().to_string(),
                base_ms: base_rt.run(&g).expect("base").latency_ms(),
                npu_ms: npu_rt.run(&g).expect("npu").latency_ms(),
            }
        })
        .collect()
}

/// One SoC's overhead attribution of a μLayer schedule.
#[derive(Clone, Debug)]
pub struct AttributionReport {
    /// SoC name.
    pub soc: String,
    /// Network name.
    pub network: String,
    /// The full run — its `attribution`, `metrics`, and `trace` feed the
    /// report and the Chrome export.
    pub result: uruntime::RunResult,
    /// What each graph pass did, when the run used the pass-optimized
    /// graph (empty for an unoptimized run).
    pub graph_passes: Vec<unn::PassReport>,
    /// Concat nodes the schedule realized as in-place joins.
    pub elided_concats: usize,
}

/// Runs the μLayer plan for `model` on both evaluated SoCs and returns
/// the schedule's overhead attribution (the §6 management costs made
/// visible). Runs the graph-pass pipeline first (PR 7); use
/// [`overhead_attribution_with_passes`] to opt out. `miniature` swaps in
/// the small functional-test variant so smoke runs stay fast.
pub fn overhead_attribution(model: ModelId, miniature: bool) -> Vec<AttributionReport> {
    overhead_attribution_with_passes(model, miniature, true)
}

/// [`overhead_attribution`] with the graph-pass pipeline explicit:
/// `passes = false` schedules the unoptimized graph (the `--no-passes`
/// escape hatch, and the baseline the merge-shrink check compares
/// against).
pub fn overhead_attribution_with_passes(
    model: ModelId,
    miniature: bool,
    passes: bool,
) -> Vec<AttributionReport> {
    SocSpec::evaluated()
        .into_iter()
        .map(|spec| {
            let g = if miniature {
                model.build_miniature()
            } else {
                model.build()
            };
            let rt = ULayer::new(spec.clone()).expect("ulayer");
            let (result, graph_passes, elided_concats) = if passes {
                let (result, opt) = rt.run_optimized(&g).expect("ulayer run");
                (
                    result,
                    opt.graph_passes,
                    opt.report.plan.elided_concats.len(),
                )
            } else {
                (rt.run(&g).expect("ulayer run"), Vec::new(), 0)
            };
            AttributionReport {
                soc: spec.name.clone(),
                network: model.name().to_string(),
                result,
                graph_passes,
                elided_concats,
            }
        })
        .collect()
}

/// Before/after evidence for the graph-pass pipeline on one network and
/// one SoC: node counts, per-pass reports, and the merge/map overhead
/// classes of the unoptimized vs optimized schedule.
#[derive(Clone, Debug)]
pub struct PassPipelineReport {
    /// SoC name.
    pub soc: String,
    /// Network name.
    pub network: String,
    /// Nodes before the pipeline ran.
    pub nodes_before: usize,
    /// Nodes after fusion/elision/DCE.
    pub nodes_after: usize,
    /// What each graph pass did.
    pub graph_passes: Vec<unn::PassReport>,
    /// What each planning pass did.
    pub plan_passes: Vec<ulayer::PlanPassReport>,
    /// Concat nodes scheduled as in-place joins.
    pub elided_concats: usize,
    /// `(merge, map)` overhead spans of the unoptimized schedule.
    pub before: (simcore::SimSpan, simcore::SimSpan),
    /// `(merge, map)` overhead spans of the optimized schedule.
    pub after: (simcore::SimSpan, simcore::SimSpan),
    /// End-to-end latency of the unoptimized schedule.
    pub latency_before: simcore::SimSpan,
    /// End-to-end latency of the optimized schedule.
    pub latency_after: simcore::SimSpan,
}

/// Runs `model` with and without the graph-pass pipeline on both
/// evaluated SoCs — the data behind `repro passes` and the EXPERIMENTS
/// before/after table.
pub fn pass_pipeline(model: ModelId, miniature: bool) -> Vec<PassPipelineReport> {
    use uruntime::OverheadClass;
    SocSpec::evaluated()
        .into_iter()
        .map(|spec| {
            let g = if miniature {
                model.build_miniature()
            } else {
                model.build()
            };
            let rt = ULayer::new(spec.clone()).expect("ulayer");
            let base = rt.run(&g).expect("unoptimized run");
            let (optd, opt) = rt.run_optimized(&g).expect("optimized run");
            let classes = |r: &uruntime::RunResult| {
                (
                    r.attribution.class_span(OverheadClass::Merge),
                    r.attribution.class_span(OverheadClass::Map),
                )
            };
            PassPipelineReport {
                soc: spec.name.clone(),
                network: model.name().to_string(),
                nodes_before: g.len(),
                nodes_after: opt.graph.len(),
                graph_passes: opt.graph_passes,
                plan_passes: opt.report.pass_log,
                elided_concats: opt.report.plan.elided_concats.len(),
                before: classes(&base),
                after: classes(&optd),
                latency_before: base.latency,
                latency_after: optd.latency,
            }
        })
        .collect()
}

/// One fault scenario's outcome on one SoC, against the fault-free
/// baseline of the same plan.
#[derive(Clone, Debug)]
pub struct FaultScenarioReport {
    /// SoC name.
    pub soc: String,
    /// Network name.
    pub network: String,
    /// The injected scenario.
    pub scenario: simcore::Scenario,
    /// The seed the scenario plan was generated from.
    pub seed: u64,
    /// Fault-free latency of the μLayer plan.
    pub baseline_ms: f64,
    /// Latency under the scenario (resilient execution).
    pub faulted_ms: f64,
    /// Perturbations injected.
    pub injected: u64,
    /// Watchdog retries dispatched.
    pub retries: u64,
    /// Fallback parts re-executed on the surviving processor.
    pub fallback_parts: usize,
    /// Resource time burned by failed-then-retried attempts.
    pub wasted_ms: f64,
    /// The recovered outputs are bit-identical to the fault-free run.
    pub bit_identical: bool,
}

/// Runs `model` under one fault [`simcore::Scenario`] on both evaluated
/// SoCs: plans with μLayer, injects the scenario against the GPU (sized
/// from the fault-free baseline), executes resiliently, and checks the
/// recovered numerics bit-for-bit against the fault-free evaluation.
pub fn fault_scenarios(
    model: ModelId,
    scenario: simcore::Scenario,
    miniature: bool,
    seed: u64,
) -> Vec<FaultScenarioReport> {
    use simcore::{ResourceId, RetryPolicy};

    SocSpec::evaluated()
        .into_iter()
        .map(|spec| {
            let g = if miniature {
                model.build_miniature()
            } else {
                model.build()
            };
            let rt = ULayer::new(spec.clone()).expect("ulayer");
            let mut plan = rt.plan(&g).expect("plan").plan;
            let mut baseline = uruntime::execute_plan(&spec, &g, &plan).expect("baseline");

            let gpu = ResourceId(spec.gpu().0);
            let gpu_dispatches = |b: &uruntime::RunResult| {
                b.trace
                    .records()
                    .iter()
                    .filter(|r| r.resource == gpu)
                    .count()
            };
            let mut dispatches = gpu_dispatches(&baseline);
            if dispatches == 0 {
                // Small (miniature) networks plan CPU-only, leaving the
                // GPU with nothing to fault: force a cooperative split so
                // the scenario has a target and the fallback path runs.
                plan = uruntime::ExecutionPlan::new(
                    &g,
                    &spec,
                    g.nodes()
                        .iter()
                        .map(|n| {
                            if n.kind.is_distributable() {
                                uruntime::NodePlacement::Split {
                                    parts: vec![
                                        (spec.cpu(), DtypePlan::proc_friendly_cpu(), 0.5),
                                        (spec.gpu(), DtypePlan::proc_friendly_gpu(), 0.5),
                                    ],
                                }
                            } else {
                                uruntime::NodePlacement::single(spec.cpu(), DType::QUInt8)
                            }
                        })
                        .collect(),
                    "forced-split",
                )
                .expect("forced split plan");
                baseline = uruntime::execute_plan(&spec, &g, &plan).expect("baseline");
                dispatches = gpu_dispatches(&baseline);
            }
            let policy = RetryPolicy::default();
            let faults =
                scenario.plan(gpu, baseline.latency, dispatches, policy.max_attempts, seed);
            let (faulted, report) =
                uruntime::execute_plan_with_faults(&spec, &g, &plan, &faults, &policy)
                    .expect("resilient run");

            // The recovery guarantee: re-executing the failed parts on
            // the surviving processor reproduces the fault-free bits.
            let w = unn::Weights::random(&g, seed ^ 0x5EED).expect("weights");
            let shape = g.input_shape().clone();
            let input = utensor::Tensor::from_f32(
                shape.clone(),
                (0..shape.numel())
                    .map(|i| (((i * 37) % 101) as f32) / 101.0 - 0.5)
                    .collect(),
            )
            .expect("input");
            let calib = unn::calibrate(&g, &w, std::slice::from_ref(&input)).expect("calib");
            let clean = uruntime::evaluate_plan(&g, &plan, &w, &calib, &input).expect("clean");
            let recovered = uruntime::evaluate_plan_with_recovery(
                &g,
                &plan,
                &w,
                &calib,
                &input,
                &report.fallbacks,
            )
            .expect("recovered");
            let bit_identical = clean.iter().zip(&recovered).all(|(a, b)| a.bit_equal(b));

            // fold, not sum: an empty f64 Sum is -0.0, which renders as
            // "-0.00" in the table.
            let wasted_ms: f64 = report
                .wasted
                .iter()
                .fold(0.0, |acc, a| acc + a.end.since(a.start).as_secs_f64() * 1e3);
            FaultScenarioReport {
                soc: spec.name.clone(),
                network: model.name().to_string(),
                scenario,
                seed,
                baseline_ms: baseline.latency.as_secs_f64() * 1e3,
                faulted_ms: faulted.latency.as_secs_f64() * 1e3,
                injected: report.injected,
                retries: report.retries,
                fallback_parts: report.fallbacks.len(),
                wasted_ms,
                bit_identical,
            }
        })
        .collect()
}

/// One SoC's serving outcome under a seeded arrival process: the
/// degradation ladder μLayer emitted plus the full [`uruntime::ServeReport`].
#[derive(Clone, Debug)]
pub struct ServeScenarioReport {
    /// SoC name.
    pub soc: String,
    /// Network name.
    pub network: String,
    /// The arrival process driven against the ladder.
    pub arrivals: simcore::ArrivalKind,
    /// Seed of the arrival process.
    pub seed: u64,
    /// Mean inter-arrival interval (ms) the process was sized with.
    pub mean_interval_ms: f64,
    /// Per-frame deadline (ms).
    pub deadline_ms: f64,
    /// Ladder rungs: label and realized single-frame latency (ms).
    pub rungs: Vec<(String, f64)>,
    /// The serving outcome (frame accounting, percentiles, metrics).
    pub report: uruntime::ServeReport,
    /// Planner-session stats: the ladder is planned once and every
    /// subsequent per-frame probe hits the drift-keyed cache.
    pub planner: ulayer::PlannerStats,
}

/// Serves `frames` seeded arrivals of `model` through the μLayer-emitted
/// degradation ladder on both evaluated SoCs.
///
/// `rate_fps == 0` sizes the offered load automatically at 2x each SoC's
/// full-rung service rate (guaranteed overload); `deadline_ms == 0`
/// defaults to 2x the full rung's latency. `miniature` swaps in the
/// small functional-test network so smoke runs stay fast.
#[allow(clippy::too_many_arguments)]
pub fn serve_overload(
    model: ModelId,
    arrivals: simcore::ArrivalKind,
    miniature: bool,
    frames: usize,
    rate_fps: f64,
    deadline_ms: f64,
    queue: usize,
    seed: u64,
) -> Vec<ServeScenarioReport> {
    use simcore::{ArrivalProcess, SimSpan};

    SocSpec::evaluated()
        .into_iter()
        .map(|spec| {
            let g = if miniature {
                model.build_miniature()
            } else {
                model.build()
            };
            let rt = ULayer::new(spec.clone()).expect("ulayer");
            let mut planner = ulayer::PlannerSession::new(&rt, ulayer::ReusePolicy::Bucketed);
            let ladder = planner.ladder(&g, None).expect("ladder");
            // Each arriving frame consults the planner for the current
            // ladder; with calm drift every probe after the first is a
            // cache hit, so the planner stats record the steady-state
            // cost a real server would pay.
            for _ in 1..frames.max(1) {
                planner.ladder(&g, None).expect("ladder probe");
            }
            let planner = *planner.stats();
            let full = uruntime::execute_plan(&spec, &g, &ladder[0].plan)
                .expect("full rung")
                .latency;
            let mean = if rate_fps > 0.0 {
                SimSpan::from_secs_f64(1.0 / rate_fps)
            } else {
                SimSpan::from_nanos((full.as_nanos() / 2).max(1))
            };
            let deadline = if deadline_ms > 0.0 {
                SimSpan::from_secs_f64(deadline_ms / 1e3)
            } else {
                full * 2u64
            };
            let times = ArrivalProcess::from_kind(arrivals, mean).times(frames, seed);
            let cfg = uruntime::ServeConfig {
                queue_capacity: queue,
                deadline,
            };
            let report = uruntime::serve_stream(&spec, &g, &ladder, &times, &cfg).expect("serve");
            let rungs = ladder
                .iter()
                .zip(&report.rung_latency)
                .map(|(r, lat)| (r.label.clone(), lat.as_secs_f64() * 1e3))
                .collect();
            ServeScenarioReport {
                soc: spec.name.clone(),
                network: model.name().to_string(),
                arrivals,
                seed,
                mean_interval_ms: mean.as_secs_f64() * 1e3,
                deadline_ms: deadline.as_secs_f64() * 1e3,
                rungs,
                report,
                planner,
            }
        })
        .collect()
}

/// The outcome of a [`fleet_storm`] run: the FIFO-order fleet report
/// plus the schedule-order fuzz gate's verdict.
#[derive(Clone, Debug)]
pub struct FleetStormReport {
    /// The fleet report (FIFO event order).
    pub report: uruntime::FleetReport,
    /// Mean inter-arrival interval (ms) the fleet was sized with.
    pub mean_interval_ms: f64,
    /// Per-frame deadline (ms).
    pub deadline_ms: f64,
    /// Per-cohort rungs: label and realized single-frame latency (ms).
    pub cohort_rungs: Vec<(String, Vec<(String, f64)>)>,
    /// How many seeded-shuffled event orders were re-run.
    pub fuzz_orders: usize,
    /// Shuffle seeds whose report diverged from FIFO (empty = gate ok).
    pub fuzz_mismatches: Vec<u64>,
}

/// Drives a mixed-SoC fleet of `devices` instances through `frames`
/// seeded arrivals each, under an optional correlated storm, with one
/// shared weight allocation and a per-instance `DriftAdapter` — then
/// re-runs the identical fleet under `fuzz_orders` seeded-shuffled
/// event orderings and compares report digests (the order-fuzz gate).
///
/// `rate_fps == 0` sizes the offered load at 2x the slowest cohort's
/// full-rung service rate; `deadline_ms == 0` defaults to 2x that
/// latency. Cohort membership and per-instance silicon perturbation
/// are drawn from `seed`.
#[allow(clippy::too_many_arguments)]
pub fn fleet_storm(
    model: ModelId,
    storm: Option<simcore::FleetScenario>,
    miniature: bool,
    devices: usize,
    frames: usize,
    arrivals: simcore::ArrivalKind,
    rate_fps: f64,
    deadline_ms: f64,
    queue: usize,
    seed: u64,
    fuzz_orders: usize,
    plan_cache: bool,
) -> Result<FleetStormReport, String> {
    use simcore::{SimSpan, TieOrder};
    use uruntime::{FleetCohort, FleetConfig, FleetNetwork, InstanceAdapter};

    let graph = if miniature {
        model.build_miniature()
    } else {
        model.build()
    };
    let weights = unn::Weights::random(&graph, seed).map_err(|e| e.to_string())?;
    let net = FleetNetwork::new(model.name().to_ascii_lowercase(), graph, weights);
    let mut cohorts = Vec::new();
    for spec in SocSpec::evaluated() {
        let rt = ULayer::new(spec.clone()).map_err(|e| e.to_string())?;
        let ladder = rt
            .degradation_ladder(&net.graph, None)
            .map_err(|e| e.to_string())?;
        cohorts.push(FleetCohort::build(&spec, &net.graph, &ladder).map_err(|e| e.to_string())?);
    }
    let cfg = FleetConfig {
        devices,
        frames,
        seed,
        arrivals,
        mean_interval: if rate_fps > 0.0 {
            SimSpan::from_secs_f64(1.0 / rate_fps)
        } else {
            SimSpan::ZERO
        },
        deadline: SimSpan::from_secs_f64(deadline_ms / 1e3),
        queue_capacity: queue,
        order: TieOrder::Fifo,
        plan_cache,
        ..FleetConfig::default()
    };
    let adapter = || -> Box<dyn InstanceAdapter> { Box::new(ulayer::DriftAdapter::new()) };
    let report =
        uruntime::run_fleet(&net, &cohorts, storm, &cfg, &adapter).map_err(|e| e.to_string())?;

    // Reconstruct the auto-sized load parameters for reporting.
    let full_max = cohorts
        .iter()
        .map(|c| c.rungs[0].latency)
        .max()
        .expect("cohorts non-empty");
    let mean = if rate_fps > 0.0 {
        SimSpan::from_secs_f64(1.0 / rate_fps)
    } else {
        SimSpan::from_nanos((full_max.as_nanos() / 2).max(1))
    };
    let deadline = if deadline_ms > 0.0 {
        SimSpan::from_secs_f64(deadline_ms / 1e3)
    } else {
        full_max * 2u64
    };

    // The order-fuzz gate: seeded-shuffled same-timestamp delivery must
    // reproduce the FIFO report byte-for-byte.
    let fifo_digest = report.digest();
    let mut fuzz_mismatches = Vec::new();
    for k in 0..fuzz_orders {
        let shuffle_seed = seed ^ (0x9E37_79B9 + k as u64);
        let fuzz_cfg = FleetConfig {
            order: TieOrder::Shuffled { seed: shuffle_seed },
            ..cfg.clone()
        };
        let fuzzed = uruntime::run_fleet(&net, &cohorts, storm, &fuzz_cfg, &adapter)
            .map_err(|e| e.to_string())?;
        if fuzzed.digest() != fifo_digest {
            fuzz_mismatches.push(shuffle_seed);
        }
    }

    let cohort_rungs = cohorts
        .iter()
        .map(|c| {
            (
                c.soc.clone(),
                c.rungs
                    .iter()
                    .map(|r| (r.label.clone(), r.latency.as_secs_f64() * 1e3))
                    .collect(),
            )
        })
        .collect();
    Ok(FleetStormReport {
        report,
        mean_interval_ms: mean.as_secs_f64() * 1e3,
        deadline_ms: deadline.as_secs_f64() * 1e3,
        cohort_rungs,
        fuzz_orders,
        fuzz_mismatches,
    })
}

/// The outcome of a [`mesh_scenario`] run: the partition-tolerant
/// serving report on an MCU-style mesh plus the numerics gate.
#[derive(Clone, Debug)]
pub struct MeshScenarioReport {
    /// Mesh size (devices).
    pub nodes: usize,
    /// Link-fault scenario driven against the mesh (`None` = clean).
    pub link_fault: Option<simcore::LinkFaultScenario>,
    /// Seed the arrivals and faults were drawn from.
    pub seed: u64,
    /// Mean inter-arrival interval (ms) the stream was sized with.
    pub mean_interval_ms: f64,
    /// Per-frame deadline (ms).
    pub deadline_ms: f64,
    /// Ladder rungs: label and realized single-frame latency (ms).
    pub rungs: Vec<(String, f64)>,
    /// The mesh serving outcome (frame + partition accounting).
    pub report: uruntime::MeshReport,
    /// Whether every rung's quantized output matched the single-device
    /// QUInt8 reference bit for bit.
    pub bit_identical: bool,
    /// Planner-session stats (subset-rung ladder planned once, then
    /// served from the drift-keyed cache).
    pub planner: ulayer::PlannerStats,
}

/// Builds the mesh workload: a compact CNN whose hot conv layers hold
/// a QUInt8 working set larger than one MCU node's RAM
/// ([`usoc::MCU_RAM_BYTES`]), so the partitioner *must* split them
/// across nodes — the split is forced by memory, not won on latency.
/// The MAC count stays small enough for the functional bit-identity
/// gate to run in milliseconds.
pub fn mesh_workload_graph() -> Graph {
    let mut g = Graph::new("mesh-cnn", utensor::Shape::nchw(1, 64, 40, 40));
    let conv = |oc| unn::LayerKind::Conv {
        oc,
        k: 3,
        stride: 1,
        pad: 1,
        relu: true,
    };
    // 64ch at 40x40: ~236 KiB working set per conv, over the 192 KiB node.
    let c1 = g.add_input_layer("conv1", conv(64));
    let c2 = g.add("conv2", conv(64), c1);
    let p = g.add(
        "pool",
        unn::LayerKind::Pool {
            func: unn::PoolFunc::Max,
            k: 2,
            stride: 2,
            pad: 0,
        },
        c2,
    );
    let c3 = g.add("conv3", conv(32), p);
    let fc = g.add(
        "fc",
        unn::LayerKind::FullyConnected {
            out: 10,
            relu: false,
        },
        c3,
    );
    g.add("softmax", unn::LayerKind::Softmax, fc);
    g
}

/// Serves `frames` seeded arrivals through the partition-tolerant
/// ladder on an MCU-style mesh of `nodes` devices, under an optional
/// seeded link-fault scenario targeting the middle link.
///
/// The network is [`mesh_workload_graph`] — sized so a single MCU
/// node's RAM cannot hold the hot layers, forcing genuinely multi-node
/// splits.
/// `rate_fps == 0` sizes the offered load at the full rung's service
/// rate; `deadline_ms == 0` defaults to 4x the full rung's latency
/// (remote rungs pay the wire, so mesh deadlines run looser than
/// on-chip ones). Every rung is uniform QUInt8, and the report carries
/// a bit-identity verdict against the single-device reference.
#[allow(clippy::too_many_arguments)]
pub fn mesh_scenario(
    nodes: usize,
    link_fault: Option<simcore::LinkFaultScenario>,
    frames: usize,
    arrivals: simcore::ArrivalKind,
    rate_fps: f64,
    deadline_ms: f64,
    queue: usize,
    seed: u64,
) -> Result<MeshScenarioReport, String> {
    use simcore::{ArrivalProcess, SimSpan};

    let spec = SocSpec::mcu_mesh(nodes);
    let g = mesh_workload_graph();
    let rt = ULayer::with_config(spec.clone(), ULayerConfig::channel_distribution_only())
        .map_err(|e| e.to_string())?;
    let mut planner = ulayer::PlannerSession::new(&rt, ulayer::ReusePolicy::Bucketed);
    let ladder = planner.ladder(&g, None).map_err(|e| e.to_string())?;
    // Per-frame planner probes, as in `serve_overload`: the subset-rung
    // ladder (the expensive mesh partition search) is planned once and
    // reused planner-free for the rest of the calm stream.
    for _ in 1..frames.max(1) {
        planner.ladder(&g, None).map_err(|e| e.to_string())?;
    }
    let planner = *planner.stats();

    let full_run = uruntime::execute_plan(&spec, &g, &ladder[0].plan).map_err(|e| e.to_string())?;
    let full = full_run.latency;
    let mean = if rate_fps > 0.0 {
        SimSpan::from_secs_f64(1.0 / rate_fps)
    } else {
        full
    };
    let deadline = if deadline_ms > 0.0 {
        SimSpan::from_secs_f64(deadline_ms / 1e3)
    } else {
        full * 4u64
    };
    let times = ArrivalProcess::from_kind(arrivals, mean).times(frames, seed);

    let faults = match link_fault {
        None => simcore::FaultPlan::none(),
        Some(sc) => {
            // Target the middle link: on a line topology that is the
            // cut that strands the most devices.
            let ndev = spec.devices.len();
            let li = spec.links.len() / 2;
            let link_res = simcore::ResourceId(ndev + li);
            let horizon = times
                .last()
                .copied()
                .unwrap_or(simcore::SimTime::ZERO)
                .since(simcore::SimTime::ZERO)
                + deadline;
            let transfers = full_run
                .trace
                .records()
                .iter()
                .filter(|t| t.resource == link_res)
                .count()
                .max(1)
                * frames;
            sc.plan(
                link_res,
                horizon,
                transfers,
                simcore::RetryPolicy::default().max_attempts,
                seed,
            )
        }
    };

    let cfg = uruntime::ServeConfig {
        queue_capacity: queue,
        deadline,
    };
    let report = uruntime::serve_mesh(&spec, &g, &ladder, &times, &cfg, &faults)
        .map_err(|e| e.to_string())?;

    // Numerics gate: every rung — full mesh split, surviving subsets,
    // singles — must be bit-identical to the single-device QUInt8
    // reference (degradation loses latency headroom, never numerics).
    let w = unn::Weights::random(&g, seed).map_err(|e| e.to_string())?;
    let input = utensor::Tensor::from_f32(
        g.input_shape().clone(),
        (0..g.input_shape().numel())
            .map(|i| ((i % 255) as f32) / 255.0)
            .collect(),
    )
    .map_err(|e| e.to_string())?;
    let calib = unn::calibrate(&g, &w, std::slice::from_ref(&input)).map_err(|e| e.to_string())?;
    let reference =
        unn::forward(&g, &w, &calib, &input, DType::QUInt8).map_err(|e| e.to_string())?;
    let logits = g.len() - 2;
    let bit_identical = ladder.iter().all(|rung| {
        uruntime::evaluate_plan(&g, &rung.plan, &w, &calib, &input)
            .map(|outs| outs[logits].bit_equal(&reference[logits]))
            .unwrap_or(false)
    });

    let rungs = ladder
        .iter()
        .zip(&report.serve.rung_latency)
        .map(|(r, lat)| (r.label.clone(), lat.as_secs_f64() * 1e3))
        .collect();
    Ok(MeshScenarioReport {
        nodes: spec.devices.len(),
        link_fault,
        seed,
        mean_interval_ms: mean.as_secs_f64() * 1e3,
        deadline_ms: deadline.as_secs_f64() * 1e3,
        rungs,
        report,
        bit_identical,
        planner,
    })
}

/// One SoC's planner-cache outcome under a seeded drift scenario.
#[derive(Clone, Debug)]
pub struct PlanExperimentReport {
    /// SoC name.
    pub soc: String,
    /// Network name.
    pub network: String,
    /// Drift scenario name (`calm`, `throttle`, `loss`, `oscillate`).
    pub drift: String,
    /// Frames planned through the session.
    pub frames: usize,
    /// Cache-on (bucketed-reuse) session stats: hits, misses,
    /// incremental replans, layer re-enumeration counts, wall time.
    pub stats: ulayer::PlannerStats,
    /// Total modeled planning time of the cache-on arm (deterministic
    /// [`ulayer::planning_span`] charges), milliseconds.
    pub planning_modeled_ms: f64,
    /// Wall-clock of planning every frame from scratch (the
    /// `--plan-cache=off` ablation), milliseconds.
    pub scratch_wall_ms: f64,
    /// Frames whose exact-policy session plan diverged from the
    /// from-scratch plan (must stay empty — the equivalence contract).
    pub equivalence_failures: Vec<usize>,
}

/// Evolves `adapter` one frame along the named drift scenario.
fn drive_drift(
    adapter: &mut ulayer::DriftAdapter,
    spec: &SocSpec,
    drift: &str,
    frame: usize,
    frames: usize,
    seed: u64,
) {
    use simcore::SimSpan;
    let gpu = spec.gpu();
    let predicted = SimSpan::from_millis(10);
    match drift {
        // The cost model stays right: no observations, empty drift key.
        "calm" => {}
        // A sustained 2.5x GPU slowdown starting a third of the way in:
        // the EWMA walks across a few log buckets, then settles.
        "throttle" => {
            if frame >= frames / 3 {
                adapter.observe(gpu, usoc::WorkClass::Gemm, predicted, predicted * 2.5f64);
            }
        }
        // Hard GPU loss at the midpoint: one regime change, one new key.
        "loss" => {
            if frame == frames / 2 {
                adapter.mark_lost(gpu);
            }
        }
        // Jitter inside one hysteresis band: the quantized key must not
        // flap, so all post-warmup frames hit.
        "oscillate" => {
            let phase = (frame as u64 + seed) % 2;
            let ratio = if phase == 0 { 1.0 } else { 1.1 };
            adapter.observe(gpu, usoc::WorkClass::Gemm, predicted, predicted * ratio);
        }
        other => unreachable!("drift scenario `{other}` validated at parse"),
    }
    adapter.finish_frame();
}

/// A plan's identity witness: placements, branch mappings, and the
/// predicted serial latency, Debug-rendered. Two reports are considered
/// byte-identical iff these match.
fn plan_fingerprint(report: &ulayer::PlanReport) -> String {
    format!(
        "{:?}|{:?}|{:?}",
        report.plan.placements, report.branch_mappings, report.predicted_serial_latency
    )
}

/// Plans `frames` frames of `model` through a drift-keyed planner
/// session on both evaluated SoCs while the drift scenario evolves,
/// and cross-checks every exact-policy plan against a from-scratch
/// plan (the incremental-equivalence contract).
///
/// Three arms per SoC: a bucketed-reuse session (the reported cache
/// stats), an exact-policy session (every returned plan must be
/// byte-identical to `plan_with_drift` under the same adapter state),
/// and a from-scratch `plan_with_drift` per frame (the
/// `--plan-cache=off` wall-clock ablation).
pub fn plan_experiment(
    model: ModelId,
    drift: &str,
    miniature: bool,
    frames: usize,
    seed: u64,
) -> Vec<PlanExperimentReport> {
    SocSpec::evaluated()
        .into_iter()
        .map(|spec| {
            let g = if miniature {
                model.build_miniature()
            } else {
                model.build()
            };
            let rt = ULayer::new(spec.clone()).expect("ulayer");
            let mut bucketed = ulayer::PlannerSession::new(&rt, ulayer::ReusePolicy::Bucketed);
            let mut exact = ulayer::PlannerSession::new(&rt, ulayer::ReusePolicy::Exact);
            let mut adapter = ulayer::DriftAdapter::new();
            let mut planning_modeled = simcore::SimSpan::ZERO;
            let mut scratch_wall = std::time::Duration::ZERO;
            let mut equivalence_failures = Vec::new();
            for frame in 0..frames {
                drive_drift(&mut adapter, &spec, drift, frame, frames, seed);
                let planned = bucketed
                    .plan_frame(&g, Some(&adapter))
                    .expect("bucketed plan");
                planning_modeled += planned.planning;
                let incremental = exact.plan_frame(&g, Some(&adapter)).expect("exact plan");
                let t0 = std::time::Instant::now();
                let scratch = rt
                    .plan_with_drift(&g, Some(&adapter))
                    .expect("scratch plan");
                scratch_wall += t0.elapsed();
                if plan_fingerprint(&incremental.report) != plan_fingerprint(&scratch) {
                    equivalence_failures.push(frame);
                }
            }
            PlanExperimentReport {
                soc: spec.name.clone(),
                network: model.name().to_string(),
                drift: drift.to_string(),
                frames,
                stats: *bucketed.stats(),
                planning_modeled_ms: planning_modeled.as_secs_f64() * 1e3,
                scratch_wall_ms: scratch_wall.as_secs_f64() * 1e3,
                equivalence_failures,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::geomean;

    #[test]
    fn fig5_reproduces_section_3_1() {
        let data = fig5();
        assert_eq!(data.len(), 2);
        // High-end: GPU ~1.4x faster on average.
        assert!(
            (1.2..1.55).contains(&data[0].mean_gpu_speedup),
            "high-end mean speedup = {}",
            data[0].mean_gpu_speedup
        );
        // Mid-range: the CPU wins (speedup < 1).
        assert!(
            data[1].mean_gpu_speedup < 0.95,
            "mid-range mean speedup = {}",
            data[1].mean_gpu_speedup
        );
    }

    #[test]
    fn fig12_reproduces_the_case_study_shape() {
        let d = fig12();
        // Cooperative beats CPU-only; branch distribution beats plain
        // cooperative (the paper: 52.1% and 63.4% improvements).
        assert!(d.cooperative_ms < d.cpu_only_ms);
        assert!(d.optimal_ms < d.cooperative_ms);
        let coop_gain = 1.0 - d.cooperative_ms / d.cpu_only_ms;
        let opt_gain = 1.0 - d.optimal_ms / d.cpu_only_ms;
        // Smaller absolute gains than the paper's 52.1%/63.4% (our
        // idealized per-layer latencies are more MAC-proportional than
        // ACL's; see EXPERIMENTS.md), but the ordering and a double-digit
        // improvement hold.
        assert!((0.10..0.75).contains(&coop_gain), "coop gain = {coop_gain}");
        assert!(opt_gain > coop_gain);
    }

    #[test]
    fn evaluation_reproduces_figure_16_shape() {
        let evals = evaluation();
        for eval in &evals {
            let imps: Vec<f64> = eval
                .latency_improvements()
                .into_iter()
                .map(|(_, v)| v)
                .collect();
            // Every network improves over the state of the art.
            assert!(imps.iter().all(|&v| v > 0.0), "{}: {imps:?}", eval.soc);
            // Geomean improvement lands in a band around the paper's
            // 30.5% / 35.3%.
            let geo = 1.0 - geomean(&imps.iter().map(|v| 1.0 - v).collect::<Vec<_>>());
            assert!((0.15..0.60).contains(&geo), "{}: geomean = {geo}", eval.soc);
        }
    }

    #[test]
    fn serve_overload_accounts_every_frame() {
        for rep in serve_overload(
            ModelId::SqueezeNet,
            simcore::ArrivalKind::Bursty,
            true,
            48,
            0.0,
            0.0,
            6,
            7,
        ) {
            rep.report.check_invariants().expect("serving invariants");
            assert_eq!(rep.report.offered, 48);
            assert!(rep.report.queue_peak <= 6);
            assert!(!rep.rungs.is_empty());
        }
    }

    #[test]
    fn mesh_scenario_survives_a_partition_without_shedding() {
        let rep = mesh_scenario(
            4,
            Some(simcore::LinkFaultScenario::Partition),
            16,
            simcore::ArrivalKind::Fixed,
            0.0,
            0.0,
            4,
            42,
        )
        .expect("mesh run");
        rep.report.check_invariants().expect("mesh invariants");
        assert_eq!(rep.report.serve.shed, 0, "partition must not shed frames");
        assert!(rep.report.frames_during_partition > 0, "cut never landed");
        assert!(
            rep.report.partition_degraded > 0,
            "no frame degraded to a surviving-subset rung"
        );
        assert!(rep.bit_identical, "a rung diverged from the reference");
    }

    #[test]
    fn npu_extension_helps() {
        let rows = npu_extension();
        // The NPU adds QUInt8 throughput; at minimum the big networks
        // must get faster.
        let improved = rows.iter().filter(|r| r.npu_ms < r.base_ms).count();
        assert!(improved >= 3, "only {improved}/5 networks improved");
    }
}
