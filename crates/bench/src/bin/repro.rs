//! Regenerates every table and figure of the μLayer paper.
//!
//! ```text
//! repro [fig5|fig6|fig8|fig10|fig12|fig16|fig17|fig18|table1|npu|all]
//! repro trace [net] [--miniature] [--no-passes] [--check-merge] [--trace-out=FILE]
//! repro passes [net] [--miniature]
//! repro faults [net] [--scenario=throttle|flaky-gpu|gpu-loss] [--seed=N] [--miniature]
//! repro serve [net] [--arrivals=fixed|bursty|poisson] [--rate=FPS] [--deadline=MS]
//!             [--queue=N] [--frames=N] [--seed=N] [--miniature] [--trace-out=FILE]
//! repro measure [net] [--miniature] [--threads=N] [--repeat=N]
//!               [--kernel-path=auto|scalar|simd] [--out=FILE] [--baseline=FILE]
//! repro fleet [net] [--devices=N] [--frames=N] [--seed=N] [--miniature]
//!             [--storm=none|throttle-wave|gpu-loss|flaky-epidemic|link-partition]
//!             [--arrivals=fixed|bursty|poisson] [--rate=FPS] [--deadline=MS]
//!             [--queue=N] [--fuzz-orders=N] [--out=FILE] [--baseline=FILE]
//! repro mesh [--nodes=N] [--frames=N] [--seed=N]
//!            [--link-fault=none|drop|delay|jitter|flap|partition]
//!            [--arrivals=fixed|bursty|poisson] [--rate=FPS] [--deadline=MS]
//!            [--queue=N] [--out=FILE] [--baseline=FILE]
//! ```
//!
//! Each subcommand prints paper-style rows; `all` runs everything.
//! Latency/energy figures run on the simulated Exynos 7420/7880 SoCs and
//! complete in seconds; `fig10` trains two classifiers from scratch and
//! takes a few minutes.
//!
//! `trace` runs the μLayer schedule for one network, prints its overhead
//! attribution on both SoCs, and writes the high-end SoC's schedule as a
//! Chrome trace-event JSON file (loadable in `chrome://tracing` or
//! Perfetto).
//!
//! `fleet` simulates a mixed-SoC device fleet under a correlated fault
//! storm, checks the fleet invariants and the schedule-order fuzz gate,
//! and writes a machine-readable `BENCH_fleet.json`.
//!
//! `mesh` serves a RAM-limited MCU-style mesh through the partition-
//! tolerant degradation ladder under a seeded link-fault scenario,
//! checks the exact frame accounting and the QUInt8 bit-identity gate,
//! and writes a machine-readable `BENCH_mesh.json`.
//!
//! Argument parsing is table-driven ([`ubench::cli`]): unknown flags and
//! malformed `--key=value` pairs are typed errors with exit code 2.

use ubench::cli;
use ubench::figures;
use ubench::report::{geomean, ms, opt_ms, pct, ratio, Table};

fn fail(e: cli::CliError) -> ! {
    eprintln!("repro: {e}");
    std::process::exit(2);
}

/// Parses a subcommand's arguments against its flag table, exiting
/// with a typed error on anything the table does not declare.
fn parse_or_exit(sub: &'static str, args: &[String]) -> cli::Parsed {
    let specs = cli::subcommand_flags(sub).expect("registered subcommand");
    cli::parse_flags(sub, args, specs).unwrap_or_else(|e| fail(e))
}

/// Resolves the positional network argument (last one wins), exiting
/// with a typed error on a token that names no network.
fn model_arg(sub: &'static str, p: &cli::Parsed, default: unn::ModelId) -> unn::ModelId {
    let mut model = default;
    for a in &p.positional {
        match parse_model(a) {
            Some(m) => model = m,
            None => fail(cli::CliError::BadPositional {
                subcommand: sub,
                given: a.clone(),
            }),
        }
    }
    model
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `repro --json <dir> [--with-fig10]` exports machine-readable data.
    if args.first().map(String::as_str) == Some("--json") {
        let dir = args.get(1).map(String::as_str).unwrap_or("repro-json");
        for a in args.iter().skip(2) {
            if a != "--with-fig10" {
                fail(cli::CliError::UnknownFlag {
                    subcommand: "--json",
                    flag: a.clone(),
                });
            }
        }
        let with_fig10 = args.iter().any(|a| a == "--with-fig10");
        match ubench::export_all(std::path::Path::new(dir), with_fig10) {
            Ok(files) => {
                println!(
                    "wrote {} documents to {dir}/: {}",
                    files.len(),
                    files.join(", ")
                );
                return;
            }
            Err(e) => {
                eprintln!("export failed: {e}");
                std::process::exit(1);
            }
        }
    }
    match args.first().map(String::as_str) {
        Some("trace") => return trace(&args[1..]),
        Some("passes") => return passes_cmd(&args[1..]),
        Some("faults") => return faults(&args[1..]),
        Some("serve") => return serve(&args[1..]),
        Some("measure") => return measure_cmd(&args[1..]),
        Some("fleet") => return fleet_cmd(&args[1..]),
        Some("mesh") => return mesh_cmd(&args[1..]),
        Some("plan") => return plan_cmd(&args[1..]),
        _ => {}
    }
    let what = args.first().map(String::as_str).unwrap_or("all");
    let known = [
        "fig5",
        "fig6",
        "fig8",
        "fig10",
        "fig12",
        "fig16",
        "fig17",
        "fig18",
        "table1",
        "npu",
        "predictor",
        "sweeps",
        "all",
    ];
    if !known.contains(&what) {
        eprintln!(
            "repro: {}\nusage: repro [{}|trace|passes|faults|serve|measure|fleet|mesh|plan] | repro --json <dir> [--with-fig10]",
            cli::CliError::UnknownSubcommand { given: what.into() },
            known.join("|")
        );
        std::process::exit(2);
    }
    if let Some(a) = args.get(1) {
        fail(cli::CliError::UnknownFlag {
            subcommand: "figures",
            flag: a.clone(),
        });
    }
    let run = |name: &str| what == name || what == "all";

    if run("table1") {
        table1();
    }
    if run("fig5") {
        fig5();
    }
    if run("fig6") {
        fig6();
    }
    if run("fig8") {
        fig8();
    }
    if run("fig10") {
        fig10();
    }
    if run("fig12") {
        fig12();
    }
    if run("fig16") {
        fig16();
    }
    if run("fig17") {
        fig17();
    }
    if run("fig18") {
        fig18();
    }
    if run("npu") {
        npu();
    }
    if run("predictor") {
        predictor();
    }
    if run("sweeps") {
        sweeps();
    }
}

fn parse_model(name: &str) -> Option<unn::ModelId> {
    match name.to_ascii_lowercase().as_str() {
        "vgg16" | "vgg" => Some(unn::ModelId::Vgg16),
        "alexnet" => Some(unn::ModelId::AlexNet),
        "squeezenet" => Some(unn::ModelId::SqueezeNet),
        "googlenet" => Some(unn::ModelId::GoogLeNet),
        "mobilenet" => Some(unn::ModelId::MobileNet),
        _ => None,
    }
}

/// `repro trace [net] [--miniature] [--no-passes] [--check-merge]
/// [--trace-out=FILE]`: overhead attribution on both SoCs plus a Chrome
/// trace-event JSON export of the high-end SoC's schedule. The schedule
/// runs over the pass-optimized graph unless `--no-passes` is given;
/// `--check-merge` additionally runs the unoptimized baseline and exits
/// non-zero unless the merge overhead class shrank (or is zero).
fn trace(args: &[String]) {
    let p = parse_or_exit("trace", args);
    let model = model_arg("trace", &p, unn::ModelId::Vgg16);
    let miniature = p.switch("--miniature");
    let passes = !p.switch("--no-passes");
    let check_merge = p.switch("--check-merge");
    let out_path: Option<String> = p.str_of("--trace-out").map(str::to_string);

    heading(&format!(
        "Schedule observability: uLayer {} (overhead attribution + trace export{})",
        model.name(),
        if passes { "" } else { ", passes off" }
    ));
    let reports = figures::overhead_attribution_with_passes(model, miniature, passes);
    for rep in &reports {
        println!("\n--- {} ---", rep.soc);
        if !rep.graph_passes.is_empty() {
            for p in &rep.graph_passes {
                println!(
                    "pass {:<18} {:>3} rewrites  {}",
                    p.pass, p.rewrites, p.detail
                );
            }
            println!("elided concats: {}", rep.elided_concats);
        }
        print!("{}", rep.result.attribution.render_text());
        println!("\ncounters:");
        print!("{}", rep.result.metrics.render());
    }

    if check_merge {
        let baseline = figures::overhead_attribution_with_passes(model, miniature, false);
        let optimized = if passes {
            reports.clone()
        } else {
            figures::overhead_attribution_with_passes(model, miniature, true)
        };
        let mut ok = true;
        println!();
        for (b, o) in baseline.iter().zip(&optimized) {
            let before = b
                .result
                .attribution
                .class_span(uruntime::OverheadClass::Merge);
            let after = o
                .result
                .attribution
                .class_span(uruntime::OverheadClass::Merge);
            let shrank = after < before || after == simcore::SimSpan::ZERO;
            println!(
                "merge check {}: {} -> {} ({} concats elided) {}",
                b.soc,
                ms(before.as_millis_f64()),
                ms(after.as_millis_f64()),
                o.elided_concats,
                if shrank { "OK" } else { "FAIL" }
            );
            ok &= shrank;
        }
        if !ok {
            eprintln!("merge overhead did not shrink with the pass pipeline");
            std::process::exit(1);
        }
    }

    // Export the high-end SoC's schedule and prove it round-trips.
    let rep = &reports[0];
    let json = uruntime::chrome_trace_json(&rep.result.trace, &rep.result.resource_names);
    let path = out_path.unwrap_or_else(|| {
        format!(
            "trace-{}.json",
            model.name().to_ascii_lowercase().replace([' ', '.'], "-")
        )
    });
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(1);
    }
    let reread = std::fs::read_to_string(&path).expect("reread trace file");
    match simcore::validate_chrome_trace(&reread) {
        Ok(summary) => println!(
            "\nwrote {path}: {} events on {} tracks (validated; load in chrome://tracing or Perfetto)",
            summary.complete_events, summary.tracks
        ),
        Err(e) => {
            eprintln!("exported trace failed validation: {e}");
            std::process::exit(1);
        }
    }
}

/// `repro passes [net] [--miniature]`: the graph-pass pipeline report —
/// per-pass rewrite counts, node counts before/after, elided concats,
/// and the before/after merge/map overhead attribution on both SoCs.
fn passes_cmd(args: &[String]) {
    let p = parse_or_exit("passes", args);
    let model = model_arg("passes", &p, unn::ModelId::GoogLeNet);
    let miniature = p.switch("--miniature");

    heading(&format!(
        "Graph pass pipeline: {} (fusion, quant-pair elision, concat elision, DCE)",
        model.name()
    ));
    for rep in figures::pass_pipeline(model, miniature) {
        println!("\n--- {} ---", rep.soc);
        println!(
            "nodes: {} -> {} ({} concats elided)",
            rep.nodes_before, rep.nodes_after, rep.elided_concats
        );
        for p in &rep.graph_passes {
            println!(
                "graph pass {:<18} {:>3} rewrites  {}",
                p.pass, p.rewrites, p.detail
            );
        }
        for p in &rep.plan_passes {
            println!(
                "plan pass  {:<18} {:>3} rewrites  {}",
                p.pass, p.rewrites, p.detail
            );
        }
        let mut t = Table::new(&["overhead", "before", "after"]);
        t.row(vec![
            "merge".into(),
            ms(rep.before.0.as_millis_f64()),
            ms(rep.after.0.as_millis_f64()),
        ]);
        t.row(vec![
            "map".into(),
            ms(rep.before.1.as_millis_f64()),
            ms(rep.after.1.as_millis_f64()),
        ]);
        t.row(vec![
            "total latency".into(),
            ms(rep.latency_before.as_millis_f64()),
            ms(rep.latency_after.as_millis_f64()),
        ]);
        print!("{}", t.render());
    }
}

/// `repro faults [net] [--scenario=NAME] [--seed=N] [--miniature]`:
/// resilient execution under injected faults, against the fault-free
/// baseline. Exits non-zero if recovery is not bit-identical, or if the
/// flaky-gpu scenario fails to exercise both the retry and the fallback
/// path.
fn faults(args: &[String]) {
    let p = parse_or_exit("faults", args);
    let model = model_arg("faults", &p, unn::ModelId::SqueezeNet);
    let miniature = p.switch("--miniature");
    let seed = p.u64_of("--seed").unwrap_or(42);
    let scenarios: Vec<simcore::Scenario> = match p.str_of("--scenario") {
        Some(s) => vec![simcore::Scenario::from_name(s).expect("validated at parse")],
        None => simcore::Scenario::ALL.to_vec(),
    };

    heading(&format!(
        "Fault injection: uLayer {} under {} (seed {seed})",
        model.name(),
        scenarios
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(", "),
    ));
    let mut violations = Vec::new();
    for &scenario in &scenarios {
        let reports = figures::fault_scenarios(model, scenario, miniature, seed);
        println!("\n--- scenario: {} ---", scenario.name());
        let mut t = Table::new(&[
            "SoC",
            "Baseline (ms)",
            "Faulted (ms)",
            "Slowdown",
            "Injected",
            "Retries",
            "Fallbacks",
            "Wasted (ms)",
            "Bit-identical",
        ]);
        for r in &reports {
            t.row(vec![
                r.soc.clone(),
                ms(r.baseline_ms),
                ms(r.faulted_ms),
                ratio(r.faulted_ms / r.baseline_ms),
                r.injected.to_string(),
                r.retries.to_string(),
                r.fallback_parts.to_string(),
                ms(r.wasted_ms),
                if r.bit_identical { "yes" } else { "NO" }.to_string(),
            ]);
            if !r.bit_identical {
                violations.push(format!(
                    "{} / {}: recovered outputs diverge from the fault-free run",
                    r.soc,
                    scenario.name()
                ));
            }
            if scenario == simcore::Scenario::FlakyGpu && (r.retries < 1 || r.fallback_parts < 1) {
                violations.push(format!(
                    "{} / flaky-gpu: expected >=1 retry and >=1 fallback, got {} and {}",
                    r.soc, r.retries, r.fallback_parts
                ));
            }
        }
        print!("{}", t.render());
    }
    println!("\n(recovery re-executes only the failed parts' output channels on the");
    println!(" surviving processor; outputs stay bit-identical to the fault-free run)");
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("FAULT-RUN VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}

/// `repro serve [net] [--arrivals=NAME] [--rate=FPS] [--deadline=MS]
/// [--queue=N] [--frames=N] [--seed=N] [--miniature] [--trace-out=FILE]`:
/// overload-robust serving of a seeded arrival stream through the
/// μLayer degradation ladder. Prints the SLO table (per-rung counts,
/// shed/rejected, latency percentiles) and exits non-zero if a serving
/// invariant breaks — the queue exceeding its bound, or offered frames
/// not partitioning exactly into completed/degraded/shed.
fn serve(args: &[String]) {
    let p = parse_or_exit("serve", args);
    let model = model_arg("serve", &p, unn::ModelId::SqueezeNet);
    let miniature = p.switch("--miniature");
    let arrivals = p
        .str_of("--arrivals")
        .map(|s| simcore::ArrivalKind::from_name(s).expect("validated at parse"))
        .unwrap_or(simcore::ArrivalKind::Bursty);
    let rate_fps = p.f64_of("--rate").unwrap_or(0.0);
    let deadline_ms = p.f64_of("--deadline").unwrap_or(0.0);
    let queue = p.usize_of("--queue").unwrap_or(8);
    let frames = p.usize_of("--frames").unwrap_or(96);
    let seed = p.u64_of("--seed").unwrap_or(42);
    let out_path: Option<String> = p.str_of("--trace-out").map(str::to_string);

    heading(&format!(
        "Overload serving: uLayer {} under {} arrivals (seed {seed}, {frames} frames, queue {queue})",
        model.name(),
        arrivals,
    ));
    let reports = figures::serve_overload(
        model,
        arrivals,
        miniature,
        frames,
        rate_fps,
        deadline_ms,
        queue,
        seed,
    );
    let mut violations = Vec::new();
    for rep in &reports {
        let r = &rep.report;
        println!(
            "\n--- {} (mean interval {}, deadline {}) ---",
            rep.soc,
            ms(rep.mean_interval_ms),
            ms(rep.deadline_ms)
        );
        let mut t = Table::new(&["Rung", "Service (ms)", "Frames"]);
        for ((label, lat_ms), count) in rep.rungs.iter().zip(&r.rung_counts) {
            t.row(vec![label.clone(), ms(*lat_ms), count.to_string()]);
        }
        print!("{}", t.render());
        let mut t = Table::new(&[
            "Offered",
            "Completed",
            "Degraded",
            "Shed",
            "Rejected",
            "Queue peak/cap",
            "p50",
            "p95",
            "p99",
        ]);
        t.row(vec![
            r.offered.to_string(),
            r.completed.to_string(),
            r.degraded.to_string(),
            r.shed.to_string(),
            r.rejected.to_string(),
            format!("{}/{}", r.queue_peak, r.queue_capacity),
            opt_ms(r.latency_percentile(0.50)),
            opt_ms(r.latency_percentile(0.95)),
            opt_ms(r.latency_percentile(0.99)),
        ]);
        print!("{}", t.render());
        let ps = &rep.planner;
        println!(
            "planner: {} probes, {} hit / {} miss (hit rate {:.1}%), {:.3} ms wall",
            ps.frames,
            ps.cache_hits,
            ps.cache_misses,
            ps.hit_rate() * 100.0,
            ps.wall_ns as f64 / 1e6
        );
        if let Err(e) = r.check_invariants() {
            violations.push(format!("{} / {}: {e}", rep.soc, rep.network));
        }
    }

    // Optionally export the high-end SoC's serving timeline.
    if let Some(path) = out_path {
        let json = reports[0].report.chrome_trace_json();
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        match simcore::validate_chrome_trace(&json) {
            Ok(summary) => println!(
                "\nwrote {path}: {} events on {} tracks (admission/rung/shed overlays)",
                summary.complete_events, summary.tracks
            ),
            Err(e) => {
                eprintln!("exported serving trace failed validation: {e}");
                std::process::exit(1);
            }
        }
    }

    println!("\n(bounded admission rejects at the door; the ladder degrades per-frame");
    println!(" from predicted slack and climbs back once the backlog drains)");
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("SERVE INVARIANT VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}

/// `repro measure [net] [--miniature] [--threads=N] [--repeat=N]
/// [--kernel-path={auto|scalar|simd}] [--out=FILE] [--baseline=FILE]`:
/// wall-clock measurement of the μLayer cooperative plan against the
/// single-processor CPU baseline on real worker threads, plus predictor
/// calibration from the measured samples. Writes a machine-readable
/// `BENCH_exec.json`; with `--baseline=FILE` also schema-checks a
/// checked-in baseline document.
fn measure_cmd(args: &[String]) {
    let p = parse_or_exit("measure", args);
    let model = model_arg("measure", &p, unn::ModelId::SqueezeNet);
    let miniature = p.switch("--miniature");
    let threads = p
        .usize_of("--threads")
        .unwrap_or_else(|| uexec::ExecConfig::from_env().cpu_threads);
    let repeat = p.usize_of("--repeat").unwrap_or(3);
    let kernel_path = p
        .str_of("--kernel-path")
        .map(|s| ukernels::PathChoice::parse(s).expect("validated at parse"))
        .unwrap_or_else(ukernels::PathChoice::from_env);
    let out_path = p.str_of("--out").unwrap_or("BENCH_exec.json").to_string();
    let baseline: Option<String> = p.str_of("--baseline").map(str::to_string);

    heading(&format!(
        "Measured execution: uLayer {} on real worker pools ({threads} threads/pool, best of {repeat})",
        model.name()
    ));
    println!(
        "kernel path: {} (resolved: {}), cpu features: {}",
        kernel_path.as_str(),
        kernel_path.resolve().as_str(),
        ukernels::cpu_features(),
    );
    if kernel_path == ukernels::PathChoice::Simd
        && kernel_path.resolve() == ukernels::KernelPath::Scalar
    {
        println!("WARN: SIMD requested but this host lacks the CPU features; running scalar");
    }

    let g = if miniature {
        model.build_miniature()
    } else {
        model.build()
    };
    let w = unn::Weights::random(&g, 5).expect("weights");
    let shape = g.input_shape().clone();
    let x = utensor::Tensor::from_f32(
        shape.clone(),
        (0..shape.numel())
            .map(|i| (((i * 31) % 200) as f32) / 100.0 - 1.0)
            .collect(),
    )
    .expect("input");
    let calib = unn::calibrate(&g, &w, std::slice::from_ref(&x)).expect("calibrate");

    let spec = usoc::SocSpec::exynos_7420();
    let runtime = ulayer::ULayer::new(spec.clone()).expect("ulayer runtime");
    let coop_plan = runtime.plan(&g).expect("ulayer plan").plan;
    let single_plan =
        uruntime::single_processor_plan(&g, &spec, spec.cpu(), utensor::DType::QUInt8)
            .expect("single plan");

    let report = uexec::measure(
        &spec,
        &g,
        &w,
        &calib,
        &x,
        &coop_plan,
        &single_plan,
        &uexec::MeasureConfig {
            threads,
            repeat,
            kernel_path,
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("measurement failed: {e}");
        std::process::exit(1);
    });

    // Calibrate the predictor from the measured cooperative samples.
    let measured: Vec<ulayer::MeasuredSample> = report
        .samples
        .iter()
        .map(|s| ulayer::MeasuredSample {
            device: s.device,
            class: s.class,
            compute_dtype: s.compute_dtype,
            macs: s.macs,
            bytes: s.bytes,
            seconds: s.seconds,
        })
        .collect();
    let (_fitted, fit) = ulayer::LatencyPredictor::fit_from_measurements(&measured);

    let mut t = Table::new(&["Layer", "Kind", "Coop (ms)", "Single (ms)"]);
    for row in &report.layers {
        t.row(vec![
            row.name.clone(),
            row.kind.clone(),
            ms(row.coop_s * 1e3),
            ms(row.single_s * 1e3),
        ]);
    }
    print!("{}", t.render());

    println!(
        "\ntotal wall: cooperative {} vs single-pool {} => measured speedup {}",
        ms(report.coop_total_s * 1e3),
        ms(report.single_total_s * 1e3),
        ratio(report.measured_speedup),
    );
    println!(
        "modeled speedup (simulator): {}",
        ratio(report.modeled_speedup)
    );
    if report.host_parallelism < 2 {
        println!(
            "note: host has {} core(s); the two pools time-share, so cooperative \
             execution cannot beat the single pool here (expected on CI)",
            report.host_parallelism
        );
    } else if report.measured_speedup <= 1.0 {
        println!(
            "WARN: cooperative did not beat single-pool on this {}-core host",
            report.host_parallelism
        );
    }

    println!(
        "\npredictor calibration: {} samples fitted into {} models ({} skipped), \
         mean in-sample rel. err {}",
        fit.samples_used,
        fit.groups.len(),
        fit.samples_skipped,
        pct(fit.mean_rel_err()),
    );
    let mut t = Table::new(&["Device", "Class", "Dtype", "Samples", "Rel. err"]);
    for gfit in &fit.groups {
        t.row(vec![
            spec.device(gfit.device)
                .map(|d| d.name.clone())
                .unwrap_or_else(|_| format!("{}", gfit.device)),
            format!("{:?}", gfit.class),
            format!("{}", gfit.compute_dtype),
            gfit.samples.to_string(),
            pct(gfit.mean_rel_err),
        ]);
    }
    print!("{}", t.render());

    let json = measure_json(&spec, &report, &fit);
    if let Err(e) = std::fs::write(&out_path, json.render()) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {out_path}");

    if let Some(path) = baseline {
        match std::fs::read_to_string(&path) {
            Ok(doc) => {
                if let Err(missing) = check_measure_schema(&doc) {
                    eprintln!("baseline {path} fails the schema check: missing {missing}");
                    std::process::exit(1);
                }
                println!("baseline {path}: schema ok");
            }
            Err(e) => {
                eprintln!("failed to read baseline {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// The machine-readable measurement document (`BENCH_exec.json`).
fn measure_json(
    spec: &usoc::SocSpec,
    report: &uexec::MeasureReport,
    fit: &ulayer::FitReport,
) -> ubench::Json {
    use ubench::Json;
    let dev_name = |id: usoc::DeviceId| {
        spec.device(id)
            .map(|d| d.name.clone())
            .unwrap_or_else(|_| format!("{id}"))
    };
    Json::obj(vec![
        ("schema", Json::s(MEASURE_SCHEMA)),
        ("model", Json::s(report.model.clone())),
        ("soc", Json::s(spec.name.clone())),
        ("threads", Json::n(report.threads as f64)),
        ("repeat", Json::n(report.repeat as f64)),
        ("host_parallelism", Json::n(report.host_parallelism as f64)),
        (
            "kernel_path_requested",
            Json::s(report.kernel_path_requested.clone()),
        ),
        ("kernel_path", Json::s(report.kernel_path.clone())),
        ("cpu_features", Json::s(report.cpu_features.clone())),
        ("direct_conv", Json::Bool(report.direct_conv)),
        (
            "coop",
            Json::obj(vec![
                ("label", Json::s(report.coop_label.clone())),
                ("total_s", Json::n(report.coop_total_s)),
            ]),
        ),
        (
            "single",
            Json::obj(vec![
                ("label", Json::s(report.single_label.clone())),
                ("total_s", Json::n(report.single_total_s)),
            ]),
        ),
        ("measured_speedup", Json::n(report.measured_speedup)),
        ("modeled_speedup", Json::n(report.modeled_speedup)),
        (
            "fit",
            Json::obj(vec![
                ("samples_used", Json::n(fit.samples_used as f64)),
                ("samples_skipped", Json::n(fit.samples_skipped as f64)),
                ("mean_rel_err", Json::n(fit.mean_rel_err())),
                (
                    "groups",
                    Json::Arr(
                        fit.groups
                            .iter()
                            .map(|gf| {
                                Json::obj(vec![
                                    ("device", Json::s(dev_name(gf.device))),
                                    ("class", Json::s(format!("{:?}", gf.class))),
                                    ("dtype", Json::s(format!("{}", gf.compute_dtype))),
                                    ("samples", Json::n(gf.samples as f64)),
                                    ("mean_rel_err", Json::n(gf.mean_rel_err)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "layers",
            Json::Arr(
                report
                    .layers
                    .iter()
                    .map(|l| {
                        Json::obj(vec![
                            ("node", Json::n(l.node as f64)),
                            ("name", Json::s(l.name.clone())),
                            ("kind", Json::s(l.kind.clone())),
                            ("coop_s", Json::n(l.coop_s)),
                            ("single_s", Json::n(l.single_s)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Schema tag of the measurement document. v2 adds `kernel_path_requested`,
/// `kernel_path`, `cpu_features`, and `direct_conv`; v1 documents (without
/// those keys) are still accepted by the checker.
const MEASURE_SCHEMA: &str = "ulayer-exec-measure/v2";

/// Checks that `doc` carries a known measurement schema tag and every
/// key that tag requires. Returns the first missing marker.
fn check_measure_schema(doc: &str) -> Result<(), &'static str> {
    let v2 = doc.contains("\"schema\":\"ulayer-exec-measure/v2\"");
    if !v2 && !doc.contains("\"schema\":\"ulayer-exec-measure/v1\"") {
        return Err("\"schema\":\"ulayer-exec-measure/v1|v2\"");
    }
    let mut required = vec![
        "\"model\"",
        "\"soc\"",
        "\"threads\"",
        "\"repeat\"",
        "\"host_parallelism\"",
        "\"coop\"",
        "\"single\"",
        "\"measured_speedup\"",
        "\"modeled_speedup\"",
        "\"fit\"",
        "\"layers\"",
    ];
    if v2 {
        required.extend([
            "\"kernel_path_requested\"",
            "\"kernel_path\"",
            "\"cpu_features\"",
            "\"direct_conv\"",
        ]);
    }
    for marker in required {
        if !doc.contains(marker) {
            return Err(marker);
        }
    }
    Ok(())
}

/// `repro fleet [net] [--devices=N] [--frames=N] [--seed=N]
/// [--storm=none|throttle-wave|gpu-loss|flaky-epidemic] [--arrivals=NAME]
/// [--rate=FPS] [--deadline=MS] [--queue=N] [--fuzz-orders=N]
/// [--miniature] [--out=FILE] [--baseline=FILE]`:
/// a mixed-SoC device fleet served through the μLayer degradation
/// ladder under a correlated fault storm, with one shared weight
/// allocation and per-instance drift adapters. Prints the SLO rollup,
/// writes `BENCH_fleet.json`, and exits non-zero if a fleet invariant
/// breaks or the FIFO-vs-shuffled schedule-order gate diverges.
fn fleet_cmd(args: &[String]) {
    let p = parse_or_exit("fleet", args);
    let model = model_arg("fleet", &p, unn::ModelId::SqueezeNet);
    let miniature = p.switch("--miniature");
    let devices = p.usize_of("--devices").unwrap_or(64);
    let frames = p.usize_of("--frames").unwrap_or(32);
    let seed = p.u64_of("--seed").unwrap_or(42);
    let storm_name = p.str_of("--storm").unwrap_or("gpu-loss").to_string();
    let storm = if storm_name == "none" {
        None
    } else {
        Some(simcore::FleetScenario::from_name(&storm_name).expect("validated at parse"))
    };
    let arrivals = p
        .str_of("--arrivals")
        .map(|s| simcore::ArrivalKind::from_name(s).expect("validated at parse"))
        .unwrap_or(simcore::ArrivalKind::Bursty);
    let rate_fps = p.f64_of("--rate").unwrap_or(0.0);
    let deadline_ms = p.f64_of("--deadline").unwrap_or(0.0);
    let queue = p.usize_of("--queue").unwrap_or(8);
    let fuzz_orders = p.usize_of("--fuzz-orders").unwrap_or(2);
    let plan_cache = p.str_of("--plan-cache").unwrap_or("on") == "on";
    let min_hit_rate = p.f64_of("--min-hit-rate");
    let out_path = p.str_of("--out").unwrap_or("BENCH_fleet.json").to_string();
    let baseline: Option<String> = p.str_of("--baseline").map(str::to_string);

    heading(&format!(
        "Fleet chaos serving: {devices} devices x {} under storm `{storm_name}` (seed {seed}, {frames} frames/device)",
        model.name(),
    ));
    let rep = figures::fleet_storm(
        model,
        storm,
        miniature,
        devices,
        frames,
        arrivals,
        rate_fps,
        deadline_ms,
        queue,
        seed,
        fuzz_orders,
        plan_cache,
    )
    .unwrap_or_else(|e| {
        eprintln!("fleet run failed: {e}");
        std::process::exit(1);
    });
    let r = &rep.report;

    for (soc, rungs) in &rep.cohort_rungs {
        println!("\n--- cohort: {soc} ---");
        let mut t = Table::new(&["Rung", "Service (ms)"]);
        for (label, lat_ms) in rungs {
            t.row(vec![label.clone(), ms(*lat_ms)]);
        }
        print!("{}", t.render());
    }
    println!(
        "\ncohort instances: {} (mean interval {} ms, deadline {} ms)",
        r.cohort_socs
            .iter()
            .zip(&r.cohort_instances)
            .map(|(s, n)| format!("{s}: {n}"))
            .collect::<Vec<_>>()
            .join(", "),
        ms(rep.mean_interval_ms),
        ms(rep.deadline_ms),
    );

    let mut t = Table::new(&[
        "Offered",
        "Completed",
        "Degraded",
        "Shed",
        "Rejected",
        "Queue peak/cap",
        "p50",
        "p95",
        "p99",
        "p99.9",
    ]);
    t.row(vec![
        r.offered.to_string(),
        r.completed.to_string(),
        r.degraded.to_string(),
        r.shed.to_string(),
        r.rejected.to_string(),
        format!("{}/{}", r.queue_peak, r.queue_capacity),
        opt_ms(r.latency_percentile(0.50)),
        opt_ms(r.latency_percentile(0.95)),
        opt_ms(r.latency_percentile(0.99)),
        opt_ms(r.latency_percentile(0.999)),
    ]);
    print!("{}", t.render());

    let mut t = Table::new(&["Rung occupancy", "Frames"]);
    for (label, count) in &r.rung_occupancy {
        t.row(vec![label.clone(), count.to_string()]);
    }
    print!("{}", t.render());

    println!(
        "\nchaos: {} retries, {} fallbacks, {} throttled dispatches, {} realized deadline misses, {} GPUs lost",
        r.retries, r.fallbacks, r.throttled, r.missed, r.gpu_lost_devices
    );
    println!(
        "weights: {} bytes shared across the fleet in {} allocation(s) (per-device copies would cost {} bytes)",
        r.weight_bytes, r.weight_copies, r.naive_weight_bytes
    );
    println!("fleet energy: {:.3} J", r.energy_j);
    println!(
        "planner: cache {}, {} hit / {} miss (hit rate {:.1}%), {:.3} ms modeled planning",
        if r.plan_cache_enabled { "on" } else { "off" },
        r.plan_hits,
        r.plan_misses,
        r.plan_hit_rate() * 100.0,
        r.planning.as_millis_f64()
    );

    let mut violations = Vec::new();
    if let Err(e) = r.check_invariants() {
        violations.push(format!("fleet invariant: {e}"));
    }
    if let Some(min) = min_hit_rate {
        if r.plan_hit_rate() < min {
            violations.push(format!(
                "plan-cache hit rate {:.3} below the --min-hit-rate gate {min}",
                r.plan_hit_rate()
            ));
        }
    }
    if rep.fuzz_mismatches.is_empty() {
        println!(
            "order-fuzz gate: {} shuffled orders, all byte-identical to FIFO",
            rep.fuzz_orders
        );
    } else {
        violations.push(format!(
            "order-fuzz gate: shuffle seeds {:?} diverged from the FIFO report",
            rep.fuzz_mismatches
        ));
    }

    let json = fleet_json(&rep, &storm_name);
    if let Err(e) = std::fs::write(&out_path, json.render()) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    if let Some(path) = baseline {
        match std::fs::read_to_string(&path) {
            Ok(doc) => {
                if let Err(missing) = check_fleet_schema(&doc) {
                    eprintln!("baseline {path} fails the schema check: missing {missing}");
                    std::process::exit(1);
                }
                println!("baseline {path}: schema ok");
            }
            Err(e) => {
                eprintln!("failed to read baseline {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    println!("\n(one weight allocation serves every instance; storms are correlated across");
    println!(" the fleet but each instance's faults, arrivals, and drift state are its own)");
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("FLEET VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}

fn mesh_cmd(args: &[String]) {
    let p = parse_or_exit("mesh", args);
    if let Some(a) = p.positional.first() {
        // The mesh network is fixed (the RAM-limited mesh CNN);
        // a positional is always a mistake.
        fail(cli::CliError::BadPositional {
            subcommand: "mesh",
            given: a.clone(),
        });
    }
    let nodes = p.usize_of("--nodes").unwrap_or(4);
    let frames = p.usize_of("--frames").unwrap_or(32);
    let seed = p.u64_of("--seed").unwrap_or(42);
    let fault_name = p.str_of("--link-fault").unwrap_or("partition").to_string();
    let link_fault = if fault_name == "none" {
        None
    } else {
        Some(simcore::LinkFaultScenario::from_name(&fault_name).expect("validated at parse"))
    };
    let arrivals = p
        .str_of("--arrivals")
        .map(|s| simcore::ArrivalKind::from_name(s).expect("validated at parse"))
        .unwrap_or(simcore::ArrivalKind::Fixed);
    let rate_fps = p.f64_of("--rate").unwrap_or(0.0);
    let deadline_ms = p.f64_of("--deadline").unwrap_or(0.0);
    let queue = p.usize_of("--queue").unwrap_or(4);
    let out_path = p.str_of("--out").unwrap_or("BENCH_mesh.json").to_string();
    let baseline: Option<String> = p.str_of("--baseline").map(str::to_string);

    heading(&format!(
        "Mesh serving: {nodes}-node MCU mesh under link fault `{fault_name}` (seed {seed}, {frames} frames)",
    ));
    let rep = figures::mesh_scenario(
        nodes,
        link_fault,
        frames,
        arrivals,
        rate_fps,
        deadline_ms,
        queue,
        seed,
    )
    .unwrap_or_else(|e| {
        eprintln!("mesh run failed: {e}");
        std::process::exit(1);
    });
    let r = &rep.report;

    let mut t = Table::new(&["Rung", "Service (ms)"]);
    for (label, lat_ms) in &rep.rungs {
        t.row(vec![label.clone(), ms(*lat_ms)]);
    }
    print!("{}", t.render());
    println!(
        "\n{} nodes over {} links (mean interval {} ms, deadline {} ms)",
        rep.nodes,
        r.links,
        ms(rep.mean_interval_ms),
        ms(rep.deadline_ms),
    );

    let s = &r.serve;
    let mut t = Table::new(&[
        "Offered",
        "Completed",
        "Degraded",
        "Shed",
        "Rejected",
        "Queue peak/cap",
        "p50",
        "p95",
        "p99",
    ]);
    t.row(vec![
        s.offered.to_string(),
        s.completed.to_string(),
        s.degraded.to_string(),
        s.shed.to_string(),
        s.rejected.to_string(),
        format!("{}/{}", s.queue_peak, s.queue_capacity),
        opt_ms(s.latency_percentile(0.50)),
        opt_ms(s.latency_percentile(0.95)),
        opt_ms(s.latency_percentile(0.99)),
    ]);
    print!("{}", t.render());

    let mut t = Table::new(&["Rung occupancy", "Frames"]);
    for (label, count) in s.rung_labels.iter().zip(&s.rung_counts) {
        t.row(vec![label.clone(), count.to_string()]);
    }
    print!("{}", t.render());

    println!(
        "\npartition: {} frames arrived with a link down, {} of them degraded to a surviving-subset rung",
        r.frames_during_partition, r.partition_degraded
    );
    let ps = &rep.planner;
    println!(
        "planner: {} probes, {} hit / {} miss (hit rate {:.1}%), {:.3} ms wall",
        ps.frames,
        ps.cache_hits,
        ps.cache_misses,
        ps.hit_rate() * 100.0,
        ps.wall_ns as f64 / 1e6
    );

    let mut violations = Vec::new();
    if let Err(e) = r.check_invariants() {
        violations.push(format!("mesh invariant: {e}"));
    }
    if rep.bit_identical {
        println!("numerics gate: every rung bit-identical to the single-device QUInt8 reference");
    } else {
        violations.push("numerics gate: a rung diverged from the QUInt8 reference".to_string());
    }

    let json = mesh_json(&rep, &fault_name);
    if let Err(e) = std::fs::write(&out_path, json.render()) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    if let Some(path) = baseline {
        match std::fs::read_to_string(&path) {
            Ok(doc) => {
                if let Err(missing) = check_mesh_schema(&doc) {
                    eprintln!("baseline {path} fails the schema check: missing {missing}");
                    std::process::exit(1);
                }
                println!("baseline {path}: schema ok");
            }
            Err(e) => {
                eprintln!("failed to read baseline {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    println!("\n(each rung covers one surviving connected device subset; a partitioned mesh");
    println!(" degrades to its surviving component's rung instead of shedding the frame)");
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("MESH VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}

/// Schema tag of the mesh document (`BENCH_mesh.json`).
const MESH_SCHEMA: &str = "ulayer-mesh/v1";

/// The machine-readable mesh document.
fn mesh_json(rep: &figures::MeshScenarioReport, fault: &str) -> ubench::Json {
    use ubench::Json;
    let s = &rep.report.serve;
    let opt_ms_json = |q: f64| match s.latency_percentile(q) {
        Some(span) => Json::n(span.as_millis_f64()),
        None => Json::Null,
    };
    Json::obj(vec![
        ("schema", Json::s(MESH_SCHEMA)),
        ("net", Json::s("mesh-cnn")),
        ("scenario", Json::s(fault)),
        (
            "mesh",
            Json::obj(vec![
                ("nodes", Json::n(rep.nodes as f64)),
                ("links", Json::n(rep.report.links as f64)),
                ("seed", Json::n(rep.seed as f64)),
                ("queue_capacity", Json::n(s.queue_capacity as f64)),
                ("mean_interval_ms", Json::n(rep.mean_interval_ms)),
                ("deadline_ms", Json::n(rep.deadline_ms)),
            ]),
        ),
        (
            "totals",
            Json::obj(vec![
                ("offered", Json::n(s.offered as f64)),
                ("completed", Json::n(s.completed as f64)),
                ("degraded", Json::n(s.degraded as f64)),
                ("shed", Json::n(s.shed as f64)),
                ("rejected", Json::n(s.rejected as f64)),
                ("queue_peak", Json::n(s.queue_peak as f64)),
                (
                    "frames_during_partition",
                    Json::n(rep.report.frames_during_partition as f64),
                ),
                (
                    "partition_degraded",
                    Json::n(rep.report.partition_degraded as f64),
                ),
            ]),
        ),
        (
            "rung_occupancy",
            Json::Obj(
                s.rung_labels
                    .iter()
                    .zip(&s.rung_counts)
                    .map(|(k, v)| (k.clone(), Json::n(*v as f64)))
                    .collect(),
            ),
        ),
        (
            "latency",
            Json::obj(vec![
                ("p50_ms", opt_ms_json(0.50)),
                ("p95_ms", opt_ms_json(0.95)),
                ("p99_ms", opt_ms_json(0.99)),
                ("samples", Json::n(s.latencies.len() as f64)),
            ]),
        ),
        ("bit_identical", Json::Bool(rep.bit_identical)),
        (
            "planner",
            Json::obj(vec![
                ("probes", Json::n(rep.planner.frames as f64)),
                ("hits", Json::n(rep.planner.cache_hits as f64)),
                ("misses", Json::n(rep.planner.cache_misses as f64)),
                ("hit_rate", Json::n(rep.planner.hit_rate())),
                ("wall_ms", Json::n(rep.planner.wall_ns as f64 / 1e6)),
            ]),
        ),
        (
            "invariants",
            Json::s(match rep.report.check_invariants() {
                Ok(()) => "ok".to_string(),
                Err(e) => e,
            }),
        ),
    ])
}

/// Checks that `doc` carries the mesh schema tag and every required
/// key. Returns the first missing marker.
fn check_mesh_schema(doc: &str) -> Result<(), &'static str> {
    if !doc.contains("\"schema\":\"ulayer-mesh/v1\"") {
        return Err("\"schema\":\"ulayer-mesh/v1\"");
    }
    for marker in [
        "\"net\"",
        "\"scenario\"",
        "\"mesh\"",
        "\"nodes\"",
        "\"links\"",
        "\"totals\"",
        "\"offered\"",
        "\"completed\"",
        "\"degraded\"",
        "\"shed\"",
        "\"frames_during_partition\"",
        "\"partition_degraded\"",
        "\"rung_occupancy\"",
        "\"latency\"",
        "\"bit_identical\"",
        "\"planner\"",
        "\"hit_rate\"",
        "\"invariants\"",
    ] {
        if !doc.contains(marker) {
            return Err(marker);
        }
    }
    Ok(())
}

/// Schema tag of the fleet document (`BENCH_fleet.json`).
const FLEET_SCHEMA: &str = "ulayer-fleet/v1";

/// The machine-readable fleet document.
fn fleet_json(rep: &figures::FleetStormReport, storm: &str) -> ubench::Json {
    use ubench::Json;
    let r = &rep.report;
    let opt_ms_json = |q: f64| match r.latency_percentile(q) {
        Some(s) => Json::n(s.as_millis_f64()),
        None => Json::Null,
    };
    Json::obj(vec![
        ("schema", Json::s(FLEET_SCHEMA)),
        ("net", Json::s(r.net.clone())),
        ("scenario", Json::s(storm)),
        (
            "fleet",
            Json::obj(vec![
                ("devices", Json::n(r.fleet_size as f64)),
                ("frames_per_device", Json::n(r.frames_per_device as f64)),
                ("seed", Json::n(r.seed as f64)),
                ("queue_capacity", Json::n(r.queue_capacity as f64)),
                ("mean_interval_ms", Json::n(rep.mean_interval_ms)),
                ("deadline_ms", Json::n(rep.deadline_ms)),
                (
                    "cohorts",
                    Json::Arr(
                        r.cohort_socs
                            .iter()
                            .zip(&r.cohort_instances)
                            .map(|(soc, n)| {
                                Json::obj(vec![
                                    ("soc", Json::s(soc.clone())),
                                    ("instances", Json::n(*n as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "totals",
            Json::obj(vec![
                ("offered", Json::n(r.offered as f64)),
                ("completed", Json::n(r.completed as f64)),
                ("degraded", Json::n(r.degraded as f64)),
                ("shed", Json::n(r.shed as f64)),
                ("rejected", Json::n(r.rejected as f64)),
                ("retries", Json::n(r.retries as f64)),
                ("fallbacks", Json::n(r.fallbacks as f64)),
                ("throttled", Json::n(r.throttled as f64)),
                ("missed", Json::n(r.missed as f64)),
                ("gpu_lost_devices", Json::n(r.gpu_lost_devices as f64)),
                ("queue_peak", Json::n(r.queue_peak as f64)),
            ]),
        ),
        (
            "rung_occupancy",
            Json::Obj(
                r.rung_occupancy
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::n(*v as f64)))
                    .collect(),
            ),
        ),
        (
            "latency",
            Json::obj(vec![
                ("p50_ms", opt_ms_json(0.50)),
                ("p95_ms", opt_ms_json(0.95)),
                ("p99_ms", opt_ms_json(0.99)),
                ("p999_ms", opt_ms_json(0.999)),
                ("samples", Json::n(r.latencies.len() as f64)),
            ]),
        ),
        ("energy_j", Json::n(r.energy_j)),
        (
            "planner",
            Json::obj(vec![
                (
                    "cache",
                    Json::s(if r.plan_cache_enabled { "on" } else { "off" }),
                ),
                ("hits", Json::n(r.plan_hits as f64)),
                ("misses", Json::n(r.plan_misses as f64)),
                ("hit_rate", Json::n(r.plan_hit_rate())),
                ("planning_ms", Json::n(r.planning.as_millis_f64())),
            ]),
        ),
        (
            "weights",
            Json::obj(vec![
                ("bytes", Json::n(r.weight_bytes as f64)),
                ("copies", Json::n(r.weight_copies as f64)),
                ("naive_bytes", Json::n(r.naive_weight_bytes as f64)),
            ]),
        ),
        (
            "fuzz",
            Json::obj(vec![
                ("orders", Json::n(rep.fuzz_orders as f64)),
                (
                    "mismatched_seeds",
                    Json::Arr(
                        rep.fuzz_mismatches
                            .iter()
                            .map(|s| Json::n(*s as f64))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "invariants",
            Json::s(match r.check_invariants() {
                Ok(()) => "ok".to_string(),
                Err(e) => e,
            }),
        ),
    ])
}

/// Checks that `doc` carries the fleet schema tag and every required
/// key. Returns the first missing marker.
fn check_fleet_schema(doc: &str) -> Result<(), &'static str> {
    if !doc.contains("\"schema\":\"ulayer-fleet/v1\"") {
        return Err("\"schema\":\"ulayer-fleet/v1\"");
    }
    for marker in [
        "\"net\"",
        "\"scenario\"",
        "\"fleet\"",
        "\"cohorts\"",
        "\"totals\"",
        "\"offered\"",
        "\"completed\"",
        "\"degraded\"",
        "\"shed\"",
        "\"rung_occupancy\"",
        "\"latency\"",
        "\"energy_j\"",
        "\"planner\"",
        "\"hit_rate\"",
        "\"planning_ms\"",
        "\"weights\"",
        "\"copies\"",
        "\"fuzz\"",
        "\"invariants\"",
    ] {
        if !doc.contains(marker) {
            return Err(marker);
        }
    }
    Ok(())
}

/// `repro plan [net] [--frames=N] [--drift=calm|throttle|loss|oscillate]
/// [--seed=N] [--min-hit-rate=X] [--miniature] [--out=FILE]
/// [--baseline=FILE]`: drives a drift-keyed planner session over a
/// frame stream on both SoCs, cross-checks every incremental replan
/// against a from-scratch plan (byte-identical or exit non-zero), and
/// reports cache hit rates and planner time vs. the always-scratch
/// ablation. Writes `BENCH_plan.json`.
fn plan_cmd(args: &[String]) {
    let p = parse_or_exit("plan", args);
    let model = model_arg("plan", &p, unn::ModelId::SqueezeNet);
    let miniature = p.switch("--miniature");
    let frames = p.usize_of("--frames").unwrap_or(64);
    let seed = p.u64_of("--seed").unwrap_or(42);
    let drift = p.str_of("--drift").unwrap_or("calm").to_string();
    let min_hit_rate = p.f64_of("--min-hit-rate");
    let out_path = p.str_of("--out").unwrap_or("BENCH_plan.json").to_string();
    let baseline: Option<String> = p.str_of("--baseline").map(str::to_string);

    heading(&format!(
        "Planner cache: uLayer {} over {frames} frames of `{drift}` drift (seed {seed})",
        model.name(),
    ));
    let reports = figures::plan_experiment(model, &drift, miniature, frames, seed);
    let mut violations = Vec::new();
    let mut t = Table::new(&[
        "SoC",
        "Frames",
        "Hit/Miss",
        "Hit rate",
        "Incr/Scratch",
        "Re-enum/Copied",
        "Planner (ms)",
        "Scratch arm (ms)",
    ]);
    for rep in &reports {
        let s = &rep.stats;
        t.row(vec![
            rep.soc.clone(),
            s.frames.to_string(),
            format!("{}/{}", s.cache_hits, s.cache_misses),
            format!("{:.1}%", s.hit_rate() * 100.0),
            format!("{}/{}", s.incremental_replans, s.scratch_plans),
            format!("{}/{}", s.layers_reenumerated, s.layers_copied),
            format!("{:.3}", s.wall_ns as f64 / 1e6),
            format!("{:.3}", rep.scratch_wall_ms),
        ]);
        if !rep.equivalence_failures.is_empty() {
            violations.push(format!(
                "{}: incremental plans diverged from scratch at frames {:?}",
                rep.soc, rep.equivalence_failures
            ));
        }
        if let Some(min) = min_hit_rate {
            if s.hit_rate() < min {
                violations.push(format!(
                    "{}: hit rate {:.3} below the --min-hit-rate gate {min}",
                    rep.soc,
                    s.hit_rate()
                ));
            }
        }
    }
    print!("{}", t.render());
    println!("\nequivalence: every exact-policy frame cross-checked against a from-scratch plan");

    let json = plan_json(&reports, &drift, seed);
    if let Err(e) = std::fs::write(&out_path, json.render()) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    if let Some(path) = baseline {
        match std::fs::read_to_string(&path) {
            Ok(doc) => {
                if let Err(missing) = check_plan_schema(&doc) {
                    eprintln!("baseline {path} fails the schema check: missing {missing}");
                    std::process::exit(1);
                }
                println!("baseline {path}: schema ok");
            }
            Err(e) => {
                eprintln!("failed to read baseline {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    println!("\n(a cache hit skips partitioning entirely; a drift-key miss replans only the");
    println!(" layers whose cost margin the drift change could have flipped)");
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("PLAN VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}

/// Schema tag of the planner document (`BENCH_plan.json`).
const PLAN_SCHEMA: &str = "ulayer-plan/v1";

/// The machine-readable planner document.
fn plan_json(reports: &[figures::PlanExperimentReport], drift: &str, seed: u64) -> ubench::Json {
    use ubench::Json;
    Json::obj(vec![
        ("schema", Json::s(PLAN_SCHEMA)),
        (
            "net",
            Json::s(
                reports
                    .first()
                    .map(|r| r.network.clone())
                    .unwrap_or_default(),
            ),
        ),
        ("drift", Json::s(drift)),
        ("seed", Json::n(seed as f64)),
        (
            "socs",
            Json::Arr(
                reports
                    .iter()
                    .map(|rep| {
                        let s = &rep.stats;
                        Json::obj(vec![
                            ("soc", Json::s(rep.soc.clone())),
                            ("frames", Json::n(s.frames as f64)),
                            ("hits", Json::n(s.cache_hits as f64)),
                            ("misses", Json::n(s.cache_misses as f64)),
                            ("hit_rate", Json::n(s.hit_rate())),
                            ("incremental", Json::n(s.incremental_replans as f64)),
                            ("scratch", Json::n(s.scratch_plans as f64)),
                            ("layers_reenumerated", Json::n(s.layers_reenumerated as f64)),
                            ("layers_copied", Json::n(s.layers_copied as f64)),
                            ("evictions", Json::n(s.evictions as f64)),
                            ("planner_wall_ms", Json::n(s.wall_ns as f64 / 1e6)),
                            ("planning_modeled_ms", Json::n(rep.planning_modeled_ms)),
                            ("scratch_wall_ms", Json::n(rep.scratch_wall_ms)),
                            (
                                "equivalent",
                                Json::Bool(rep.equivalence_failures.is_empty()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Checks that `doc` carries the planner schema tag and every required
/// key. Returns the first missing marker.
fn check_plan_schema(doc: &str) -> Result<(), &'static str> {
    if !doc.contains("\"schema\":\"ulayer-plan/v1\"") {
        return Err("\"schema\":\"ulayer-plan/v1\"");
    }
    for marker in [
        "\"net\"",
        "\"drift\"",
        "\"seed\"",
        "\"socs\"",
        "\"frames\"",
        "\"hits\"",
        "\"misses\"",
        "\"hit_rate\"",
        "\"incremental\"",
        "\"scratch\"",
        "\"layers_reenumerated\"",
        "\"layers_copied\"",
        "\"planner_wall_ms\"",
        "\"planning_modeled_ms\"",
        "\"scratch_wall_ms\"",
        "\"equivalent\"",
    ] {
        if !doc.contains(marker) {
            return Err(marker);
        }
    }
    Ok(())
}

fn heading(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn table1() {
    heading("Table 1: Evaluated NNs and the mechanisms' applicability");
    let mut t = Table::new(&[
        "Network",
        "Ch. Dist. (3.2)",
        "Proc. Quant. (4.2)",
        "Br. Dist. (5)",
    ]);
    let tick = |b: bool| if b { "yes" } else { "-" }.to_string();
    for (net, app) in figures::table1() {
        t.row(vec![
            net,
            tick(app.channel_distribution),
            tick(app.processor_quantization),
            tick(app.branch_distribution),
        ]);
    }
    print!("{}", t.render());
}

fn fig5() {
    heading("Figure 5: Per-layer VGG-16 latency, CPU vs GPU (F32)");
    for soc in figures::fig5() {
        println!("\n--- {} ---", soc.soc);
        let mut t = Table::new(&["Layer", "CPU (ms)", "GPU (ms)", "GPU speedup"]);
        for (name, cpu, gpu) in soc
            .layers
            .iter()
            .filter(|(n, _, _)| n.starts_with("conv") || n.starts_with("fc"))
        {
            t.row(vec![name.clone(), ms(*cpu), ms(*gpu), ratio(cpu / gpu)]);
        }
        print!("{}", t.render());
        println!(
            "mean GPU speedup over CPU: {:.2}x (paper: 1.40x high-end; CPU 26.1% faster mid-range)",
            soc.mean_gpu_speedup
        );
    }
}

fn fig6() {
    heading("Figure 6: NN execution latency, CPU vs GPU (F32)");
    for soc in figures::fig6() {
        println!("\n--- {} ---", soc.soc);
        let mut t = Table::new(&["Network", "CPU (ms)", "GPU (ms)"]);
        for (net, cpu, gpu) in &soc.rows {
            t.row(vec![net.clone(), ms(*cpu), ms(*gpu)]);
        }
        print!("{}", t.render());
    }
}

fn fig8() {
    heading("Figure 8: Quantization impact on latency (normalized to CPU F32)");
    for soc in figures::fig8() {
        println!("\n--- {} ---", soc.soc);
        let keys: Vec<String> = soc.rows[0].1.keys().cloned().collect();
        let mut header: Vec<&str> = vec!["Network"];
        header.extend(keys.iter().map(String::as_str));
        let mut t = Table::new(&header);
        for (net, m) in &soc.rows {
            let mut row = vec![net.clone()];
            row.extend(keys.iter().map(|k| ratio(m[k])));
            t.row(row);
        }
        print!("{}", t.render());
    }
    println!("(expect: CPU QUInt8 fastest on CPU; GPU F16 fastest on GPU; CPU F16 no gain)");
}

fn fig10() {
    heading("Figure 10: Top-1 accuracy under quantization (substituted workload)");
    println!("(training two classifiers from scratch; takes a few minutes)");
    for (net, rows) in quantlab::run_figure10() {
        println!("\n--- {net} ---");
        let mut t = Table::new(&["Variant", "Top-1 accuracy", "Drop vs F32 (pp)"]);
        for r in rows {
            t.row(vec![
                r.variant.to_string(),
                pct(r.accuracy),
                format!("{:.1}", r.drop_pp),
            ]);
        }
        print!("{}", t.render());
    }
    println!("(expect: F16 lossless; naive QUInt8 degrades, more for the deeper net;");
    println!(" range-calibrated QUInt8 recovers to within a few points — paper max 2.7pp)");
}

fn fig12() {
    heading("Figure 12: Branch distribution case study (Inception 3a, high-end SoC)");
    let d = figures::fig12();
    let mut t = Table::new(&["Mechanism", "Latency (ms)", "Improvement vs CPU-only"]);
    t.row(vec![
        "CPU-Only (QUInt8)".into(),
        ms(d.cpu_only_ms),
        "-".into(),
    ]);
    t.row(vec![
        "Cooperative".into(),
        ms(d.cooperative_ms),
        pct(1.0 - d.cooperative_ms / d.cpu_only_ms),
    ]);
    t.row(vec![
        "Cooperative (Optimal)".into(),
        ms(d.optimal_ms),
        pct(1.0 - d.optimal_ms / d.cpu_only_ms),
    ]);
    print!("{}", t.render());
    println!("(paper: 52.1% and 63.4% over CPU-only)");
}

fn print_evaluation(metric: &str, get: impl Fn(&figures::MechanismResult) -> f64) {
    for eval in figures::evaluation() {
        println!("\n--- {} ---", eval.soc);
        let labels: Vec<String> = eval.rows[0].1.iter().map(|m| m.label.clone()).collect();
        let mut header: Vec<&str> = vec!["Network"];
        header.extend(labels.iter().map(String::as_str));
        let mut t = Table::new(&header);
        for (net, mechs) in &eval.rows {
            let l2p = mechs
                .iter()
                .find(|m| m.label == "layer-to-proc QUInt8")
                .expect("l2p present");
            let mut row = vec![net.clone()];
            row.extend(mechs.iter().map(|m| ratio(get(m) / get(l2p))));
            t.row(row);
        }
        print!("{}", t.render());
        println!("(normalized to layer-to-proc QUInt8; lower is better)");
        if metric == "latency" {
            let imps = eval.latency_improvements();
            let max =
                imps.iter()
                    .cloned()
                    .fold(("".to_string(), 0.0), |a, b| if b.1 > a.1 { b } else { a });
            let geo = 1.0 - geomean(&imps.iter().map(|(_, v)| 1.0 - v).collect::<Vec<_>>());
            println!(
                "uLayer speed improvement: max {} on {}, geomean {}",
                pct(max.1),
                max.0,
                pct(geo)
            );
        } else {
            let factors = eval.energy_factors();
            let geo = geomean(&factors.iter().map(|(_, v)| *v).collect::<Vec<_>>());
            let max =
                factors
                    .iter()
                    .cloned()
                    .fold(("".to_string(), 0.0), |a, b| if b.1 > a.1 { b } else { a });
            println!(
                "uLayer energy-efficiency factor: max {:.2}x on {}, geomean {:.2}x",
                max.1, max.0, geo
            );
        }
    }
}

fn fig16() {
    heading("Figure 16: End-to-end latency of all mechanisms");
    print_evaluation("latency", |m| m.latency_ms);
    println!("\n(paper: up to 59.9%/69.6% and geomean 30.5%/35.3% over layer-to-proc)");
}

fn fig17() {
    heading("Figure 17: Contribution of the three optimizations (ablation)");
    for soc in figures::fig17() {
        println!("\n--- {} ---", soc.soc);
        let mut t = Table::new(&[
            "Network",
            "layer-to-proc",
            "+Ch.Dist",
            "+Proc.Quant",
            "+Br.Dist (= uLayer)",
        ]);
        for (net, steps) in &soc.rows {
            let full = steps[3];
            t.row(vec![
                net.clone(),
                ratio(steps[0] / full),
                ratio(steps[1] / full),
                ratio(steps[2] / full),
                ratio(1.0),
            ]);
        }
        print!("{}", t.render());
        println!("(normalized to the complete uLayer, as in the paper)");
    }
}

fn fig18() {
    heading("Figure 18: Energy consumption of all mechanisms");
    print_evaluation("energy", |m| m.energy_mj);
    println!("\n(paper: geomean 1.26x/1.34x energy-efficiency over layer-to-proc)");
}

fn predictor() {
    heading("Latency predictor validation (held-out zoo layers)");
    for spec in usoc::SocSpec::evaluated() {
        let pred = ulayer::LatencyPredictor::train(&spec).expect("train");
        let graphs: Vec<unn::Graph> = unn::ModelId::EVALUATED
            .iter()
            .map(|id| id.build())
            .collect();
        let report = ulayer::evaluate_predictor(&spec, &pred, &graphs).expect("evaluate");
        println!("\n--- {} ---", spec.name);
        let mut t = Table::new(&["Device", "Samples", "Mean rel. err", "Max rel. err"]);
        for d in &report.devices {
            t.row(vec![
                d.name.clone(),
                d.samples.to_string(),
                pct(d.mean_rel_err),
                pct(d.max_rel_err),
            ]);
        }
        print!("{}", t.render());
    }
    println!("(fitted regression, not an oracle: nonzero error propagates into planning)");
}

fn sweeps() {
    heading("Design-choice ablations (beyond the paper)");
    println!("\nsplit-ratio granularity (geomean improvement vs layer-to-proc, high-end):");
    let mut t = Table::new(&["Candidate set", "# candidates", "Geomean improvement"]);
    for r in ubench::p_granularity() {
        t.row(vec![
            r.label.clone(),
            r.candidates.len().to_string(),
            pct(r.geomean_improvement),
        ]);
    }
    print!("{}", t.render());

    println!("\nmanagement-overhead sensitivity (issue/wait/map/dispatch scaled):");
    let mut t = Table::new(&["Overhead scale", "Geomean improvement"]);
    for r in ubench::overhead_sensitivity() {
        t.row(vec![format!("{:.2}x", r.scale), pct(r.geomean_improvement)]);
    }
    print!("{}", t.render());
    println!("(the section-3.1 argument: sync overheads erode cooperative gains)");
}

fn npu() {
    heading("Section 8.3 extension: channel-wise distribution across CPU+GPU+NPU");
    let mut t = Table::new(&["Network", "uLayer (ms)", "uLayer+NPU (ms)", "Speedup"]);
    for r in figures::npu_extension() {
        t.row(vec![
            r.network.clone(),
            ms(r.base_ms),
            ms(r.npu_ms),
            ratio(r.base_ms / r.npu_ms),
        ]);
    }
    print!("{}", t.render());
}
