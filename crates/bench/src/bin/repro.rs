//! Regenerates every table and figure of the μLayer paper.
//!
//! ```text
//! repro [fig5|fig6|fig8|fig10|fig12|fig16|fig17|fig18|table1|npu|all]
//! repro trace [net] [--miniature] [--no-passes] [--check-merge] [--trace-out=FILE]
//! repro passes [net] [--miniature]
//! repro faults [net] [--scenario=throttle|flaky-gpu|gpu-loss] [--seed=N] [--miniature]
//! repro serve [net] [--arrivals=fixed|bursty|poisson] [--rate=FPS] [--deadline=MS]
//!             [--queue=N] [--frames=N] [--seed=N] [--miniature] [--trace-out=FILE]
//! repro measure [net] [--miniature] [--threads=N] [--repeat=N]
//!               [--kernel-path=auto|scalar|simd] [--out=FILE] [--baseline=FILE]
//! ```
//!
//! Each subcommand prints paper-style rows; `all` runs everything.
//! Latency/energy figures run on the simulated Exynos 7420/7880 SoCs and
//! complete in seconds; `fig10` trains two classifiers from scratch and
//! takes a few minutes.
//!
//! `trace` runs the μLayer schedule for one network, prints its overhead
//! attribution on both SoCs, and writes the high-end SoC's schedule as a
//! Chrome trace-event JSON file (loadable in `chrome://tracing` or
//! Perfetto).

use ubench::figures;
use ubench::report::{geomean, ms, pct, ratio, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `repro --json <dir> [--with-fig10]` exports machine-readable data.
    if args.first().map(String::as_str) == Some("--json") {
        let dir = args.get(1).map(String::as_str).unwrap_or("repro-json");
        let with_fig10 = args.iter().any(|a| a == "--with-fig10");
        match ubench::export_all(std::path::Path::new(dir), with_fig10) {
            Ok(files) => {
                println!(
                    "wrote {} documents to {dir}/: {}",
                    files.len(),
                    files.join(", ")
                );
                return;
            }
            Err(e) => {
                eprintln!("export failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if args.first().map(String::as_str) == Some("trace") {
        trace(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("passes") {
        passes_cmd(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("faults") {
        faults(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("serve") {
        serve(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("measure") {
        measure_cmd(&args[1..]);
        return;
    }
    let what = args.first().map(String::as_str).unwrap_or("all");
    let known = [
        "fig5",
        "fig6",
        "fig8",
        "fig10",
        "fig12",
        "fig16",
        "fig17",
        "fig18",
        "table1",
        "npu",
        "predictor",
        "sweeps",
        "all",
    ];
    if !known.contains(&what) {
        eprintln!(
            "usage: repro [{}] | repro --json <dir> [--with-fig10]",
            known.join("|")
        );
        std::process::exit(2);
    }
    let run = |name: &str| what == name || what == "all";

    if run("table1") {
        table1();
    }
    if run("fig5") {
        fig5();
    }
    if run("fig6") {
        fig6();
    }
    if run("fig8") {
        fig8();
    }
    if run("fig10") {
        fig10();
    }
    if run("fig12") {
        fig12();
    }
    if run("fig16") {
        fig16();
    }
    if run("fig17") {
        fig17();
    }
    if run("fig18") {
        fig18();
    }
    if run("npu") {
        npu();
    }
    if run("predictor") {
        predictor();
    }
    if run("sweeps") {
        sweeps();
    }
}

fn parse_model(name: &str) -> Option<unn::ModelId> {
    match name.to_ascii_lowercase().as_str() {
        "vgg16" | "vgg" => Some(unn::ModelId::Vgg16),
        "alexnet" => Some(unn::ModelId::AlexNet),
        "squeezenet" => Some(unn::ModelId::SqueezeNet),
        "googlenet" => Some(unn::ModelId::GoogLeNet),
        "mobilenet" => Some(unn::ModelId::MobileNet),
        _ => None,
    }
}

/// `repro trace [net] [--miniature] [--no-passes] [--check-merge]
/// [--trace-out=FILE]`: overhead attribution on both SoCs plus a Chrome
/// trace-event JSON export of the high-end SoC's schedule. The schedule
/// runs over the pass-optimized graph unless `--no-passes` is given;
/// `--check-merge` additionally runs the unoptimized baseline and exits
/// non-zero unless the merge overhead class shrank (or is zero).
fn trace(args: &[String]) {
    let mut model = unn::ModelId::Vgg16;
    let mut miniature = false;
    let mut passes = true;
    let mut check_merge = false;
    let mut out_path: Option<String> = None;
    for a in args {
        if a == "--miniature" {
            miniature = true;
        } else if a == "--no-passes" {
            passes = false;
        } else if a == "--check-merge" {
            check_merge = true;
        } else if let Some(p) = a.strip_prefix("--trace-out=") {
            out_path = Some(p.to_string());
        } else if let Some(m) = parse_model(a) {
            model = m;
        } else {
            eprintln!("usage: repro trace [vgg16|alexnet|squeezenet|googlenet|mobilenet] [--miniature] [--no-passes] [--check-merge] [--trace-out=FILE]");
            std::process::exit(2);
        }
    }

    heading(&format!(
        "Schedule observability: uLayer {} (overhead attribution + trace export{})",
        model.name(),
        if passes { "" } else { ", passes off" }
    ));
    let reports = figures::overhead_attribution_with_passes(model, miniature, passes);
    for rep in &reports {
        println!("\n--- {} ---", rep.soc);
        if !rep.graph_passes.is_empty() {
            for p in &rep.graph_passes {
                println!(
                    "pass {:<18} {:>3} rewrites  {}",
                    p.pass, p.rewrites, p.detail
                );
            }
            println!("elided concats: {}", rep.elided_concats);
        }
        print!("{}", rep.result.attribution.render_text());
        println!("\ncounters:");
        print!("{}", rep.result.metrics.render());
    }

    if check_merge {
        let baseline = figures::overhead_attribution_with_passes(model, miniature, false);
        let optimized = if passes {
            reports.clone()
        } else {
            figures::overhead_attribution_with_passes(model, miniature, true)
        };
        let mut ok = true;
        println!();
        for (b, o) in baseline.iter().zip(&optimized) {
            let before = b
                .result
                .attribution
                .class_span(uruntime::OverheadClass::Merge);
            let after = o
                .result
                .attribution
                .class_span(uruntime::OverheadClass::Merge);
            let shrank = after < before || after == simcore::SimSpan::ZERO;
            println!(
                "merge check {}: {} -> {} ({} concats elided) {}",
                b.soc,
                ms(before.as_millis_f64()),
                ms(after.as_millis_f64()),
                o.elided_concats,
                if shrank { "OK" } else { "FAIL" }
            );
            ok &= shrank;
        }
        if !ok {
            eprintln!("merge overhead did not shrink with the pass pipeline");
            std::process::exit(1);
        }
    }

    // Export the high-end SoC's schedule and prove it round-trips.
    let rep = &reports[0];
    let json = uruntime::chrome_trace_json(&rep.result.trace, &rep.result.resource_names);
    let path = out_path.unwrap_or_else(|| {
        format!(
            "trace-{}.json",
            model.name().to_ascii_lowercase().replace([' ', '.'], "-")
        )
    });
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(1);
    }
    let reread = std::fs::read_to_string(&path).expect("reread trace file");
    match simcore::validate_chrome_trace(&reread) {
        Ok(summary) => println!(
            "\nwrote {path}: {} events on {} tracks (validated; load in chrome://tracing or Perfetto)",
            summary.complete_events, summary.tracks
        ),
        Err(e) => {
            eprintln!("exported trace failed validation: {e}");
            std::process::exit(1);
        }
    }
}

/// `repro passes [net] [--miniature]`: the graph-pass pipeline report —
/// per-pass rewrite counts, node counts before/after, elided concats,
/// and the before/after merge/map overhead attribution on both SoCs.
fn passes_cmd(args: &[String]) {
    let mut model = unn::ModelId::GoogLeNet;
    let mut miniature = false;
    for a in args {
        if a == "--miniature" {
            miniature = true;
        } else if let Some(m) = parse_model(a) {
            model = m;
        } else {
            eprintln!(
                "usage: repro passes [vgg16|alexnet|squeezenet|googlenet|mobilenet] [--miniature]"
            );
            std::process::exit(2);
        }
    }

    heading(&format!(
        "Graph pass pipeline: {} (fusion, quant-pair elision, concat elision, DCE)",
        model.name()
    ));
    for rep in figures::pass_pipeline(model, miniature) {
        println!("\n--- {} ---", rep.soc);
        println!(
            "nodes: {} -> {} ({} concats elided)",
            rep.nodes_before, rep.nodes_after, rep.elided_concats
        );
        for p in &rep.graph_passes {
            println!(
                "graph pass {:<18} {:>3} rewrites  {}",
                p.pass, p.rewrites, p.detail
            );
        }
        for p in &rep.plan_passes {
            println!(
                "plan pass  {:<18} {:>3} rewrites  {}",
                p.pass, p.rewrites, p.detail
            );
        }
        let mut t = Table::new(&["overhead", "before", "after"]);
        t.row(vec![
            "merge".into(),
            ms(rep.before.0.as_millis_f64()),
            ms(rep.after.0.as_millis_f64()),
        ]);
        t.row(vec![
            "map".into(),
            ms(rep.before.1.as_millis_f64()),
            ms(rep.after.1.as_millis_f64()),
        ]);
        t.row(vec![
            "total latency".into(),
            ms(rep.latency_before.as_millis_f64()),
            ms(rep.latency_after.as_millis_f64()),
        ]);
        print!("{}", t.render());
    }
}

/// `repro faults [net] [--scenario=NAME] [--seed=N] [--miniature]`:
/// resilient execution under injected faults, against the fault-free
/// baseline. Exits non-zero if recovery is not bit-identical, or if the
/// flaky-gpu scenario fails to exercise both the retry and the fallback
/// path.
fn faults(args: &[String]) {
    let mut model = unn::ModelId::SqueezeNet;
    let mut miniature = false;
    let mut seed = 42u64;
    let mut scenarios: Vec<simcore::Scenario> = simcore::Scenario::ALL.to_vec();
    let usage = || -> ! {
        eprintln!(
            "usage: repro faults [vgg16|alexnet|squeezenet|googlenet|mobilenet] \
             [--scenario=throttle|flaky-gpu|gpu-loss] [--seed=N] [--miniature]"
        );
        std::process::exit(2);
    };
    for a in args {
        if a == "--miniature" {
            miniature = true;
        } else if let Some(s) = a.strip_prefix("--scenario=") {
            match simcore::Scenario::from_name(s) {
                Some(sc) => scenarios = vec![sc],
                None => usage(),
            }
        } else if let Some(s) = a.strip_prefix("--seed=") {
            match s.parse() {
                Ok(n) => seed = n,
                Err(_) => usage(),
            }
        } else if let Some(m) = parse_model(a) {
            model = m;
        } else {
            usage();
        }
    }

    heading(&format!(
        "Fault injection: uLayer {} under {} (seed {seed})",
        model.name(),
        scenarios
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(", "),
    ));
    let mut violations = Vec::new();
    for &scenario in &scenarios {
        let reports = figures::fault_scenarios(model, scenario, miniature, seed);
        println!("\n--- scenario: {} ---", scenario.name());
        let mut t = Table::new(&[
            "SoC",
            "Baseline (ms)",
            "Faulted (ms)",
            "Slowdown",
            "Injected",
            "Retries",
            "Fallbacks",
            "Wasted (ms)",
            "Bit-identical",
        ]);
        for r in &reports {
            t.row(vec![
                r.soc.clone(),
                ms(r.baseline_ms),
                ms(r.faulted_ms),
                ratio(r.faulted_ms / r.baseline_ms),
                r.injected.to_string(),
                r.retries.to_string(),
                r.fallback_parts.to_string(),
                ms(r.wasted_ms),
                if r.bit_identical { "yes" } else { "NO" }.to_string(),
            ]);
            if !r.bit_identical {
                violations.push(format!(
                    "{} / {}: recovered outputs diverge from the fault-free run",
                    r.soc,
                    scenario.name()
                ));
            }
            if scenario == simcore::Scenario::FlakyGpu && (r.retries < 1 || r.fallback_parts < 1) {
                violations.push(format!(
                    "{} / flaky-gpu: expected >=1 retry and >=1 fallback, got {} and {}",
                    r.soc, r.retries, r.fallback_parts
                ));
            }
        }
        print!("{}", t.render());
    }
    println!("\n(recovery re-executes only the failed parts' output channels on the");
    println!(" surviving processor; outputs stay bit-identical to the fault-free run)");
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("FAULT-RUN VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}

/// `repro serve [net] [--arrivals=NAME] [--rate=FPS] [--deadline=MS]
/// [--queue=N] [--frames=N] [--seed=N] [--miniature] [--trace-out=FILE]`:
/// overload-robust serving of a seeded arrival stream through the
/// μLayer degradation ladder. Prints the SLO table (per-rung counts,
/// shed/rejected, latency percentiles) and exits non-zero if a serving
/// invariant breaks — the queue exceeding its bound, or offered frames
/// not partitioning exactly into completed/degraded/shed.
fn serve(args: &[String]) {
    let mut model = unn::ModelId::SqueezeNet;
    let mut arrivals = simcore::ArrivalKind::Bursty;
    let mut miniature = false;
    let mut rate_fps = 0.0f64;
    let mut deadline_ms = 0.0f64;
    let mut queue = 8usize;
    let mut frames = 96usize;
    let mut seed = 42u64;
    let mut out_path: Option<String> = None;
    let usage = || -> ! {
        eprintln!(
            "usage: repro serve [vgg16|alexnet|squeezenet|googlenet|mobilenet] \
             [--arrivals=fixed|bursty|poisson] [--rate=FPS] [--deadline=MS] \
             [--queue=N] [--frames=N] [--seed=N] [--miniature] [--trace-out=FILE]"
        );
        std::process::exit(2);
    };
    for a in args {
        if a == "--miniature" {
            miniature = true;
        } else if let Some(s) = a.strip_prefix("--arrivals=") {
            match simcore::ArrivalKind::from_name(s) {
                Some(k) => arrivals = k,
                None => usage(),
            }
        } else if let Some(s) = a.strip_prefix("--rate=") {
            match s.parse::<f64>() {
                Ok(v) if v >= 0.0 => rate_fps = v,
                _ => usage(),
            }
        } else if let Some(s) = a.strip_prefix("--deadline=") {
            match s.parse::<f64>() {
                Ok(v) if v >= 0.0 => deadline_ms = v,
                _ => usage(),
            }
        } else if let Some(s) = a.strip_prefix("--queue=") {
            match s.parse::<usize>() {
                Ok(v) if v >= 1 => queue = v,
                _ => usage(),
            }
        } else if let Some(s) = a.strip_prefix("--frames=") {
            match s.parse::<usize>() {
                Ok(v) if v >= 1 => frames = v,
                _ => usage(),
            }
        } else if let Some(s) = a.strip_prefix("--seed=") {
            match s.parse() {
                Ok(n) => seed = n,
                Err(_) => usage(),
            }
        } else if let Some(p) = a.strip_prefix("--trace-out=") {
            out_path = Some(p.to_string());
        } else if let Some(m) = parse_model(a) {
            model = m;
        } else {
            usage();
        }
    }

    heading(&format!(
        "Overload serving: uLayer {} under {} arrivals (seed {seed}, {frames} frames, queue {queue})",
        model.name(),
        arrivals,
    ));
    let reports = figures::serve_overload(
        model,
        arrivals,
        miniature,
        frames,
        rate_fps,
        deadline_ms,
        queue,
        seed,
    );
    let mut violations = Vec::new();
    for rep in &reports {
        let r = &rep.report;
        println!(
            "\n--- {} (mean interval {}, deadline {}) ---",
            rep.soc,
            ms(rep.mean_interval_ms),
            ms(rep.deadline_ms)
        );
        let mut t = Table::new(&["Rung", "Service (ms)", "Frames"]);
        for ((label, lat_ms), count) in rep.rungs.iter().zip(&r.rung_counts) {
            t.row(vec![label.clone(), ms(*lat_ms), count.to_string()]);
        }
        print!("{}", t.render());
        let mut t = Table::new(&[
            "Offered",
            "Completed",
            "Degraded",
            "Shed",
            "Rejected",
            "Queue peak/cap",
            "p50",
            "p95",
            "p99",
        ]);
        t.row(vec![
            r.offered.to_string(),
            r.completed.to_string(),
            r.degraded.to_string(),
            r.shed.to_string(),
            r.rejected.to_string(),
            format!("{}/{}", r.queue_peak, r.queue_capacity),
            ms(r.latency_percentile(0.50).as_secs_f64() * 1e3),
            ms(r.latency_percentile(0.95).as_secs_f64() * 1e3),
            ms(r.latency_percentile(0.99).as_secs_f64() * 1e3),
        ]);
        print!("{}", t.render());
        if let Err(e) = r.check_invariants() {
            violations.push(format!("{} / {}: {e}", rep.soc, rep.network));
        }
    }

    // Optionally export the high-end SoC's serving timeline.
    if let Some(path) = out_path {
        let json = reports[0].report.chrome_trace_json();
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        match simcore::validate_chrome_trace(&json) {
            Ok(summary) => println!(
                "\nwrote {path}: {} events on {} tracks (admission/rung/shed overlays)",
                summary.complete_events, summary.tracks
            ),
            Err(e) => {
                eprintln!("exported serving trace failed validation: {e}");
                std::process::exit(1);
            }
        }
    }

    println!("\n(bounded admission rejects at the door; the ladder degrades per-frame");
    println!(" from predicted slack and climbs back once the backlog drains)");
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("SERVE INVARIANT VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}

/// `repro measure [net] [--miniature] [--threads=N] [--repeat=N]
/// [--kernel-path={auto|scalar|simd}] [--out=FILE] [--baseline=FILE]`:
/// wall-clock measurement of the μLayer cooperative plan against the
/// single-processor CPU baseline on real worker threads, plus predictor
/// calibration from the measured samples. Writes a machine-readable
/// `BENCH_exec.json`; with `--baseline=FILE` also schema-checks a
/// checked-in baseline document.
fn measure_cmd(args: &[String]) {
    let mut model = unn::ModelId::SqueezeNet;
    let mut miniature = false;
    let mut threads = uexec::ExecConfig::from_env().cpu_threads;
    let mut repeat = 3usize;
    let mut kernel_path = ukernels::PathChoice::from_env();
    let mut out_path = "BENCH_exec.json".to_string();
    let mut baseline: Option<String> = None;
    let usage = || -> ! {
        eprintln!(
            "usage: repro measure [vgg16|alexnet|squeezenet|googlenet|mobilenet] \
             [--miniature] [--threads=N] [--repeat=N] [--kernel-path=auto|scalar|simd] \
             [--out=FILE] [--baseline=FILE]"
        );
        std::process::exit(2);
    };
    for a in args {
        if a == "--miniature" {
            miniature = true;
        } else if let Some(s) = a.strip_prefix("--threads=") {
            match s.parse::<usize>() {
                Ok(v) if v >= 1 => threads = v,
                _ => usage(),
            }
        } else if let Some(s) = a.strip_prefix("--repeat=") {
            match s.parse::<usize>() {
                Ok(v) if v >= 1 => repeat = v,
                _ => usage(),
            }
        } else if let Some(s) = a.strip_prefix("--kernel-path=") {
            match ukernels::PathChoice::parse(s) {
                Some(p) => kernel_path = p,
                None => usage(),
            }
        } else if let Some(p) = a.strip_prefix("--out=") {
            out_path = p.to_string();
        } else if let Some(p) = a.strip_prefix("--baseline=") {
            baseline = Some(p.to_string());
        } else if let Some(m) = parse_model(a) {
            model = m;
        } else {
            usage();
        }
    }

    heading(&format!(
        "Measured execution: uLayer {} on real worker pools ({threads} threads/pool, best of {repeat})",
        model.name()
    ));
    println!(
        "kernel path: {} (resolved: {}), cpu features: {}",
        kernel_path.as_str(),
        kernel_path.resolve().as_str(),
        ukernels::cpu_features(),
    );
    if kernel_path == ukernels::PathChoice::Simd
        && kernel_path.resolve() == ukernels::KernelPath::Scalar
    {
        println!("WARN: SIMD requested but this host lacks the CPU features; running scalar");
    }

    let g = if miniature {
        model.build_miniature()
    } else {
        model.build()
    };
    let w = unn::Weights::random(&g, 5).expect("weights");
    let shape = g.input_shape().clone();
    let x = utensor::Tensor::from_f32(
        shape.clone(),
        (0..shape.numel())
            .map(|i| (((i * 31) % 200) as f32) / 100.0 - 1.0)
            .collect(),
    )
    .expect("input");
    let calib = unn::calibrate(&g, &w, std::slice::from_ref(&x)).expect("calibrate");

    let spec = usoc::SocSpec::exynos_7420();
    let runtime = ulayer::ULayer::new(spec.clone()).expect("ulayer runtime");
    let coop_plan = runtime.plan(&g).expect("ulayer plan").plan;
    let single_plan =
        uruntime::single_processor_plan(&g, &spec, spec.cpu(), utensor::DType::QUInt8)
            .expect("single plan");

    let report = uexec::measure(
        &spec,
        &g,
        &w,
        &calib,
        &x,
        &coop_plan,
        &single_plan,
        &uexec::MeasureConfig {
            threads,
            repeat,
            kernel_path,
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("measurement failed: {e}");
        std::process::exit(1);
    });

    // Calibrate the predictor from the measured cooperative samples.
    let measured: Vec<ulayer::MeasuredSample> = report
        .samples
        .iter()
        .map(|s| ulayer::MeasuredSample {
            device: s.device,
            class: s.class,
            compute_dtype: s.compute_dtype,
            macs: s.macs,
            bytes: s.bytes,
            seconds: s.seconds,
        })
        .collect();
    let (_fitted, fit) = ulayer::LatencyPredictor::fit_from_measurements(&measured);

    let mut t = Table::new(&["Layer", "Kind", "Coop (ms)", "Single (ms)"]);
    for row in &report.layers {
        t.row(vec![
            row.name.clone(),
            row.kind.clone(),
            ms(row.coop_s * 1e3),
            ms(row.single_s * 1e3),
        ]);
    }
    print!("{}", t.render());

    println!(
        "\ntotal wall: cooperative {} vs single-pool {} => measured speedup {}",
        ms(report.coop_total_s * 1e3),
        ms(report.single_total_s * 1e3),
        ratio(report.measured_speedup),
    );
    println!(
        "modeled speedup (simulator): {}",
        ratio(report.modeled_speedup)
    );
    if report.host_parallelism < 2 {
        println!(
            "note: host has {} core(s); the two pools time-share, so cooperative \
             execution cannot beat the single pool here (expected on CI)",
            report.host_parallelism
        );
    } else if report.measured_speedup <= 1.0 {
        println!(
            "WARN: cooperative did not beat single-pool on this {}-core host",
            report.host_parallelism
        );
    }

    println!(
        "\npredictor calibration: {} samples fitted into {} models ({} skipped), \
         mean in-sample rel. err {}",
        fit.samples_used,
        fit.groups.len(),
        fit.samples_skipped,
        pct(fit.mean_rel_err()),
    );
    let mut t = Table::new(&["Device", "Class", "Dtype", "Samples", "Rel. err"]);
    for gfit in &fit.groups {
        t.row(vec![
            spec.device(gfit.device)
                .map(|d| d.name.clone())
                .unwrap_or_else(|_| format!("{}", gfit.device)),
            format!("{:?}", gfit.class),
            format!("{}", gfit.compute_dtype),
            gfit.samples.to_string(),
            pct(gfit.mean_rel_err),
        ]);
    }
    print!("{}", t.render());

    let json = measure_json(&spec, &report, &fit);
    if let Err(e) = std::fs::write(&out_path, json.render()) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {out_path}");

    if let Some(path) = baseline {
        match std::fs::read_to_string(&path) {
            Ok(doc) => {
                if let Err(missing) = check_measure_schema(&doc) {
                    eprintln!("baseline {path} fails the schema check: missing {missing}");
                    std::process::exit(1);
                }
                println!("baseline {path}: schema ok");
            }
            Err(e) => {
                eprintln!("failed to read baseline {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// The machine-readable measurement document (`BENCH_exec.json`).
fn measure_json(
    spec: &usoc::SocSpec,
    report: &uexec::MeasureReport,
    fit: &ulayer::FitReport,
) -> ubench::Json {
    use ubench::Json;
    let dev_name = |id: usoc::DeviceId| {
        spec.device(id)
            .map(|d| d.name.clone())
            .unwrap_or_else(|_| format!("{id}"))
    };
    Json::obj(vec![
        ("schema", Json::s(MEASURE_SCHEMA)),
        ("model", Json::s(report.model.clone())),
        ("soc", Json::s(spec.name.clone())),
        ("threads", Json::n(report.threads as f64)),
        ("repeat", Json::n(report.repeat as f64)),
        ("host_parallelism", Json::n(report.host_parallelism as f64)),
        (
            "kernel_path_requested",
            Json::s(report.kernel_path_requested.clone()),
        ),
        ("kernel_path", Json::s(report.kernel_path.clone())),
        ("cpu_features", Json::s(report.cpu_features.clone())),
        ("direct_conv", Json::Bool(report.direct_conv)),
        (
            "coop",
            Json::obj(vec![
                ("label", Json::s(report.coop_label.clone())),
                ("total_s", Json::n(report.coop_total_s)),
            ]),
        ),
        (
            "single",
            Json::obj(vec![
                ("label", Json::s(report.single_label.clone())),
                ("total_s", Json::n(report.single_total_s)),
            ]),
        ),
        ("measured_speedup", Json::n(report.measured_speedup)),
        ("modeled_speedup", Json::n(report.modeled_speedup)),
        (
            "fit",
            Json::obj(vec![
                ("samples_used", Json::n(fit.samples_used as f64)),
                ("samples_skipped", Json::n(fit.samples_skipped as f64)),
                ("mean_rel_err", Json::n(fit.mean_rel_err())),
                (
                    "groups",
                    Json::Arr(
                        fit.groups
                            .iter()
                            .map(|gf| {
                                Json::obj(vec![
                                    ("device", Json::s(dev_name(gf.device))),
                                    ("class", Json::s(format!("{:?}", gf.class))),
                                    ("dtype", Json::s(format!("{}", gf.compute_dtype))),
                                    ("samples", Json::n(gf.samples as f64)),
                                    ("mean_rel_err", Json::n(gf.mean_rel_err)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "layers",
            Json::Arr(
                report
                    .layers
                    .iter()
                    .map(|l| {
                        Json::obj(vec![
                            ("node", Json::n(l.node as f64)),
                            ("name", Json::s(l.name.clone())),
                            ("kind", Json::s(l.kind.clone())),
                            ("coop_s", Json::n(l.coop_s)),
                            ("single_s", Json::n(l.single_s)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Schema tag of the measurement document. v2 adds `kernel_path_requested`,
/// `kernel_path`, `cpu_features`, and `direct_conv`; v1 documents (without
/// those keys) are still accepted by the checker.
const MEASURE_SCHEMA: &str = "ulayer-exec-measure/v2";

/// Checks that `doc` carries a known measurement schema tag and every
/// key that tag requires. Returns the first missing marker.
fn check_measure_schema(doc: &str) -> Result<(), &'static str> {
    let v2 = doc.contains("\"schema\":\"ulayer-exec-measure/v2\"");
    if !v2 && !doc.contains("\"schema\":\"ulayer-exec-measure/v1\"") {
        return Err("\"schema\":\"ulayer-exec-measure/v1|v2\"");
    }
    let mut required = vec![
        "\"model\"",
        "\"soc\"",
        "\"threads\"",
        "\"repeat\"",
        "\"host_parallelism\"",
        "\"coop\"",
        "\"single\"",
        "\"measured_speedup\"",
        "\"modeled_speedup\"",
        "\"fit\"",
        "\"layers\"",
    ];
    if v2 {
        required.extend([
            "\"kernel_path_requested\"",
            "\"kernel_path\"",
            "\"cpu_features\"",
            "\"direct_conv\"",
        ]);
    }
    for marker in required {
        if !doc.contains(marker) {
            return Err(marker);
        }
    }
    Ok(())
}

fn heading(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn table1() {
    heading("Table 1: Evaluated NNs and the mechanisms' applicability");
    let mut t = Table::new(&[
        "Network",
        "Ch. Dist. (3.2)",
        "Proc. Quant. (4.2)",
        "Br. Dist. (5)",
    ]);
    let tick = |b: bool| if b { "yes" } else { "-" }.to_string();
    for (net, app) in figures::table1() {
        t.row(vec![
            net,
            tick(app.channel_distribution),
            tick(app.processor_quantization),
            tick(app.branch_distribution),
        ]);
    }
    print!("{}", t.render());
}

fn fig5() {
    heading("Figure 5: Per-layer VGG-16 latency, CPU vs GPU (F32)");
    for soc in figures::fig5() {
        println!("\n--- {} ---", soc.soc);
        let mut t = Table::new(&["Layer", "CPU (ms)", "GPU (ms)", "GPU speedup"]);
        for (name, cpu, gpu) in soc
            .layers
            .iter()
            .filter(|(n, _, _)| n.starts_with("conv") || n.starts_with("fc"))
        {
            t.row(vec![name.clone(), ms(*cpu), ms(*gpu), ratio(cpu / gpu)]);
        }
        print!("{}", t.render());
        println!(
            "mean GPU speedup over CPU: {:.2}x (paper: 1.40x high-end; CPU 26.1% faster mid-range)",
            soc.mean_gpu_speedup
        );
    }
}

fn fig6() {
    heading("Figure 6: NN execution latency, CPU vs GPU (F32)");
    for soc in figures::fig6() {
        println!("\n--- {} ---", soc.soc);
        let mut t = Table::new(&["Network", "CPU (ms)", "GPU (ms)"]);
        for (net, cpu, gpu) in &soc.rows {
            t.row(vec![net.clone(), ms(*cpu), ms(*gpu)]);
        }
        print!("{}", t.render());
    }
}

fn fig8() {
    heading("Figure 8: Quantization impact on latency (normalized to CPU F32)");
    for soc in figures::fig8() {
        println!("\n--- {} ---", soc.soc);
        let keys: Vec<String> = soc.rows[0].1.keys().cloned().collect();
        let mut header: Vec<&str> = vec!["Network"];
        header.extend(keys.iter().map(String::as_str));
        let mut t = Table::new(&header);
        for (net, m) in &soc.rows {
            let mut row = vec![net.clone()];
            row.extend(keys.iter().map(|k| ratio(m[k])));
            t.row(row);
        }
        print!("{}", t.render());
    }
    println!("(expect: CPU QUInt8 fastest on CPU; GPU F16 fastest on GPU; CPU F16 no gain)");
}

fn fig10() {
    heading("Figure 10: Top-1 accuracy under quantization (substituted workload)");
    println!("(training two classifiers from scratch; takes a few minutes)");
    for (net, rows) in quantlab::run_figure10() {
        println!("\n--- {net} ---");
        let mut t = Table::new(&["Variant", "Top-1 accuracy", "Drop vs F32 (pp)"]);
        for r in rows {
            t.row(vec![
                r.variant.to_string(),
                pct(r.accuracy),
                format!("{:.1}", r.drop_pp),
            ]);
        }
        print!("{}", t.render());
    }
    println!("(expect: F16 lossless; naive QUInt8 degrades, more for the deeper net;");
    println!(" range-calibrated QUInt8 recovers to within a few points — paper max 2.7pp)");
}

fn fig12() {
    heading("Figure 12: Branch distribution case study (Inception 3a, high-end SoC)");
    let d = figures::fig12();
    let mut t = Table::new(&["Mechanism", "Latency (ms)", "Improvement vs CPU-only"]);
    t.row(vec![
        "CPU-Only (QUInt8)".into(),
        ms(d.cpu_only_ms),
        "-".into(),
    ]);
    t.row(vec![
        "Cooperative".into(),
        ms(d.cooperative_ms),
        pct(1.0 - d.cooperative_ms / d.cpu_only_ms),
    ]);
    t.row(vec![
        "Cooperative (Optimal)".into(),
        ms(d.optimal_ms),
        pct(1.0 - d.optimal_ms / d.cpu_only_ms),
    ]);
    print!("{}", t.render());
    println!("(paper: 52.1% and 63.4% over CPU-only)");
}

fn print_evaluation(metric: &str, get: impl Fn(&figures::MechanismResult) -> f64) {
    for eval in figures::evaluation() {
        println!("\n--- {} ---", eval.soc);
        let labels: Vec<String> = eval.rows[0].1.iter().map(|m| m.label.clone()).collect();
        let mut header: Vec<&str> = vec!["Network"];
        header.extend(labels.iter().map(String::as_str));
        let mut t = Table::new(&header);
        for (net, mechs) in &eval.rows {
            let l2p = mechs
                .iter()
                .find(|m| m.label == "layer-to-proc QUInt8")
                .expect("l2p present");
            let mut row = vec![net.clone()];
            row.extend(mechs.iter().map(|m| ratio(get(m) / get(l2p))));
            t.row(row);
        }
        print!("{}", t.render());
        println!("(normalized to layer-to-proc QUInt8; lower is better)");
        if metric == "latency" {
            let imps = eval.latency_improvements();
            let max =
                imps.iter()
                    .cloned()
                    .fold(("".to_string(), 0.0), |a, b| if b.1 > a.1 { b } else { a });
            let geo = 1.0 - geomean(&imps.iter().map(|(_, v)| 1.0 - v).collect::<Vec<_>>());
            println!(
                "uLayer speed improvement: max {} on {}, geomean {}",
                pct(max.1),
                max.0,
                pct(geo)
            );
        } else {
            let factors = eval.energy_factors();
            let geo = geomean(&factors.iter().map(|(_, v)| *v).collect::<Vec<_>>());
            let max =
                factors
                    .iter()
                    .cloned()
                    .fold(("".to_string(), 0.0), |a, b| if b.1 > a.1 { b } else { a });
            println!(
                "uLayer energy-efficiency factor: max {:.2}x on {}, geomean {:.2}x",
                max.1, max.0, geo
            );
        }
    }
}

fn fig16() {
    heading("Figure 16: End-to-end latency of all mechanisms");
    print_evaluation("latency", |m| m.latency_ms);
    println!("\n(paper: up to 59.9%/69.6% and geomean 30.5%/35.3% over layer-to-proc)");
}

fn fig17() {
    heading("Figure 17: Contribution of the three optimizations (ablation)");
    for soc in figures::fig17() {
        println!("\n--- {} ---", soc.soc);
        let mut t = Table::new(&[
            "Network",
            "layer-to-proc",
            "+Ch.Dist",
            "+Proc.Quant",
            "+Br.Dist (= uLayer)",
        ]);
        for (net, steps) in &soc.rows {
            let full = steps[3];
            t.row(vec![
                net.clone(),
                ratio(steps[0] / full),
                ratio(steps[1] / full),
                ratio(steps[2] / full),
                ratio(1.0),
            ]);
        }
        print!("{}", t.render());
        println!("(normalized to the complete uLayer, as in the paper)");
    }
}

fn fig18() {
    heading("Figure 18: Energy consumption of all mechanisms");
    print_evaluation("energy", |m| m.energy_mj);
    println!("\n(paper: geomean 1.26x/1.34x energy-efficiency over layer-to-proc)");
}

fn predictor() {
    heading("Latency predictor validation (held-out zoo layers)");
    for spec in usoc::SocSpec::evaluated() {
        let pred = ulayer::LatencyPredictor::train(&spec).expect("train");
        let graphs: Vec<unn::Graph> = unn::ModelId::EVALUATED
            .iter()
            .map(|id| id.build())
            .collect();
        let report = ulayer::evaluate_predictor(&spec, &pred, &graphs).expect("evaluate");
        println!("\n--- {} ---", spec.name);
        let mut t = Table::new(&["Device", "Samples", "Mean rel. err", "Max rel. err"]);
        for d in &report.devices {
            t.row(vec![
                d.name.clone(),
                d.samples.to_string(),
                pct(d.mean_rel_err),
                pct(d.max_rel_err),
            ]);
        }
        print!("{}", t.render());
    }
    println!("(fitted regression, not an oracle: nonzero error propagates into planning)");
}

fn sweeps() {
    heading("Design-choice ablations (beyond the paper)");
    println!("\nsplit-ratio granularity (geomean improvement vs layer-to-proc, high-end):");
    let mut t = Table::new(&["Candidate set", "# candidates", "Geomean improvement"]);
    for r in ubench::p_granularity() {
        t.row(vec![
            r.label.clone(),
            r.candidates.len().to_string(),
            pct(r.geomean_improvement),
        ]);
    }
    print!("{}", t.render());

    println!("\nmanagement-overhead sensitivity (issue/wait/map/dispatch scaled):");
    let mut t = Table::new(&["Overhead scale", "Geomean improvement"]);
    for r in ubench::overhead_sensitivity() {
        t.row(vec![format!("{:.2}x", r.scale), pct(r.geomean_improvement)]);
    }
    print!("{}", t.render());
    println!("(the section-3.1 argument: sync overheads erode cooperative gains)");
}

fn npu() {
    heading("Section 8.3 extension: channel-wise distribution across CPU+GPU+NPU");
    let mut t = Table::new(&["Network", "uLayer (ms)", "uLayer+NPU (ms)", "Speedup"]);
    for r in figures::npu_extension() {
        t.row(vec![
            r.network.clone(),
            ms(r.base_ms),
            ms(r.npu_ms),
            ratio(r.base_ms / r.npu_ms),
        ]);
    }
    print!("{}", t.render());
}
