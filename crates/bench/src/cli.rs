//! Typed argument parsing for the `repro` binary.
//!
//! Every subcommand declares its flags in a table ([`FlagSpec`]) and
//! parses through [`parse_flags`], so an unknown flag, a malformed
//! `--key=value`, or an out-of-range value is a typed [`CliError`]
//! (rendered with the offending token and what was expected) and a
//! non-zero exit — never a silently ignored argument. The per-
//! subcommand tables are public so the CLI contract is testable
//! table-driven, without spawning processes.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Network names every model-taking subcommand accepts positionally.
pub const MODELS: &[&str] = &[
    "vgg16",
    "vgg",
    "alexnet",
    "squeezenet",
    "googlenet",
    "mobilenet",
];

/// Arrival-process names (`--arrivals=`); kept in sync with
/// `simcore::ArrivalKind::ALL` by a test.
pub const ARRIVALS: &[&str] = &["fixed", "bursty", "poisson"];

/// Single-device fault scenarios (`--scenario=`); kept in sync with
/// `simcore::Scenario::ALL` by a test.
pub const SCENARIOS: &[&str] = &["throttle", "flaky-gpu", "gpu-loss"];

/// Fleet storm names (`--storm=`): the [`simcore::FleetScenario`]
/// names plus `none`; kept in sync by a test.
pub const STORMS: &[&str] = &[
    "none",
    "throttle-wave",
    "gpu-loss",
    "flaky-epidemic",
    "link-partition",
];

/// Link-fault scenario names (`--link-fault=`): the
/// [`simcore::LinkFaultScenario`] names plus `none`; kept in sync by a
/// test.
pub const LINK_FAULTS: &[&str] = &["none", "drop", "delay", "jitter", "flap", "partition"];

/// Kernel-path choices (`--kernel-path=`).
pub const KERNEL_PATHS: &[&str] = &["auto", "scalar", "simd"];

/// On/off toggles (`--plan-cache=`).
pub const ONOFF: &[&str] = &["on", "off"];

/// Drift scenarios of the `plan` subcommand (`--drift=`): how the
/// per-frame `DriftAdapter` state evolves while the planner session
/// replans the stream.
pub const DRIFTS: &[&str] = &["calm", "throttle", "loss", "oscillate"];

/// What a flag's value must look like.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlagKind {
    /// Bare `--flag`; takes no value.
    Switch,
    /// `--flag=N`, unsigned 64-bit.
    U64,
    /// `--flag=N`, unsigned, at least the given minimum.
    UsizeMin(usize),
    /// `--flag=X`, non-negative float.
    F64NonNeg,
    /// `--flag=S`, any non-empty string (paths).
    Str,
    /// `--flag=S`, one of an enumerated set.
    OneOf(&'static [&'static str]),
}

impl FlagKind {
    fn expected(self) -> String {
        match self {
            FlagKind::Switch => "no value (it is a switch)".into(),
            FlagKind::U64 => "an unsigned integer".into(),
            FlagKind::UsizeMin(min) => format!("an integer >= {min}"),
            FlagKind::F64NonNeg => "a number >= 0".into(),
            FlagKind::Str => "a non-empty value".into(),
            FlagKind::OneOf(names) => format!("one of {}", names.join("|")),
        }
    }
}

/// One flag a subcommand accepts.
#[derive(Clone, Copy, Debug)]
pub struct FlagSpec {
    /// The flag name including the leading dashes (`"--seed"`).
    pub name: &'static str,
    /// Value shape.
    pub kind: FlagKind,
}

const fn flag(name: &'static str, kind: FlagKind) -> FlagSpec {
    FlagSpec { name, kind }
}

/// `repro trace` flags.
pub const TRACE_FLAGS: &[FlagSpec] = &[
    flag("--miniature", FlagKind::Switch),
    flag("--no-passes", FlagKind::Switch),
    flag("--check-merge", FlagKind::Switch),
    flag("--trace-out", FlagKind::Str),
];

/// `repro passes` flags.
pub const PASSES_FLAGS: &[FlagSpec] = &[flag("--miniature", FlagKind::Switch)];

/// `repro faults` flags.
pub const FAULTS_FLAGS: &[FlagSpec] = &[
    flag("--miniature", FlagKind::Switch),
    flag("--scenario", FlagKind::OneOf(SCENARIOS)),
    flag("--seed", FlagKind::U64),
];

/// `repro serve` flags.
pub const SERVE_FLAGS: &[FlagSpec] = &[
    flag("--miniature", FlagKind::Switch),
    flag("--arrivals", FlagKind::OneOf(ARRIVALS)),
    flag("--rate", FlagKind::F64NonNeg),
    flag("--deadline", FlagKind::F64NonNeg),
    flag("--queue", FlagKind::UsizeMin(1)),
    flag("--frames", FlagKind::UsizeMin(1)),
    flag("--seed", FlagKind::U64),
    flag("--trace-out", FlagKind::Str),
];

/// `repro measure` flags.
pub const MEASURE_FLAGS: &[FlagSpec] = &[
    flag("--miniature", FlagKind::Switch),
    flag("--threads", FlagKind::UsizeMin(1)),
    flag("--repeat", FlagKind::UsizeMin(1)),
    flag("--kernel-path", FlagKind::OneOf(KERNEL_PATHS)),
    flag("--out", FlagKind::Str),
    flag("--baseline", FlagKind::Str),
];

/// `repro fleet` flags.
pub const FLEET_FLAGS: &[FlagSpec] = &[
    flag("--miniature", FlagKind::Switch),
    flag("--devices", FlagKind::UsizeMin(1)),
    flag("--frames", FlagKind::UsizeMin(1)),
    flag("--seed", FlagKind::U64),
    flag("--storm", FlagKind::OneOf(STORMS)),
    flag("--arrivals", FlagKind::OneOf(ARRIVALS)),
    flag("--queue", FlagKind::UsizeMin(1)),
    flag("--rate", FlagKind::F64NonNeg),
    flag("--deadline", FlagKind::F64NonNeg),
    flag("--fuzz-orders", FlagKind::UsizeMin(0)),
    flag("--plan-cache", FlagKind::OneOf(ONOFF)),
    flag("--min-hit-rate", FlagKind::F64NonNeg),
    flag("--out", FlagKind::Str),
    flag("--baseline", FlagKind::Str),
];

/// `repro plan` flags.
pub const PLAN_FLAGS: &[FlagSpec] = &[
    flag("--miniature", FlagKind::Switch),
    flag("--frames", FlagKind::UsizeMin(1)),
    flag("--seed", FlagKind::U64),
    flag("--drift", FlagKind::OneOf(DRIFTS)),
    flag("--min-hit-rate", FlagKind::F64NonNeg),
    flag("--out", FlagKind::Str),
    flag("--baseline", FlagKind::Str),
];

/// `repro mesh` flags.
pub const MESH_FLAGS: &[FlagSpec] = &[
    flag("--nodes", FlagKind::UsizeMin(2)),
    flag("--frames", FlagKind::UsizeMin(1)),
    flag("--seed", FlagKind::U64),
    flag("--link-fault", FlagKind::OneOf(LINK_FAULTS)),
    flag("--arrivals", FlagKind::OneOf(ARRIVALS)),
    flag("--queue", FlagKind::UsizeMin(1)),
    flag("--rate", FlagKind::F64NonNeg),
    flag("--deadline", FlagKind::F64NonNeg),
    flag("--out", FlagKind::Str),
    flag("--baseline", FlagKind::Str),
];

/// Every flag-taking subcommand and its table, for table-driven tests
/// and for `main`'s dispatcher.
pub const SUBCOMMANDS: &[(&str, &[FlagSpec])] = &[
    ("trace", TRACE_FLAGS),
    ("passes", PASSES_FLAGS),
    ("faults", FAULTS_FLAGS),
    ("serve", SERVE_FLAGS),
    ("measure", MEASURE_FLAGS),
    ("fleet", FLEET_FLAGS),
    ("mesh", MESH_FLAGS),
    ("plan", PLAN_FLAGS),
];

/// The flag table of a subcommand, if it has one.
pub fn subcommand_flags(name: &str) -> Option<&'static [FlagSpec]> {
    SUBCOMMANDS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, specs)| *specs)
}

/// A rejected command line, with enough structure to assert on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliError {
    /// The first argument names no subcommand, figure, or export mode.
    UnknownSubcommand {
        /// What was given.
        given: String,
    },
    /// A `--flag` the subcommand does not declare.
    UnknownFlag {
        /// The subcommand.
        subcommand: &'static str,
        /// The offending token.
        flag: String,
    },
    /// A declared flag with a value that fails its [`FlagKind`] — a
    /// switch given a value, a value flag given none, or a value that
    /// does not parse / is out of range.
    BadValue {
        /// The subcommand.
        subcommand: &'static str,
        /// The flag name.
        flag: &'static str,
        /// The offending value as given (empty when missing).
        given: String,
        /// What the flag requires.
        expected: String,
    },
    /// A positional argument that names no known network.
    BadPositional {
        /// The subcommand.
        subcommand: &'static str,
        /// The offending token.
        given: String,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownSubcommand { given } => {
                write!(f, "unknown subcommand or figure `{given}`")
            }
            CliError::UnknownFlag { subcommand, flag } => {
                write!(f, "{subcommand}: unknown flag `{flag}`")
            }
            CliError::BadValue {
                subcommand,
                flag,
                given,
                expected,
            } => {
                if given.is_empty() {
                    write!(f, "{subcommand}: `{flag}` expects {expected}")
                } else {
                    write!(
                        f,
                        "{subcommand}: bad value `{given}` for `{flag}` (expected {expected})"
                    )
                }
            }
            CliError::BadPositional { subcommand, given } => {
                write!(
                    f,
                    "{subcommand}: `{given}` names no network (expected one of {})",
                    MODELS.join("|")
                )
            }
        }
    }
}

impl std::error::Error for CliError {}

/// A validated command line: switches, typed `--key=value` pairs, and
/// the remaining positional arguments (validated by the caller, e.g.
/// against [`MODELS`]).
#[derive(Clone, Debug, Default)]
pub struct Parsed {
    switches: BTreeSet<&'static str>,
    values: BTreeMap<&'static str, String>,
    /// Non-flag arguments, in order.
    pub positional: Vec<String>,
}

impl Parsed {
    /// True when the switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.contains(name)
    }

    /// The raw value of a value flag, if given.
    pub fn str_of(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// A `U64`/`UsizeMin` flag's value (validated at parse time).
    pub fn u64_of(&self, name: &str) -> Option<u64> {
        self.str_of(name)
            .map(|s| s.parse().expect("validated at parse"))
    }

    /// A `UsizeMin` flag's value (validated at parse time).
    pub fn usize_of(&self, name: &str) -> Option<usize> {
        self.str_of(name)
            .map(|s| s.parse().expect("validated at parse"))
    }

    /// An `F64NonNeg` flag's value (validated at parse time).
    pub fn f64_of(&self, name: &str) -> Option<f64> {
        self.str_of(name)
            .map(|s| s.parse().expect("validated at parse"))
    }
}

/// Parses `args` against a subcommand's flag table. Flags may appear
/// in any order and interleave with positionals; later occurrences of
/// the same flag overwrite earlier ones (shell-alias friendly).
pub fn parse_flags(
    subcommand: &'static str,
    args: &[String],
    specs: &[FlagSpec],
) -> Result<Parsed, CliError> {
    let mut out = Parsed::default();
    for a in args {
        if !a.starts_with("--") {
            out.positional.push(a.clone());
            continue;
        }
        let (name, value) = match a.split_once('=') {
            Some((n, v)) => (n, Some(v)),
            None => (a.as_str(), None),
        };
        let Some(spec) = specs.iter().find(|s| s.name == name) else {
            return Err(CliError::UnknownFlag {
                subcommand,
                flag: a.clone(),
            });
        };
        let bad = |given: &str| CliError::BadValue {
            subcommand,
            flag: spec.name,
            given: given.to_string(),
            expected: spec.kind.expected(),
        };
        match (spec.kind, value) {
            (FlagKind::Switch, None) => {
                out.switches.insert(spec.name);
            }
            (FlagKind::Switch, Some(v)) => return Err(bad(v)),
            (_, None) => return Err(bad("")),
            (kind, Some(v)) => {
                let ok = match kind {
                    FlagKind::Switch => unreachable!("handled above"),
                    FlagKind::U64 => v.parse::<u64>().is_ok(),
                    FlagKind::UsizeMin(min) => v.parse::<usize>().is_ok_and(|n| n >= min),
                    FlagKind::F64NonNeg => v.parse::<f64>().is_ok_and(|x| x >= 0.0),
                    FlagKind::Str => !v.is_empty(),
                    FlagKind::OneOf(names) => names.contains(&v),
                };
                if !ok {
                    return Err(bad(v));
                }
                out.values.insert(spec.name, v.to_string());
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_positionals_and_overrides() {
        let p = parse_flags(
            "serve",
            &args(&["squeezenet", "--queue=4", "--miniature", "--queue=6"]),
            SERVE_FLAGS,
        )
        .expect("parse");
        assert_eq!(p.positional, vec!["squeezenet".to_string()]);
        assert!(p.switch("--miniature"));
        assert_eq!(p.usize_of("--queue"), Some(6));
        assert_eq!(p.usize_of("--frames"), None);
    }

    #[test]
    fn unknown_flag_is_typed() {
        let e = parse_flags("serve", &args(&["--wat=1"]), SERVE_FLAGS).unwrap_err();
        assert_eq!(
            e,
            CliError::UnknownFlag {
                subcommand: "serve",
                flag: "--wat=1".into()
            }
        );
    }

    #[test]
    fn malformed_values_are_typed() {
        for bad in ["--queue=zero", "--queue=0", "--queue=", "--queue"] {
            let e = parse_flags("serve", &args(&[bad]), SERVE_FLAGS).unwrap_err();
            assert!(
                matches!(
                    e,
                    CliError::BadValue {
                        flag: "--queue",
                        ..
                    }
                ),
                "{bad}: {e:?}"
            );
        }
        let e = parse_flags("serve", &args(&["--miniature=yes"]), SERVE_FLAGS).unwrap_err();
        assert!(matches!(
            e,
            CliError::BadValue {
                flag: "--miniature",
                ..
            }
        ));
    }

    #[test]
    fn every_table_is_reachable_by_name() {
        for &(name, specs) in SUBCOMMANDS {
            let found = subcommand_flags(name).expect("registered");
            let names = |t: &[FlagSpec]| t.iter().map(|s| s.name).collect::<Vec<_>>();
            assert_eq!(names(found), names(specs), "{name}");
        }
        assert!(subcommand_flags("fig5").is_none());
    }
}
