//! Host-side throughput of the functional compute kernels.
//!
//! These measure the reproduction's own numeric kernels (the simulated
//! SoC provides *modeled* time; these are real host microbenchmarks used
//! to keep the functional path fast enough for tests and examples).

use std::hint::black_box;
use testkit::bench::{BenchmarkId, Criterion, Throughput};
use testkit::{criterion_group, criterion_main};
use ukernels::{conv2d, pool2d, Conv2dParams, PoolKind, PoolParams};
use utensor::{DType, QuantParams, Shape, Tensor};

fn tensor(shape: Shape, seed: usize) -> Tensor {
    let n = shape.numel();
    let data: Vec<f32> = (0..n)
        .map(|i| ((((i + seed) * 2654435761) % 2000) as f32 - 1000.0) / 1000.0)
        .collect();
    Tensor::from_f32(shape, data).expect("sized")
}

fn bench_gemm_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_conv2d");
    let input = tensor(Shape::nchw(1, 32, 28, 28), 1);
    let filters = tensor(Shape::oihw(64, 32, 3, 3), 2);
    let macs = 64u64 * 28 * 28 * 32 * 9;
    group.throughput(Throughput::Elements(macs));
    let params = Conv2dParams {
        stride: 1,
        pad: 1,
        relu: true,
    };
    let qp = QuantParams::from_range(-1.0, 1.0).expect("range");
    let out_qp = QuantParams::from_range(-16.0, 16.0).expect("range");

    for dtype in DType::ALL {
        let x = input.cast(dtype, Some(qp)).expect("cast");
        let f = filters.cast(dtype, Some(qp)).expect("cast");
        let out_params = (dtype == DType::QUInt8).then_some(out_qp);
        group.bench_with_input(BenchmarkId::new("32x28x28_to_64", dtype), &dtype, |b, _| {
            b.iter(|| {
                conv2d(black_box(&x), black_box(&f), None, &params, out_params).expect("conv")
            })
        });
    }
    group.finish();
}

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_pool2d");
    let input = tensor(Shape::nchw(1, 64, 56, 56), 3);
    let params = PoolParams {
        kind: PoolKind::Max,
        k: 3,
        stride: 2,
        pad: 1,
    };
    for dtype in DType::ALL {
        let x = input
            .cast(
                dtype,
                Some(QuantParams::from_range(-1.0, 1.0).expect("range")),
            )
            .expect("cast");
        group.bench_with_input(
            BenchmarkId::new("64x56x56_max3x3", dtype),
            &dtype,
            |b, _| b.iter(|| pool2d(black_box(&x), &params).expect("pool")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gemm_conv, bench_pool);
criterion_main!(benches);
