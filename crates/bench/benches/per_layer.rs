//! Figure 5 workload: per-layer VGG-16 profiling on each processor.
//!
//! Measures the host-side cost of the profiling pass itself (the data it
//! produces is checked by `repro fig5` and the integration tests).

use std::hint::black_box;
use testkit::bench::{BenchmarkId, Criterion};
use testkit::{criterion_group, criterion_main};
use unn::ModelId;
use usoc::{profile_graph, DtypePlan, SocSpec};
use utensor::DType;

fn bench_per_layer(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_per_layer_profile");
    let graph = ModelId::Vgg16.build();
    for spec in SocSpec::evaluated() {
        for (dev, name) in [(spec.cpu(), "cpu"), (spec.gpu(), "gpu")] {
            group.bench_with_input(
                BenchmarkId::new(spec.name.clone(), name),
                &dev,
                |b, &dev| {
                    b.iter(|| {
                        let profiles = profile_graph(
                            black_box(&spec),
                            dev,
                            black_box(&graph),
                            DtypePlan::uniform(DType::F32),
                        )
                        .expect("profile");
                        black_box(usoc::total_latency(&profiles))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_per_layer);
criterion_main!(benches);
