//! Figure 16 workload: every mechanism on every network (high-end SoC).
//!
//! The μLayer runtime (predictor training included) is constructed once
//! per network outside the timing loop, so the numbers isolate plan +
//! schedule + energy accounting.

use std::hint::black_box;
use testkit::bench::{BenchmarkId, Criterion};
use testkit::{criterion_group, criterion_main};
use ulayer::ULayer;
use unn::ModelId;
use uruntime::{run_layer_to_processor, run_single_processor};
use usoc::SocSpec;
use utensor::DType;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16_end_to_end");
    group.sample_size(10);
    let spec = SocSpec::exynos_7420();
    let runtime = ULayer::new(spec.clone()).expect("ulayer");
    for id in ModelId::EVALUATED {
        let graph = id.build();
        group.bench_with_input(BenchmarkId::new("cpu_quint8", id.name()), &graph, |b, g| {
            b.iter(|| {
                run_single_processor(black_box(&spec), g, spec.cpu(), DType::QUInt8)
                    .expect("run")
                    .latency
            })
        });
        group.bench_with_input(
            BenchmarkId::new("layer_to_proc", id.name()),
            &graph,
            |b, g| {
                b.iter(|| {
                    run_layer_to_processor(black_box(&spec), g, DType::QUInt8)
                        .expect("run")
                        .latency
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("ulayer", id.name()), &graph, |b, g| {
            b.iter(|| runtime.run(black_box(g)).expect("run").latency)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
