//! Figure 18 workload: energy accounting over complete runs.

use std::hint::black_box;
use testkit::bench::{BenchmarkId, Criterion};
use testkit::{criterion_group, criterion_main};
use ulayer::ULayer;
use unn::ModelId;
use uruntime::run_layer_to_processor;
use usoc::SocSpec;
use utensor::DType;

fn bench_energy(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig18_energy");
    group.sample_size(10);
    for spec in SocSpec::evaluated() {
        let runtime = ULayer::new(spec.clone()).expect("ulayer");
        let graph = ModelId::MobileNet.build();
        group.bench_with_input(
            BenchmarkId::new("mobilenet_l2p", spec.name.clone()),
            &graph,
            |b, g| {
                b.iter(|| {
                    run_layer_to_processor(black_box(&spec), g, DType::QUInt8)
                        .expect("run")
                        .energy
                        .total_mj()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mobilenet_ulayer", spec.name.clone()),
            &graph,
            |b, g| b.iter(|| runtime.run(black_box(g)).expect("run").energy.total_mj()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_energy);
criterion_main!(benches);
