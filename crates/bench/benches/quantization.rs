//! Figure 8 workload: single-processor runs across all three dtypes.

use std::hint::black_box;
use testkit::bench::{BenchmarkId, Criterion};
use testkit::{criterion_group, criterion_main};
use unn::ModelId;
use uruntime::run_single_processor;
use usoc::SocSpec;
use utensor::DType;

fn bench_quantization(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_quantization");
    group.sample_size(20);
    let spec = SocSpec::exynos_7420();
    let graph = ModelId::AlexNet.build();
    for dtype in DType::ALL {
        for (dev, name) in [(spec.cpu(), "cpu"), (spec.gpu(), "gpu")] {
            group.bench_with_input(
                BenchmarkId::new(format!("alexnet-{name}"), dtype),
                &dtype,
                |b, &dtype| {
                    b.iter(|| {
                        run_single_processor(black_box(&spec), black_box(&graph), dev, dtype)
                            .expect("run")
                            .latency
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_quantization);
criterion_main!(benches);
