//! Figure 17 workload: the three-step mechanism ablation on GoogLeNet.

use std::hint::black_box;
use testkit::bench::{BenchmarkId, Criterion};
use testkit::{criterion_group, criterion_main};
use ulayer::{ULayer, ULayerConfig};
use unn::ModelId;
use usoc::SocSpec;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig17_ablation");
    group.sample_size(10);
    let spec = SocSpec::exynos_7420();
    let graph = ModelId::GoogLeNet.build();
    let steps = [
        ("ch_dist", ULayerConfig::channel_distribution_only()),
        ("ch_dist+proc_quant", ULayerConfig::with_proc_quant()),
        ("full_ulayer", ULayerConfig::full()),
    ];
    for (name, cfg) in steps {
        let runtime = ULayer::with_config(spec.clone(), cfg).expect("ulayer");
        group.bench_with_input(BenchmarkId::new("googlenet", name), &graph, |b, g| {
            b.iter(|| runtime.run(black_box(g)).expect("run").latency)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
