//! A minimal, deterministic property-testing runner.
//!
//! Covers the strategy shapes the workspace suites actually use —
//! integer/float ranges, booleans, choices, vectors — with
//! deterministic case generation, counterexample shrinking, and
//! environment overrides. It intentionally implements a small subset of
//! `proptest`: enough for the μLayer invariant suites, nothing more.
//!
//! # Model
//!
//! A [`Strategy`] generates values from an [`Rng`] and proposes
//! *shrink candidates* — simpler values to try once a case fails.
//! Numeric strategies shrink toward zero when the range contains it,
//! otherwise toward the range start; choices shrink toward earlier
//! options; vectors shrink by dropping elements, then shrinking them.
//!
//! Each property derives its stream as `base_seed ^ fnv1a(test_name)`,
//! so properties are independent but the whole suite replays from one
//! `TESTKIT_SEED`. A failure panics with the base seed, the original
//! counterexample, and the shrunk counterexample.
//!
//! # Usage
//!
//! ```
//! testkit::props! {
//!     #![cases(64)]
//!
//!     /// Addition is commutative on the sampled domain.
//!     fn add_commutes(a in -1000i32..1000, b in -1000i32..1000) {
//!         testkit::prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::{fnv1a, Rng};

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum CaseError {
    /// The property is false for this input.
    Fail(String),
    /// The input does not satisfy a `prop_assume!` precondition; the
    /// case is discarded and regenerated, not counted as a failure.
    Reject(String),
}

impl CaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> CaseError {
        CaseError::Fail(msg.into())
    }

    /// A discarded case (unsatisfied precondition).
    pub fn reject(msg: impl Into<String>) -> CaseError {
        CaseError::Reject(msg.into())
    }
}

/// The result of one property-test case.
pub type TestCaseResult = Result<(), CaseError>;

/// Runner configuration, resolved from defaults plus the
/// `TESTKIT_SEED` / `TESTKIT_CASES` environment.
#[derive(Clone, Debug)]
pub struct PropConfig {
    /// Number of passing cases required.
    pub cases: u32,
    /// Base seed; each test XORs in a hash of its own name.
    pub seed: u64,
    /// Maximum accepted shrink steps before reporting.
    pub max_shrink_steps: u32,
    /// Maximum discarded (`prop_assume!`) cases before giving up.
    pub max_rejects: u32,
}

/// The default base seed. Every run is deterministic; override with
/// `TESTKIT_SEED` to explore a different stream.
pub const DEFAULT_SEED: u64 = 0x5EED_0000_0000_5EED;

impl Default for PropConfig {
    fn default() -> Self {
        PropConfig {
            cases: 64,
            seed: DEFAULT_SEED,
            max_shrink_steps: 256,
            max_rejects: 4096,
        }
    }
}

impl PropConfig {
    /// A config with `cases` as the suite default, then applies the
    /// environment overrides.
    pub fn resolve(default_cases: u32) -> PropConfig {
        let mut cfg = PropConfig {
            cases: default_cases,
            ..PropConfig::default()
        };
        if let Ok(s) = std::env::var("TESTKIT_SEED") {
            cfg.seed = parse_u64(&s)
                .unwrap_or_else(|| panic!("TESTKIT_SEED must be a u64 (decimal or 0x-hex): {s:?}"));
        }
        if let Ok(s) = std::env::var("TESTKIT_CASES") {
            cfg.cases = s
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("TESTKIT_CASES must be a u32: {s:?}"));
        }
        cfg
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// A generator of test values plus their shrink candidates.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Simpler values to try when `value` fails. Candidates must be
    /// "smaller" by some well-founded measure or shrinking may loop;
    /// the runner additionally bounds total shrink work.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                shrink_int(*v, self.start, self.end - 1)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                shrink_int(*v, *self.start(), *self.end())
            }
        }
    )+};
}

macro_rules! impl_float_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                shrink_float(*v, self.start, self.end)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Rng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                shrink_float(*v, *self.start(), *self.end())
            }
        }
    )+};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
impl_float_strategy!(f32, f64);

/// Shrink candidates for an integer in `[lo, hi]`: the origin (zero if
/// representable, else `lo`), the midpoint toward the origin, and one
/// step toward the origin.
fn shrink_int<T>(v: T, lo: T, hi: T) -> Vec<T>
where
    T: Copy + PartialOrd + PartialEq + num_shrink::Int,
{
    let origin = if lo <= T::ZERO && T::ZERO <= hi {
        T::ZERO
    } else {
        lo
    };
    let mut out = Vec::new();
    if v != origin {
        out.push(origin);
        let mid = origin.midpoint_toward(v);
        if mid != v && mid != origin {
            out.push(mid);
        }
        let step = v.step_toward(origin);
        if step != v && step != origin && Some(&step) != out.last() {
            out.push(step);
        }
    }
    out
}

/// Shrink candidates for a float in `[lo, hi]`: the origin and the
/// midpoint toward it, suppressed once the distance is negligible.
fn shrink_float<T: num_shrink::Float>(v: T, lo: T, hi: T) -> Vec<T> {
    let origin = if lo <= T::ZERO && T::ZERO <= hi {
        T::ZERO
    } else {
        lo
    };
    let mut out = Vec::new();
    if v.distinct_from(origin) {
        out.push(origin);
        let mid = origin.average(v);
        if mid.distinct_from(origin) && mid.distinct_from(v) {
            out.push(mid);
        }
    }
    out
}

/// Numeric helpers for shrinking, kept private to this module.
mod num_shrink {
    pub trait Int: Copy + PartialOrd + PartialEq {
        const ZERO: Self;
        /// Halfway between `self` (the origin) and `v`, rounding toward
        /// the origin.
        fn midpoint_toward(self, v: Self) -> Self;
        /// `v` moved one unit toward the origin — called on the origin
        /// with the value as argument would be ambiguous, so this is
        /// invoked as `v.step_toward(origin)`.
        fn step_toward(self, origin: Self) -> Self;
    }

    macro_rules! impl_int {
        ($($t:ty),+) => {$(
            impl Int for $t {
                const ZERO: Self = 0;
                fn midpoint_toward(self, v: Self) -> Self {
                    // self = origin. Average without overflow.
                    let o = self as i128;
                    let v = v as i128;
                    (o + (v - o) / 2) as $t
                }
                fn step_toward(self, origin: Self) -> Self {
                    // self = value.
                    if self > origin { self - 1 } else if self < origin { self + 1 } else { self }
                }
            }
        )+};
    }
    impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub trait Float: Copy + PartialOrd {
        const ZERO: Self;
        fn average(self, v: Self) -> Self;
        fn distinct_from(self, other: Self) -> bool;
    }

    macro_rules! impl_float {
        ($($t:ty),+) => {$(
            impl Float for $t {
                const ZERO: Self = 0.0;
                fn average(self, v: Self) -> Self {
                    self + (v - self) / 2.0
                }
                fn distinct_from(self, other: Self) -> bool {
                    // Relative difference big enough that shrinking
                    // makes progress and terminates.
                    (self - other).abs() > (self.abs() + other.abs() + 1.0) * 1e-5
                }
            }
        )+};
    }
    impl_float!(f32, f64);
}

/// A uniformly random boolean, shrinking `true → false`.
#[derive(Clone, Debug)]
pub struct Bools;

/// Strategy for a uniformly random boolean.
pub fn bools() -> Bools {
    Bools
}

impl Strategy for Bools {
    type Value = bool;
    fn generate(&self, rng: &mut Rng) -> bool {
        rng.gen_bool(0.5)
    }
    fn shrink(&self, v: &bool) -> Vec<bool> {
        if *v {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// A uniform choice among fixed options, shrinking toward earlier ones.
#[derive(Clone, Debug)]
pub struct Select<T> {
    options: Vec<T>,
}

/// Strategy choosing uniformly from `options` (must be non-empty).
pub fn select<T: Clone + std::fmt::Debug + PartialEq>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}

impl<T: Clone + std::fmt::Debug + PartialEq> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].clone()
    }
    fn shrink(&self, v: &T) -> Vec<T> {
        match self.options.iter().position(|o| o == v) {
            Some(i) if i > 0 => vec![self.options[0].clone(), self.options[i - 1].clone()],
            _ => Vec::new(),
        }
    }
}

/// A vector of values from an element strategy, with a length range.
#[derive(Clone, Debug)]
pub struct VecOf<S> {
    elem: S,
    len: core::ops::Range<usize>,
}

/// Strategy for vectors: `len` elements drawn from `elem`.
pub fn vec_of<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecOf<S> {
    assert!(len.start < len.end, "empty length range in vec_of");
    VecOf { elem, len }
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
    fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // Structural shrinks first: shorter vectors fail simpler.
        if v.len() > self.len.start {
            let mut half = v.clone();
            half.truncate(self.len.start.max(v.len() / 2));
            if half.len() < v.len() {
                out.push(half);
            }
            let mut minus_last = v.clone();
            minus_last.pop();
            out.push(minus_last);
        }
        // Then element-wise shrinks, one position at a time.
        for (i, e) in v.iter().enumerate() {
            for cand in self.elem.shrink(e) {
                let mut nv = v.clone();
                nv[i] = cand;
                out.push(nv);
            }
        }
        out
    }
}

/// A derived strategy mapping generated values through a function.
/// Mapped values do not shrink (the mapping is not invertible).
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

/// Strategy applying `f` to values from `inner`.
pub fn map<S, F, U>(inner: S, f: F) -> Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
    U: Clone + std::fmt::Debug,
{
    Map { inner, f }
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
    U: Clone + std::fmt::Debug,
{
    type Value = U;
    fn generate(&self, rng: &mut Rng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($S:ident . $i:tt),+ $(,)?))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$i.shrink(&v.$i) {
                        let mut nv = v.clone();
                        nv.$i = cand;
                        out.push(nv);
                    }
                )+
                out
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11)
}

enum Outcome {
    Pass,
    Fail(String),
    Reject,
}

/// Runs one case, converting panics inside the property body into
/// failures so `.unwrap()`-style assertions shrink like `prop_assert!`.
fn run_case<V, F>(f: &F, value: V) -> Outcome
where
    F: Fn(V) -> TestCaseResult,
{
    match catch_unwind(AssertUnwindSafe(|| f(value))) {
        Ok(Ok(())) => Outcome::Pass,
        Ok(Err(CaseError::Fail(msg))) => Outcome::Fail(msg),
        Ok(Err(CaseError::Reject(_))) => Outcome::Reject,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "panic (non-string payload)".to_string());
            Outcome::Fail(format!("panicked: {msg}"))
        }
    }
}

/// Executes a property: generates `cfg.cases` passing cases, shrinks
/// and reports the first failure.
///
/// Prefer the [`crate::props!`] macro, which wires names, configs, and
/// closures up for you.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) when the property fails,
/// with the seed and shrunk counterexample, or when `prop_assume!`
/// rejects more than `cfg.max_rejects` candidate cases.
pub fn run<S, F>(name: &str, cfg: &PropConfig, strategy: S, f: F)
where
    S: Strategy,
    F: Fn(S::Value) -> TestCaseResult,
{
    let mut rng = Rng::seed_from_u64(cfg.seed ^ fnv1a(name.as_bytes()));
    let mut passed = 0u32;
    let mut rejects = 0u32;
    while passed < cfg.cases {
        let value = strategy.generate(&mut rng);
        match run_case(&f, value.clone()) {
            Outcome::Pass => passed += 1,
            Outcome::Reject => {
                rejects += 1;
                if rejects > cfg.max_rejects {
                    panic!(
                        "property `{name}`: gave up after {rejects} rejected cases \
                         ({passed}/{} passed); loosen the strategy or the prop_assume!",
                        cfg.cases
                    );
                }
            }
            Outcome::Fail(first_msg) => {
                let (shrunk, msg, steps) =
                    shrink_failure(cfg, &strategy, &f, value.clone(), first_msg);
                panic!(
                    "property `{name}` failed after {passed} passing case(s)\n\
                     \x20 original counterexample: {value:?}\n\
                     \x20 shrunk  counterexample: {shrunk:?}  ({steps} shrink steps)\n\
                     \x20 error: {msg}\n\
                     \x20 reproduce with: TESTKIT_SEED={seed:#x} (base seed of this run)",
                    seed = cfg.seed,
                );
            }
        }
    }
}

/// Greedy shrink loop: repeatedly adopt the first candidate that still
/// fails, until no candidate fails or the budget runs out.
fn shrink_failure<S, F>(
    cfg: &PropConfig,
    strategy: &S,
    f: &F,
    mut value: S::Value,
    mut msg: String,
) -> (S::Value, String, u32)
where
    S: Strategy,
    F: Fn(S::Value) -> TestCaseResult,
{
    let mut steps = 0u32;
    let mut executions = 0u32;
    // Total execution cap bounds worst-case shrink time on expensive
    // properties regardless of candidate fan-out.
    let max_executions = cfg.max_shrink_steps.saturating_mul(16);
    'outer: while steps < cfg.max_shrink_steps {
        for cand in strategy.shrink(&value) {
            if executions >= max_executions {
                break 'outer;
            }
            executions += 1;
            if let Outcome::Fail(m) = run_case(f, cand.clone()) {
                value = cand;
                msg = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (value, msg, steps)
}

/// Defines property tests. See the [module docs](crate::prop) for an
/// example. Each `fn` becomes a `#[test]`; arguments take the form
/// `name in strategy`, where ranges (`0usize..10`, `-1.0f32..=1.0`),
/// [`bools()`], [`select()`] and [`vec_of()`] are strategies. An
/// optional leading `#![cases(N)]` sets the per-property case count
/// (overridable at runtime via `TESTKIT_CASES`).
#[macro_export]
macro_rules! props {
    (@cases($cases:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let cfg = $crate::prop::PropConfig::resolve($cases);
            $crate::prop::run(
                stringify!($name),
                &cfg,
                ($($strat,)+),
                |($($arg,)+)| -> $crate::prop::TestCaseResult {
                    { $body }
                    Ok(())
                },
            );
        }
    )*};
    (#![cases($cases:expr)] $($rest:tt)*) => {
        $crate::props!(@cases($cases) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::props!(@cases(64) $($rest)*);
    };
}

/// Asserts a condition inside a property body; on failure the case is
/// reported (and shrunk) instead of panicking the whole test directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::prop::CaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::prop::CaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two expressions are equal inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err($crate::prop::CaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
}

/// Discards the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::prop::CaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let strat = (0usize..100, -1.0f32..=1.0, bools());
        let gen = |seed: u64| {
            let mut rng = Rng::seed_from_u64(seed);
            (0..32)
                .map(|_| strat.generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen(9), gen(9));
        assert_ne!(gen(9), gen(10));
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let cfg = PropConfig {
            cases: 40,
            ..PropConfig::default()
        };
        let counter = std::cell::Cell::new(0u32);
        run("passing", &cfg, (0usize..10,), |(_x,)| {
            counter.set(counter.get() + 1);
            Ok(())
        });
        count += counter.get();
        assert_eq!(count, 40);
    }

    #[test]
    fn failing_property_shrinks_to_minimum() {
        // Fails for any x >= 10: must shrink to exactly 10.
        let err = catch_unwind(AssertUnwindSafe(|| {
            let cfg = PropConfig::default();
            run("shrinks", &cfg, (0usize..1000,), |(x,)| {
                if x >= 10 {
                    Err(CaseError::fail(format!("too big: {x}")))
                } else {
                    Ok(())
                }
            });
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(
            msg.contains("shrunk  counterexample: (10,)"),
            "unexpected report:\n{msg}"
        );
        assert!(msg.contains("TESTKIT_SEED="), "report must name the seed");
    }

    #[test]
    fn panicking_property_is_caught_and_shrunk() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            let cfg = PropConfig::default();
            run("panics", &cfg, (0i32..100,), |(x,)| {
                assert!(x < 5, "boom at {x}");
                Ok(())
            });
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("(5,)"), "unexpected report:\n{msg}");
        assert!(msg.contains("boom at 5"), "unexpected report:\n{msg}");
    }

    #[test]
    fn rejection_regenerates_cases() {
        let seen = std::cell::Cell::new(0u32);
        let cfg = PropConfig {
            cases: 20,
            ..PropConfig::default()
        };
        run("rejects", &cfg, (0usize..100,), |(x,)| {
            if x % 2 == 1 {
                return Err(CaseError::reject("odd"));
            }
            seen.set(seen.get() + 1);
            Ok(())
        });
        assert_eq!(seen.get(), 20);
    }

    #[test]
    fn select_shrinks_toward_first_option() {
        let s = select(vec![0.25f64, 0.5, 0.75]);
        assert_eq!(s.shrink(&0.75), vec![0.25, 0.5]);
        assert!(s.shrink(&0.25).is_empty());
    }

    #[test]
    fn int_shrink_targets_origin() {
        assert_eq!(shrink_int(50usize, 0, 99)[0], 0);
        // Range not containing zero shrinks toward its start.
        assert_eq!(shrink_int(8usize, 4, 12)[0], 4);
        let c = shrink_int(-40i32, -100, 100);
        assert_eq!(c[0], 0);
        assert!(c.contains(&-20));
    }

    #[test]
    fn float_shrink_terminates() {
        let mut v = 1000.0f32;
        let mut iters = 0;
        loop {
            let cands = shrink_float(v, -1e4, 1e4);
            match cands.last() {
                Some(&next) if next != v => v = next,
                _ => break,
            }
            iters += 1;
            assert!(iters < 200, "float shrinking failed to terminate");
        }
    }

    #[test]
    fn vec_of_generates_in_length_range() {
        let strat = vec_of(0usize..5, 1..4);
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    props! {
        #![cases(32)]

        /// The macro end-to-end: slicing then re-joining a generated
        /// vector is the identity.
        fn macro_roundtrip(v in vec_of(0u32..1000, 1..8), cut in 0usize..8) {
            let cut = cut.min(v.len());
            let (a, b) = v.split_at(cut);
            let rejoined: Vec<u32> = a.iter().chain(b.iter()).copied().collect();
            prop_assert_eq!(&rejoined, &v);
        }

        /// prop_assume works through the macro.
        fn macro_assume(x in 0usize..100) {
            prop_assume!(x % 3 == 0);
            prop_assert!(x % 3 == 0);
        }
    }
}
