//! Numeric assertion helpers shared by the equivalence suites.
//!
//! The μLayer invariants come in two strengths: *bit-exact* (channel
//! split/merge under one dtype) and *within an error envelope* (QUInt8
//! or F16 vs the F32 reference). Exact comparisons use `bit_equal` on
//! tensors; envelope comparisons use the absolute-tolerance and ULP
//! helpers here, which produce per-tensor error reports instead of a
//! bare boolean so a failing suite says *where* and *how far off*.

/// Distance in units-in-the-last-place between two finite `f32`s.
///
/// Implemented via the standard monotone mapping from IEEE-754 bit
/// patterns to a signed number line, so the distance is well defined
/// across zero. NaNs are infinitely far from everything.
pub fn ulp_diff(a: f32, b: f32) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    fn monotone(x: f32) -> i64 {
        let bits = x.to_bits() as i32;
        (if bits < 0 {
            i32::MIN.wrapping_sub(bits)
        } else {
            bits
        }) as i64
    }
    monotone(a).abs_diff(monotone(b))
}

/// Summary of the element-wise difference between two slices.
#[derive(Clone, Debug)]
pub struct ErrorReport {
    /// Largest absolute difference.
    pub max_abs: f32,
    /// Index of the largest absolute difference.
    pub max_idx: usize,
    /// Mean absolute difference.
    pub mean_abs: f64,
    /// Largest ULP distance.
    pub max_ulp: u64,
    /// Number of elements compared.
    pub count: usize,
}

impl ErrorReport {
    /// Compares two equal-length slices element-wise.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ — that is a shape bug, not a
    /// numeric one, and should fail loudly.
    pub fn compare(a: &[f32], b: &[f32]) -> ErrorReport {
        assert_eq!(
            a.len(),
            b.len(),
            "ErrorReport::compare: length mismatch ({} vs {})",
            a.len(),
            b.len()
        );
        let mut report = ErrorReport {
            max_abs: 0.0,
            max_idx: 0,
            mean_abs: 0.0,
            max_ulp: 0,
            count: a.len(),
        };
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            let d = (x - y).abs();
            if d > report.max_abs || d.is_nan() {
                report.max_abs = d;
                report.max_idx = i;
            }
            report.mean_abs += d as f64;
            report.max_ulp = report.max_ulp.max(ulp_diff(x, y));
        }
        if report.count > 0 {
            report.mean_abs /= report.count as f64;
        }
        report
    }
}

impl std::fmt::Display for ErrorReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "max |Δ| = {:.6e} at [{}], mean |Δ| = {:.6e}, max ULP = {}, n = {}",
            self.max_abs, self.max_idx, self.mean_abs, self.max_ulp, self.count
        )
    }
}

/// Asserts every element of `a` is within `tol` (absolute) of `b`.
///
/// # Panics
///
/// Panics with the full [`ErrorReport`] when the tolerance is exceeded
/// (or lengths differ).
#[track_caller]
pub fn assert_slice_close(a: &[f32], b: &[f32], tol: f32) {
    let report = ErrorReport::compare(a, b);
    assert!(
        report.max_abs <= tol && !report.max_abs.is_nan(),
        "slices differ beyond tol = {tol:e}: {report}"
    );
}

/// Asserts `a` and `b` are within `max_ulp` units-in-the-last-place.
///
/// # Panics
///
/// Panics when the ULP distance exceeds `max_ulp`.
#[track_caller]
pub fn assert_ulp_close(a: f32, b: f32, max_ulp: u64) {
    let d = ulp_diff(a, b);
    assert!(
        d <= max_ulp,
        "{a:?} vs {b:?}: {d} ULP apart (allowed {max_ulp})"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_adjacent_floats_are_one_apart() {
        let x = 1.0f32;
        let next = f32::from_bits(x.to_bits() + 1);
        assert_eq!(ulp_diff(x, next), 1);
        assert_eq!(ulp_diff(x, x), 0);
    }

    #[test]
    fn ulp_spans_zero() {
        let pos = f32::from_bits(1); // smallest positive subnormal
        let neg = -pos;
        assert_eq!(ulp_diff(pos, neg), 2);
        assert_eq!(ulp_diff(0.0, -0.0), 0);
    }

    #[test]
    fn ulp_nan_is_max() {
        assert_eq!(ulp_diff(f32::NAN, 1.0), u64::MAX);
    }

    #[test]
    fn report_finds_worst_element() {
        let a = [0.0f32, 1.0, 2.0, 3.0];
        let b = [0.0f32, 1.5, 2.0, 3.1];
        let r = ErrorReport::compare(&a, &b);
        assert_eq!(r.max_idx, 1);
        assert!((r.max_abs - 0.5).abs() < 1e-6);
        assert!((r.mean_abs - 0.15).abs() < 1e-6);
    }

    #[test]
    fn close_slices_pass() {
        assert_slice_close(&[1.0, 2.0], &[1.0 + 1e-7, 2.0 - 1e-7], 1e-6);
        assert_ulp_close(1.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "slices differ")]
    fn distant_slices_fail() {
        assert_slice_close(&[1.0], &[2.0], 0.5);
    }

    #[test]
    fn empty_slices_compare_clean() {
        let r = ErrorReport::compare(&[], &[]);
        assert_eq!(r.count, 0);
        assert_eq!(r.max_abs, 0.0);
    }
}
