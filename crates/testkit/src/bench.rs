//! A criterion-shaped micro-benchmark harness.
//!
//! Implements the slice of the `criterion` API the `ubench` benches
//! use — groups, `BenchmarkId`, throughput annotation, `b.iter(..)` —
//! on plain `std::time::Instant`, so `cargo bench --features
//! bench-deps` works with zero external crates. Statistics are
//! intentionally simple (median over fixed-size samples after a short
//! warm-up); for paper-grade numbers the simulated SoC provides modeled
//! time, and these host-side benches only guard against gross
//! functional-path regressions.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 50,
            throughput: None,
        }
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical elements (e.g. MACs) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A two-part benchmark name, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (min 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(10);
        self
    }

    /// Annotates per-iteration throughput for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark with an input, mirroring criterion's
    /// `bench_with_input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        self.report(&id.label, &b);
    }

    /// Runs one benchmark without an input.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        self.report(&name.to_string(), &b);
    }

    /// Finishes the group (provided for criterion API parity).
    pub fn finish(self) {}

    fn report(&self, label: &str, b: &Bencher) {
        let Some(median) = b.median() else {
            println!("bench {}/{label}: no samples", self.name);
            return;
        };
        let per_iter = median.as_secs_f64();
        let mut line = format!(
            "bench {}/{label}: {} /iter (median of {} samples)",
            self.name,
            fmt_duration(per_iter),
            b.samples.len(),
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if per_iter > 0.0 {
                line.push_str(&format!(", {:.3e} {unit}/s", count as f64 / per_iter));
            }
        }
        println!("{line}");
    }
}

fn fmt_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Times closures, mirroring `criterion::Bencher`.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Bencher {
        Bencher {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Times `f`, storing one duration per sample. Results are passed
    /// through [`black_box`] so the computation is not optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: fill caches/branch predictors and estimate cost.
        let warmup_start = Instant::now();
        black_box(f());
        let est = warmup_start.elapsed();
        let warmups = if est > Duration::from_millis(50) {
            0
        } else {
            2
        };
        for _ in 0..warmups {
            black_box(f());
        }
        // Batch very fast closures so each sample is measurable.
        let batch: u32 = if est < Duration::from_micros(5) {
            100
        } else {
            1
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }

    fn median(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        Some(sorted[sorted.len() / 2])
    }
}

/// Mirrors `criterion::criterion_group!`: a function running each
/// benchmark function against one [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::bench::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: the bench binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(10);
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert_eq!(b.samples.len(), 10);
        assert!(b.median().is_some());
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(10).throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("id", 7), &3u32, |b, &x| b.iter(|| x * 2));
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(2.0), "2.000 s");
        assert_eq!(fmt_duration(2e-3), "2.000 ms");
        assert_eq!(fmt_duration(2e-6), "2.000 µs");
        assert_eq!(fmt_duration(2e-9), "2.0 ns");
    }
}
