//! Golden-vector load/store/check for kernel regression tests.
//!
//! A golden file pins the exact output of a kernel on a fixed input so
//! refactors cannot silently change numerics. Values are stored as
//! `f32` bit patterns (hex) with a human-readable decimal alongside, so
//! `Exact` comparisons are bit-for-bit reproducible while diffs stay
//! reviewable.
//!
//! Workflow:
//!
//! 1. Write the test calling [`check_f32`] with a path under the
//!    crate's `tests/golden/`.
//! 2. Run once with `TESTKIT_BLESS=1` to create (or re-create) the
//!    file, then commit it.
//! 3. From then on the test compares against the committed bits; a
//!    mismatch prints a full error report and the blessing command.

use std::fmt::Write as _;
use std::path::Path;

use crate::assert::ErrorReport;

/// How strictly [`check_f32`] compares against the stored vector.
#[derive(Clone, Copy, Debug)]
pub enum GoldenMode {
    /// Bit-for-bit equality — right for integer-math (QUInt8) outputs.
    Exact,
    /// Absolute tolerance — right for float outputs that may legally
    /// differ across optimization levels.
    AbsTol(f32),
}

/// Checks `actual` against the golden vector at `path`.
///
/// With `TESTKIT_BLESS` set in the environment, rewrites the file from
/// `actual` instead and passes. `path` should be absolute; build it
/// with `concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/…")` so it
/// works from any working directory.
///
/// # Panics
///
/// Panics when the file is missing (with the blessing instructions),
/// malformed, or when the comparison fails.
#[track_caller]
pub fn check_f32(path: &str, actual: &[f32], mode: GoldenMode) {
    if std::env::var_os("TESTKIT_BLESS").is_some() {
        store_f32(path, actual);
        eprintln!("testkit: blessed {} ({} values)", path, actual.len());
        return;
    }
    let expected = match load_f32(path) {
        Some(v) => v,
        None => {
            panic!("golden file missing: {path}\n  generate it with: TESTKIT_BLESS=1 cargo test -q")
        }
    };
    assert_eq!(
        expected.len(),
        actual.len(),
        "golden {path}: length mismatch (expected {}, got {}); \
         re-bless with TESTKIT_BLESS=1 if the shape change is intended",
        expected.len(),
        actual.len()
    );
    let ok = match mode {
        GoldenMode::Exact => expected
            .iter()
            .zip(actual)
            .all(|(e, a)| e.to_bits() == a.to_bits()),
        GoldenMode::AbsTol(tol) => expected
            .iter()
            .zip(actual)
            .all(|(e, a)| (e - a).abs() <= tol),
    };
    if !ok {
        let report = ErrorReport::compare(&expected, actual);
        panic!(
            "golden mismatch: {path} ({mode:?})\n  {report}\n  \
             if the numeric change is intended, re-bless with TESTKIT_BLESS=1 and commit"
        );
    }
}

/// Reads a golden vector; `None` when the file does not exist.
///
/// # Panics
///
/// Panics on a malformed file.
pub fn load_f32(path: &str) -> Option<Vec<f32>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let token = line.split_whitespace().next().unwrap_or("");
        let bits = u32::from_str_radix(token, 16).unwrap_or_else(|_| {
            panic!(
                "golden {path}:{}: bad f32 bit pattern {token:?}",
                lineno + 1
            )
        });
        out.push(f32::from_bits(bits));
    }
    Some(out)
}

/// Writes a golden vector (creating parent directories as needed).
///
/// # Panics
///
/// Panics on IO errors — golden paths live inside the repo, so any
/// failure is a test-environment bug worth surfacing.
pub fn store_f32(path: &str, values: &[f32]) {
    let mut text = String::new();
    let _ = writeln!(
        text,
        "# testkit golden v1 — {} f32 values as IEEE-754 bit patterns (hex), decimal alongside",
        values.len()
    );
    for v in values {
        let _ = writeln!(text, "{:08x} # {v:?}", v.to_bits());
    }
    if let Some(parent) = Path::new(path).parent() {
        std::fs::create_dir_all(parent).expect("create golden dir");
    }
    std::fs::write(path, text).unwrap_or_else(|e| panic!("write golden {path}: {e}"));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> String {
        let dir = std::env::temp_dir().join("testkit-golden-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).display().to_string()
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let path = tmp_path("roundtrip.txt");
        let values = [0.0f32, -0.0, 1.5, -3.25e-8, f32::MAX, 1.0 / 3.0];
        store_f32(&path, &values);
        let back = load_f32(&path).unwrap();
        assert_eq!(back.len(), values.len());
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        check_f32(&path, &values, GoldenMode::Exact);
    }

    #[test]
    fn missing_file_is_none() {
        assert!(load_f32(&tmp_path("does-not-exist.txt")).is_none());
    }

    #[test]
    #[should_panic(expected = "golden mismatch")]
    fn mismatch_panics_with_report() {
        let path = tmp_path("mismatch.txt");
        store_f32(&path, &[1.0, 2.0]);
        check_f32(&path, &[1.0, 2.5], GoldenMode::Exact);
    }

    #[test]
    fn tolerance_mode_allows_slack() {
        let path = tmp_path("tol.txt");
        store_f32(&path, &[1.0, 2.0]);
        check_f32(&path, &[1.0 + 1e-4, 2.0 - 1e-4], GoldenMode::AbsTol(1e-3));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let path = tmp_path("comments.txt");
        std::fs::write(&path, "# header\n\n3f800000 # 1.0\n\n40000000 # 2.0\n").unwrap();
        assert_eq!(load_f32(&path).unwrap(), vec![1.0, 2.0]);
    }
}
