//! Seedable, platform-stable pseudo-random number generation.
//!
//! Two documented generators replace `rand`:
//!
//! - [`SplitMix64`] (Steele, Lea & Flood, OOPSLA '14) — a 64-bit
//!   mixer used for seed expansion and cheap independent streams.
//! - [`Xoshiro256StarStar`] (Blackman & Vigna, 2018) — the workhorse
//!   generator behind [`Rng`], with 256 bits of state and excellent
//!   statistical quality for non-cryptographic use.
//!
//! Unlike `rand::rngs::StdRng` — whose algorithm is documented as
//! unstable across releases — these sequences are frozen: a seed
//! committed in a test or a golden vector reproduces the same stream
//! forever.

/// SplitMix64: a tiny, high-quality 64-bit mixer.
///
/// Primarily used to expand a 64-bit seed into [`Xoshiro256StarStar`]
/// state, mix test-name hashes into base seeds, and fork independent
/// streams.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator starting from `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256**: the general-purpose generator.
///
/// 256 bits of state, period `2^256 - 1`. Seeded from a single `u64`
/// through [`SplitMix64`], per the authors' recommendation.
#[derive(Clone, Debug)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Expands `seed` into a full 256-bit state.
    pub fn seed_from_u64(seed: u64) -> Xoshiro256StarStar {
        let mut mix = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for v in &mut s {
            *v = mix.next_u64();
        }
        // The all-zero state is the one fixed point of the transition
        // function; SplitMix64 cannot produce four zero outputs in a
        // row, but guard anyway so `from_state` misuse can't wedge.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256StarStar { s }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The toolkit's standard RNG: [`Xoshiro256StarStar`] plus the sampling
/// surface the workspace needs (`gen_range`, fills, shuffling, forks).
///
/// ```
/// use testkit::Rng;
/// let mut rng = Rng::seed_from_u64(42);
/// let x: f32 = rng.gen_range(-1.0f32..=1.0);
/// assert!((-1.0..=1.0).contains(&x));
/// let i = rng.gen_range(0usize..10);
/// assert!(i < 10);
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    inner: Xoshiro256StarStar,
}

impl Rng {
    /// Deterministic generator for `seed`.
    pub fn seed_from_u64(seed: u64) -> Rng {
        Rng {
            inner: Xoshiro256StarStar::seed_from_u64(seed),
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, 1]` (both endpoints reachable).
    pub fn unit_f64_inclusive(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64
    }

    /// Uniform in `[0, span)` without modulo bias (Lemire's method,
    /// truncated: a single widening multiply).
    fn bounded_u64(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform sample from `range` (half-open `a..b` or inclusive
    /// `a..=b`, any primitive integer or float type).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Fills `out` with uniform samples from `[lo, hi]`.
    pub fn fill_f32(&mut self, out: &mut [f32], lo: f32, hi: f32) {
        for v in out {
            *v = self.gen_range(lo..=hi);
        }
    }

    /// Uniform random permutation of `xs` (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// An independent generator split off from this one.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

/// A range that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),+) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded_u64(span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                match ((hi - lo) as u64).checked_add(1) {
                    Some(span) => lo + rng.bounded_u64(span) as $t,
                    // Full u64-sized domain: every output is valid.
                    None => rng.next_u64() as $t,
                }
            }
        }
    )+};
}

macro_rules! impl_sample_signed {
    ($($t:ty),+) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                match ((hi as i128 - lo as i128) as u64).checked_add(1) {
                    Some(span) => (lo as i128 + rng.bounded_u64(span) as i128) as $t,
                    None => rng.next_u64() as $t,
                }
            }
        }
    )+};
}

macro_rules! impl_sample_float {
    ($($t:ty),+) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = rng.unit_f64() as $t;
                let v = self.start + (self.end - self.start) * u;
                // Floating-point rounding can land exactly on `end`;
                // fold that measure-zero case back onto the start.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let u = rng.unit_f64_inclusive() as $t;
                (lo + (hi - lo) * u).clamp(lo, hi)
            }
        }
    )+};
}

impl_sample_unsigned!(u8, u16, u32, u64, usize);
impl_sample_signed!(i8, i16, i32, i64, isize);
impl_sample_float!(f32, f64);

/// FNV-1a hash of a byte string; used to derive per-test seeds from
/// test names so every property gets its own stream.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_vector() {
        // Reference sequence for seed 0 from the SplitMix64 paper's
        // public-domain C implementation.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(g.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        let mut c = Rng::seed_from_u64(8);
        let av: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let cv: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(av, bv);
        assert_ne!(av, cv);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..2000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&b));
            let c = rng.gen_range(-0.25f32..=0.25);
            assert!((-0.25..=0.25).contains(&c));
            let d = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn inclusive_integer_endpoints_reachable() {
        let mut rng = Rng::seed_from_u64(2);
        let mut saw = [false; 3];
        for _ in 0..500 {
            saw[rng.gen_range(0usize..=2)] = true;
        }
        assert_eq!(saw, [true; 3]);
    }

    #[test]
    fn unit_floats_well_distributed() {
        let mut rng = Rng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.unit_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(4);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn forks_are_independent() {
        let mut rng = Rng::seed_from_u64(5);
        let mut f1 = rng.fork();
        let mut f2 = rng.fork();
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn fnv1a_distinct_names() {
        assert_ne!(fnv1a(b"conv_split"), fnv1a(b"pool_split"));
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
    }

    #[test]
    fn full_u16_inclusive_range_works() {
        let mut rng = Rng::seed_from_u64(6);
        for _ in 0..100 {
            let _ = rng.gen_range(0u16..=u16::MAX);
        }
    }
}
