//! Hermetic verification toolkit for the μLayer reproduction.
//!
//! The workspace's correctness story (DESIGN.md §6) rests on numerical
//! invariants — channel-wise split/merge must be lossless under QUInt8
//! (PAPER §3.2), mixed QUInt8/F16 execution must stay inside the linear
//! quantization error envelope (§4) — so the test suite must run
//! *everywhere*, including offline and sandboxed environments with no
//! cargo registry. This crate replaces the only three external
//! dependencies the workspace ever had (`rand`, `proptest`, `criterion`)
//! with small, documented, in-repo equivalents:
//!
//! - [`rng`] — seedable [`SplitMix64`] and [`Xoshiro256StarStar`] PRNGs
//!   with the `gen_range`/fill/shuffle surface the library crates need
//!   for synthetic weights and datasets. Deterministic in the seed,
//!   stable across platforms and Rust versions (unlike `StdRng`, whose
//!   algorithm is explicitly unspecified).
//! - [`prop`] — a minimal property-testing runner: range/choice/vector
//!   strategies, deterministic case generation, counterexample
//!   shrinking, and `TESTKIT_SEED`/`TESTKIT_CASES` environment
//!   overrides.
//! - [`assert`] — ULP and absolute-tolerance comparison plus per-tensor
//!   max-error reports shared by the equivalence suites.
//! - [`golden`] — load/store/check for committed golden vectors
//!   (`TESTKIT_BLESS=1` regenerates them).
//! - [`bench`] — a criterion-shaped micro-benchmark harness for the
//!   `--features bench-deps` benches.
//!
//! # Environment variables
//!
//! | Variable         | Effect                                          |
//! |------------------|-------------------------------------------------|
//! | `TESTKIT_SEED`   | Overrides every property test's base seed (decimal or `0x…` hex) |
//! | `TESTKIT_CASES`  | Overrides the number of cases per property      |
//! | `TESTKIT_BLESS`  | When set, golden-vector checks rewrite their files instead of comparing |
//!
//! Two runs with the same `TESTKIT_SEED` generate identical cases; a
//! failing property prints the seed and the shrunk counterexample needed
//! to reproduce it.

pub mod assert;
pub mod bench;
pub mod golden;
pub mod prop;
pub mod rng;

pub use assert::{assert_slice_close, assert_ulp_close, ulp_diff, ErrorReport};
pub use prop::{bools, select, vec_of, PropConfig, TestCaseResult};
pub use rng::{Rng, SplitMix64, Xoshiro256StarStar};
