//! Weight storage, synthetic weight generation, and quantization
//! calibration.
//!
//! The paper evaluates pre-trained ImageNet networks; their checkpoints
//! are not reproducible here, so weights are generated synthetically
//! (He-uniform initialization, seeded) — layer shapes and FLOP counts,
//! which drive all latency/energy results, are unaffected.
//!
//! [`Calibration`] is the "pre-trained quantization information" of §4.2:
//! per-node activation ranges learned by observing a forward pass, plus
//! per-layer weight ranges. μLayer assumes the 8-bit linear quantization
//! is already applied to the network (§6); calibration is how this
//! reproduction applies it.

use testkit::Rng;
use utensor::{QuantParams, Tensor, TensorError};

use crate::graph::{Graph, NodeId};

/// The weights of one layer (f32 master copies).
#[derive(Clone, Debug, Default)]
pub struct LayerWeights {
    /// Filter / weight tensor (conv: OIHW, depthwise: `[c,1,k,k]`,
    /// FC: `[out,in]`).
    pub filter: Option<Tensor>,
    /// Bias vector, one entry per output channel / neuron.
    pub bias: Option<Vec<f32>>,
}

/// All weights of a graph, indexed by node.
#[derive(Clone, Debug)]
pub struct Weights {
    per_node: Vec<LayerWeights>,
}

impl Weights {
    /// Generates He-uniform random weights for every weighted layer.
    ///
    /// Deterministic in `seed`.
    pub fn random(graph: &Graph, seed: u64) -> Result<Weights, TensorError> {
        let shapes = graph.infer_shapes()?;
        let mut rng = Rng::seed_from_u64(seed);
        let mut per_node = Vec::with_capacity(graph.len());
        for (i, node) in graph.nodes().iter().enumerate() {
            let in_shape = graph.node_input_shape(NodeId(i), &shapes);
            if let Some(w_shape) = node.kind.weight_shape(in_shape) {
                let fan_in = (w_shape.numel() / w_shape.dim(0).max(1)).max(1);
                let bound = (6.0f32 / fan_in as f32).sqrt();
                let data: Vec<f32> = (0..w_shape.numel())
                    .map(|_| rng.gen_range(-bound..=bound))
                    .collect();
                let bias: Vec<f32> = (0..node.kind.bias_count(in_shape))
                    .map(|_| rng.gen_range(-0.05f32..=0.05))
                    .collect();
                per_node.push(LayerWeights {
                    filter: Some(Tensor::from_f32(w_shape, data)?),
                    bias: Some(bias),
                });
            } else {
                per_node.push(LayerWeights::default());
            }
        }
        Ok(Weights { per_node })
    }

    /// The weights of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the graph these weights were
    /// built for.
    pub fn of(&self, id: NodeId) -> &LayerWeights {
        &self.per_node[id.0]
    }

    /// Mutable access, for training (quantlab) and tests.
    pub fn of_mut(&mut self, id: NodeId) -> &mut LayerWeights {
        &mut self.per_node[id.0]
    }

    /// Number of node entries.
    pub fn len(&self) -> usize {
        self.per_node.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.per_node.is_empty()
    }

    /// Assembles weights from per-node entries (rewrite passes and
    /// tests; entry `i` belongs to node `i`).
    pub fn from_per_node(per_node: Vec<LayerWeights>) -> Weights {
        Weights { per_node }
    }

    /// Decomposes into per-node entries for a rewrite pass.
    pub fn into_per_node(self) -> Vec<LayerWeights> {
        self.per_node
    }

    /// Total bytes of all f32 master weights.
    pub fn total_bytes_f32(&self) -> usize {
        self.per_node
            .iter()
            .map(|w| {
                w.filter.as_ref().map_or(0, Tensor::size_bytes)
                    + w.bias.as_ref().map_or(0, |b| b.len() * 4)
            })
            .sum()
    }
}

/// Per-graph quantization information: the §4.2 "pre-trained quantization
/// information".
#[derive(Clone, Debug)]
pub struct Calibration {
    /// Quantization parameters of the graph input.
    pub input_params: QuantParams,
    /// Output activation parameters per node.
    pub act_params: Vec<QuantParams>,
    /// Filter parameters per weighted node (`None` for weight-free
    /// layers).
    pub weight_params: Vec<Option<QuantParams>>,
}

impl Calibration {
    /// Builds calibration from observed per-node output ranges.
    pub fn from_ranges(
        graph: &Graph,
        weights: &Weights,
        input_range: (f32, f32),
        act_ranges: &[(f32, f32)],
    ) -> Result<Calibration, TensorError> {
        if act_ranges.len() != graph.len() {
            return Err(TensorError::BadConcat(format!(
                "calibration needs {} ranges, got {}",
                graph.len(),
                act_ranges.len()
            )));
        }
        let input_params = QuantParams::from_range(input_range.0, input_range.1)?;
        let act_params = act_ranges
            .iter()
            .map(|&(lo, hi)| QuantParams::from_range(lo, hi))
            .collect::<Result<Vec<_>, _>>()?;
        let weight_params = (0..graph.len())
            .map(|i| {
                weights
                    .of(NodeId(i))
                    .filter
                    .as_ref()
                    .map(|f| QuantParams::from_data(f.as_f32().expect("f32 master weights")))
                    .transpose()
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Calibration {
            input_params,
            act_params,
            weight_params,
        })
    }

    /// A calibration with uniform synthetic ranges, for timing-only runs
    /// where numerics are skipped but the executor still needs
    /// quantization metadata.
    pub fn synthetic(graph: &Graph, weights: &Weights) -> Calibration {
        let range = (-6.0f32, 6.0f32);
        Calibration::from_ranges(graph, weights, range, &vec![range; graph.len()])
            .expect("synthetic ranges are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{LayerKind, PoolFunc};
    use utensor::Shape;

    fn graph() -> Graph {
        let mut g = Graph::new("t", Shape::nchw(1, 3, 8, 8));
        let c = g.add_input_layer(
            "conv",
            LayerKind::Conv {
                oc: 4,
                k: 3,
                stride: 1,
                pad: 1,
                relu: true,
            },
        );
        let p = g.add(
            "pool",
            LayerKind::Pool {
                func: PoolFunc::Max,
                k: 2,
                stride: 2,
                pad: 0,
            },
            c,
        );
        g.add(
            "fc",
            LayerKind::FullyConnected {
                out: 5,
                relu: false,
            },
            p,
        );
        g
    }

    #[test]
    fn random_weights_have_right_shapes() {
        let g = graph();
        let w = Weights::random(&g, 7).unwrap();
        assert_eq!(w.len(), 3);
        let conv_w = w.of(NodeId(0));
        assert_eq!(
            conv_w.filter.as_ref().unwrap().shape().dims(),
            &[4, 3, 3, 3]
        );
        assert_eq!(conv_w.bias.as_ref().unwrap().len(), 4);
        assert!(w.of(NodeId(1)).filter.is_none());
        let fc_w = w.of(NodeId(2));
        assert_eq!(fc_w.filter.as_ref().unwrap().shape().dims(), &[5, 64]);
    }

    #[test]
    fn weights_deterministic_in_seed() {
        let g = graph();
        let a = Weights::random(&g, 42).unwrap();
        let b = Weights::random(&g, 42).unwrap();
        let c = Weights::random(&g, 43).unwrap();
        assert!(a
            .of(NodeId(0))
            .filter
            .as_ref()
            .unwrap()
            .bit_equal(b.of(NodeId(0)).filter.as_ref().unwrap()));
        assert!(!a
            .of(NodeId(0))
            .filter
            .as_ref()
            .unwrap()
            .bit_equal(c.of(NodeId(0)).filter.as_ref().unwrap()));
    }

    #[test]
    fn he_bound_respected() {
        let g = graph();
        let w = Weights::random(&g, 1).unwrap();
        let f = w.of(NodeId(0)).filter.as_ref().unwrap();
        let bound = (6.0f32 / 27.0).sqrt();
        assert!(f.as_f32().unwrap().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn calibration_lengths_checked() {
        let g = graph();
        let w = Weights::random(&g, 1).unwrap();
        assert!(Calibration::from_ranges(&g, &w, (0.0, 1.0), &[(0.0, 1.0)]).is_err());
        let c = Calibration::synthetic(&g, &w);
        assert_eq!(c.act_params.len(), 3);
        assert!(c.weight_params[0].is_some());
        assert!(c.weight_params[1].is_none());
    }

    #[test]
    fn total_bytes_counts_filters_and_bias() {
        let g = graph();
        let w = Weights::random(&g, 1).unwrap();
        // conv 108 + bias 4 + fc 320 + bias 5 elements, 4 bytes each.
        assert_eq!(w.total_bytes_f32(), (108 + 4 + 320 + 5) * 4);
    }
}
