//! MobileNet v1 (Howard et al. 2017), width multiplier 1.0.
//!
//! The paper's representative of small-scale, computation-minimizing NNs:
//! depthwise-separable convolutions throughout.

use utensor::Shape;

use crate::graph::{Graph, NodeId};
use crate::layer::LayerKind;
use crate::models::conv;

/// Appends one depthwise-separable block (dw 3x3 + pw 1x1, both ReLU).
fn ds_block(g: &mut Graph, idx: usize, input: NodeId, out_ch: usize, stride: usize) -> NodeId {
    let dw = g.add(
        format!("conv{idx}/dw"),
        LayerKind::DepthwiseConv {
            k: 3,
            stride,
            pad: 1,
            relu: true,
        },
        input,
    );
    conv(g, &format!("conv{idx}/pw"), Some(dw), out_ch, 1, 1, 0)
}

/// Builds MobileNet v1 (1.0, 224) for RGB ImageNet classification.
pub fn mobilenet_v1() -> Graph {
    let mut g = Graph::new("MobileNet v1", Shape::nchw(1, 3, 224, 224));
    let mut cur = conv(&mut g, "conv1", None, 32, 3, 2, 1); // 32 x 112
                                                            // (output channels, stride) per depthwise-separable block.
    let blocks: [(usize, usize); 13] = [
        (64, 1),
        (128, 2), // -> 56
        (128, 1),
        (256, 2), // -> 28
        (256, 1),
        (512, 2), // -> 14
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2), // -> 7
        (1024, 1),
    ];
    for (i, (ch, stride)) in blocks.iter().enumerate() {
        cur = ds_block(&mut g, i + 2, cur, *ch, *stride);
    }
    let gap = g.add("pool/gap", LayerKind::GlobalAvgPool, cur);
    let fc = g.add(
        "fc",
        LayerKind::FullyConnected {
            out: 1000,
            relu: false,
        },
        gap,
    );
    g.add("softmax", LayerKind::Softmax, fc);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_shapes() {
        let g = mobilenet_v1();
        let shapes = g.infer_shapes().unwrap();
        let by_name = |name: &str| {
            let idx = g.nodes().iter().position(|n| n.name == name).unwrap();
            shapes[idx].dims().to_vec()
        };
        assert_eq!(by_name("conv1"), vec![1, 32, 112, 112]);
        assert_eq!(by_name("conv3/pw"), vec![1, 128, 56, 56]);
        assert_eq!(by_name("conv7/pw"), vec![1, 512, 14, 14]);
        assert_eq!(by_name("conv14/pw"), vec![1, 1024, 7, 7]);
        assert_eq!(by_name("pool/gap"), vec![1, 1024, 1, 1]);
    }

    #[test]
    fn depthwise_macs_are_small_fraction() {
        // The design point of MobileNet: pointwise convs dominate compute.
        let g = mobilenet_v1();
        let by_op = crate::analysis::macs_by_op(&g);
        assert!(by_op["conv"] > 8 * by_op["dwconv"]);
    }

    #[test]
    fn params_about_4_2m() {
        let total = mobilenet_v1().total_params().unwrap();
        assert!((3_800_000..4_600_000).contains(&total), "params = {total}");
    }
}
