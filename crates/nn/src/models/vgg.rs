//! VGG-16 (Simonyan & Zisserman 2015), configuration D.

use utensor::Shape;

use crate::graph::Graph;
use crate::layer::LayerKind;
use crate::models::{conv, maxpool};

/// Builds VGG-16 for 224×224 RGB ImageNet classification.
pub fn vgg16() -> Graph {
    let mut g = Graph::new("VGG-16", Shape::nchw(1, 3, 224, 224));
    let blocks: [(usize, usize); 5] = [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];
    let mut prev = None;
    for (bi, (ch, reps)) in blocks.iter().enumerate() {
        for r in 0..*reps {
            let name = format!("conv{}_{}", bi + 1, r + 1);
            let id = conv(&mut g, &name, prev, *ch, 3, 1, 1);
            prev = Some(id);
        }
        let p = maxpool(&mut g, &format!("pool{}", bi + 1), prev.unwrap(), 2, 2, 0);
        prev = Some(p);
    }
    let f6 = g.add(
        "fc6",
        LayerKind::FullyConnected {
            out: 4096,
            relu: true,
        },
        prev.unwrap(),
    );
    let f7 = g.add(
        "fc7",
        LayerKind::FullyConnected {
            out: 4096,
            relu: true,
        },
        f6,
    );
    let f8 = g.add(
        "fc8",
        LayerKind::FullyConnected {
            out: 1000,
            relu: false,
        },
        f7,
    );
    g.add("softmax", LayerKind::Softmax, f8);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_structure() {
        let g = vgg16();
        // 13 convs + 5 pools + 3 fcs + softmax.
        assert_eq!(g.len(), 22);
        let shapes = g.infer_shapes().unwrap();
        let pool5 = g.nodes().iter().position(|n| n.name == "pool5").unwrap();
        assert_eq!(shapes[pool5].dims(), &[1, 512, 7, 7]);
    }

    #[test]
    fn canonical_params_138m() {
        let total = vgg16().total_params().unwrap();
        assert!(
            (138_000_000..139_000_000).contains(&total),
            "VGG-16 params = {total}"
        );
    }

    #[test]
    fn conv_macs_dominate() {
        let g = vgg16();
        let by_op = crate::analysis::macs_by_op(&g);
        assert!(by_op["conv"] > 50 * by_op["fc"]);
    }
}
