//! Miniature variants of the zoo architectures.
//!
//! Functional (numeric) execution of the full-size networks is too slow
//! for a test suite — VGG-16 alone is ~15 GMACs of scalar arithmetic —
//! but the *structural* features that stress the runtime (Inception
//! four-way branches, Fire modules, depthwise separability, LRN, deep
//! FC heads) are all preserved by a faithful miniature: same operator
//! sequence and connectivity, shrunken channel counts and input
//! resolution. The integration tests run the complete μLayer pipeline
//! (partition → branch-distribute → schedule → numerically evaluate) on
//! every miniature and check bit-equality against reference execution.

use utensor::Shape;

use crate::graph::Graph;
use crate::layer::{LayerKind, PoolFunc};
use crate::models::googlenet::inception;
use crate::models::squeezenet::fire;
use crate::models::{conv, maxpool, ModelId};

/// Builds the miniature variant of a zoo architecture.
///
/// Miniatures keep every operator kind and the exact module topology of
/// the original; channel counts are divided by ~8 and the input is
/// 32×32 (AlexNet/LeNet keep their native aspect treatment).
pub fn miniature(id: ModelId) -> Graph {
    match id {
        ModelId::GoogLeNet => mini_googlenet(),
        ModelId::SqueezeNet => mini_squeezenet(),
        ModelId::Vgg16 => mini_vgg(),
        ModelId::AlexNet => mini_alexnet(),
        ModelId::MobileNet => mini_mobilenet(),
        ModelId::ResNet18 => crate::models::resnet::mini_resnet(),
        ModelId::LeNet => crate::models::lenet5(),
    }
}

/// GoogLeNet at 1/8 width with two Inception modules.
fn mini_googlenet() -> Graph {
    let mut g = Graph::new("GoogLeNet-mini", Shape::nchw(1, 3, 32, 32));
    let c1 = conv(&mut g, "conv1", None, 8, 7, 2, 3); // 8 x 16
    let p1 = maxpool(&mut g, "pool1", c1, 3, 2, 1); // 8 x 8
    let c2 = conv(&mut g, "conv2", Some(p1), 24, 3, 1, 1);
    let i3a = inception(&mut g, "inception_3a", c2, (8, 12, 16, 2, 4, 4));
    let i3b = inception(&mut g, "inception_3b", i3a, (16, 16, 24, 4, 12, 8));
    let gap = g.add("gap", LayerKind::GlobalAvgPool, i3b);
    let fc = g.add(
        "fc",
        LayerKind::FullyConnected {
            out: 10,
            relu: false,
        },
        gap,
    );
    g.add("softmax", LayerKind::Softmax, fc);
    g
}

/// SqueezeNet at 1/8 width with three Fire modules.
fn mini_squeezenet() -> Graph {
    let mut g = Graph::new("SqueezeNet-mini", Shape::nchw(1, 3, 32, 32));
    let c1 = conv(&mut g, "conv1", None, 8, 3, 2, 0); // 8 x 15
    let p1 = maxpool(&mut g, "pool1", c1, 3, 2, 0); // 8 x 7
    let f2 = fire(&mut g, "fire2", p1, 2, 8, 8);
    let f3 = fire(&mut g, "fire3", f2, 2, 8, 8);
    let f4 = fire(&mut g, "fire4", f3, 4, 16, 16);
    let c10 = conv(&mut g, "conv10", Some(f4), 10, 1, 1, 0);
    let gap = g.add("gap", LayerKind::GlobalAvgPool, c10);
    g.add("softmax", LayerKind::Softmax, gap);
    g
}

/// VGG at 1/8 width with two blocks and the three-FC head.
fn mini_vgg() -> Graph {
    let mut g = Graph::new("VGG-mini", Shape::nchw(1, 3, 32, 32));
    let c11 = conv(&mut g, "conv1_1", None, 8, 3, 1, 1);
    let c12 = conv(&mut g, "conv1_2", Some(c11), 8, 3, 1, 1);
    let p1 = g.add(
        "pool1",
        LayerKind::Pool {
            func: PoolFunc::Max,
            k: 2,
            stride: 2,
            pad: 0,
        },
        c12,
    );
    let c21 = conv(&mut g, "conv2_1", Some(p1), 16, 3, 1, 1);
    let c22 = conv(&mut g, "conv2_2", Some(c21), 16, 3, 1, 1);
    let p2 = g.add(
        "pool2",
        LayerKind::Pool {
            func: PoolFunc::Max,
            k: 2,
            stride: 2,
            pad: 0,
        },
        c22,
    );
    let f6 = g.add(
        "fc6",
        LayerKind::FullyConnected {
            out: 64,
            relu: true,
        },
        p2,
    );
    let f7 = g.add(
        "fc7",
        LayerKind::FullyConnected {
            out: 32,
            relu: true,
        },
        f6,
    );
    let f8 = g.add(
        "fc8",
        LayerKind::FullyConnected {
            out: 10,
            relu: false,
        },
        f7,
    );
    g.add("softmax", LayerKind::Softmax, f8);
    g
}

/// AlexNet at 1/8 width, keeping the LRN layers.
fn mini_alexnet() -> Graph {
    let mut g = Graph::new("AlexNet-mini", Shape::nchw(1, 3, 35, 35));
    let lrn = LayerKind::Lrn {
        n: 5,
        alpha: 1e-4,
        beta: 0.75,
        k: 1.0,
    };
    let c1 = conv(&mut g, "conv1", None, 12, 5, 2, 0); // 12 x 16
    let n1 = g.add("norm1", lrn.clone(), c1);
    let p1 = maxpool(&mut g, "pool1", n1, 3, 2, 0); // 12 x 7
    let c2 = conv(&mut g, "conv2", Some(p1), 32, 3, 1, 1);
    let n2 = g.add("norm2", lrn, c2);
    let p2 = maxpool(&mut g, "pool2", n2, 3, 2, 0); // 32 x 3
    let c3 = conv(&mut g, "conv3", Some(p2), 48, 3, 1, 1);
    let f6 = g.add(
        "fc6",
        LayerKind::FullyConnected {
            out: 64,
            relu: true,
        },
        c3,
    );
    let f7 = g.add(
        "fc7",
        LayerKind::FullyConnected {
            out: 10,
            relu: false,
        },
        f6,
    );
    g.add("softmax", LayerKind::Softmax, f7);
    g
}

/// MobileNet at 1/8 width with four depthwise-separable blocks.
fn mini_mobilenet() -> Graph {
    let mut g = Graph::new("MobileNet-mini", Shape::nchw(1, 3, 32, 32));
    let mut cur = conv(&mut g, "conv1", None, 4, 3, 2, 1); // 4 x 16
    for (i, (ch, stride)) in [(8usize, 1usize), (16, 2), (16, 1), (32, 2)]
        .iter()
        .enumerate()
    {
        let dw = g.add(
            format!("conv{}/dw", i + 2),
            LayerKind::DepthwiseConv {
                k: 3,
                stride: *stride,
                pad: 1,
                relu: true,
            },
            cur,
        );
        cur = conv(&mut g, &format!("conv{}/pw", i + 2), Some(dw), *ch, 1, 1, 0);
    }
    let gap = g.add("gap", LayerKind::GlobalAvgPool, cur);
    let fc = g.add(
        "fc",
        LayerKind::FullyConnected {
            out: 10,
            relu: false,
        },
        gap,
    );
    g.add("softmax", LayerKind::Softmax, fc);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{applicability, find_branch_groups};

    #[test]
    fn all_miniatures_infer_shapes() {
        for id in ModelId::EVALUATED {
            let g = miniature(id);
            g.infer_shapes()
                .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
            // Small enough for functional tests: under 10 MMACs each.
            assert!(
                g.total_macs().unwrap() < 10_000_000,
                "{} too big: {} MACs",
                g.name(),
                g.total_macs().unwrap()
            );
        }
    }

    #[test]
    fn miniatures_preserve_structural_features() {
        // Branch structure survives the shrink.
        assert_eq!(find_branch_groups(&miniature(ModelId::GoogLeNet)).len(), 2);
        assert_eq!(find_branch_groups(&miniature(ModelId::SqueezeNet)).len(), 3);
        // Operator classes survive.
        let has_op = |g: &Graph, op: &str| g.nodes().iter().any(|n| n.kind.op_name() == op);
        assert!(has_op(&miniature(ModelId::AlexNet), "lrn"));
        assert!(has_op(&miniature(ModelId::MobileNet), "dwconv"));
        assert!(has_op(&miniature(ModelId::Vgg16), "fc"));
        // Table-1 applicability is identical to the full-size networks.
        for id in ModelId::EVALUATED {
            let mini = applicability(&miniature(id));
            let full = applicability(&id.build());
            assert_eq!(mini, full, "{}", id.name());
        }
    }

    #[test]
    fn inception_miniature_has_four_way_branches() {
        let g = miniature(ModelId::GoogLeNet);
        for grp in find_branch_groups(&g) {
            assert_eq!(grp.branches.len(), 4);
        }
    }
}
