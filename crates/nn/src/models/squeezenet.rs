//! SqueezeNet v1.1 (Iandola et al. 2016).
//!
//! The network of the paper's Figure 11b: Fire modules (squeeze 1x1, then
//! parallel expand 1x1 / expand 3x3 branches joined by concat).

use utensor::Shape;

use crate::graph::{Graph, NodeId};
use crate::layer::LayerKind;
use crate::models::{conv, maxpool};

/// Appends one Fire module; returns the concat node.
///
/// `s` squeeze 1x1 channels, `e1` expand 1x1 channels, `e3` expand 3x3
/// channels.
pub fn fire(g: &mut Graph, name: &str, input: NodeId, s: usize, e1: usize, e3: usize) -> NodeId {
    let squeeze = conv(g, &format!("{name}/squeeze1x1"), Some(input), s, 1, 1, 0);
    let expand1 = conv(g, &format!("{name}/expand1x1"), Some(squeeze), e1, 1, 1, 0);
    let expand3 = conv(g, &format!("{name}/expand3x3"), Some(squeeze), e3, 3, 1, 1);
    g.add_multi(
        format!("{name}/concat"),
        LayerKind::Concat,
        &[expand1, expand3],
    )
}

/// Builds SqueezeNet v1.1 for 227×227 RGB ImageNet classification.
pub fn squeezenet_v1_1() -> Graph {
    let mut g = Graph::new("SqueezeNet v1.1", Shape::nchw(1, 3, 227, 227));
    let c1 = conv(&mut g, "conv1", None, 64, 3, 2, 0); // 64 x 113
    let p1 = maxpool(&mut g, "pool1", c1, 3, 2, 0); // 64 x 56
    let f2 = fire(&mut g, "fire2", p1, 16, 64, 64); // 128 x 56
    let f3 = fire(&mut g, "fire3", f2, 16, 64, 64);
    let p3 = maxpool(&mut g, "pool3", f3, 3, 2, 0); // 128 x 27
    let f4 = fire(&mut g, "fire4", p3, 32, 128, 128); // 256 x 27
    let f5 = fire(&mut g, "fire5", f4, 32, 128, 128);
    let p5 = maxpool(&mut g, "pool5", f5, 3, 2, 0); // 256 x 13
    let f6 = fire(&mut g, "fire6", p5, 48, 192, 192); // 384 x 13
    let f7 = fire(&mut g, "fire7", f6, 48, 192, 192);
    let f8 = fire(&mut g, "fire8", f7, 64, 256, 256); // 512 x 13
    let f9 = fire(&mut g, "fire9", f8, 64, 256, 256);
    let c10 = conv(&mut g, "conv10", Some(f9), 1000, 1, 1, 0); // 1000 x 13
    let gap = g.add("pool10/gap", LayerKind::GlobalAvgPool, c10);
    g.add("softmax", LayerKind::Softmax, gap);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::find_branch_groups;

    #[test]
    fn canonical_shapes() {
        let g = squeezenet_v1_1();
        let shapes = g.infer_shapes().unwrap();
        let by_name = |name: &str| {
            let idx = g.nodes().iter().position(|n| n.name == name).unwrap();
            shapes[idx].dims().to_vec()
        };
        assert_eq!(by_name("conv1"), vec![1, 64, 113, 113]);
        assert_eq!(by_name("pool1"), vec![1, 64, 56, 56]);
        assert_eq!(by_name("fire2/concat"), vec![1, 128, 56, 56]);
        assert_eq!(by_name("pool3"), vec![1, 128, 27, 27]);
        assert_eq!(by_name("fire5/concat"), vec![1, 256, 27, 27]);
        assert_eq!(by_name("fire9/concat"), vec![1, 512, 13, 13]);
        assert_eq!(by_name("pool10/gap"), vec![1, 1000, 1, 1]);
    }

    #[test]
    fn eight_two_way_branch_groups() {
        let groups = find_branch_groups(&squeezenet_v1_1());
        assert_eq!(groups.len(), 8);
        for grp in &groups {
            assert_eq!(grp.branches.len(), 2);
            assert!(grp.branches.iter().all(|b| b.len() == 1));
        }
    }

    #[test]
    fn params_about_1_2m() {
        let total = squeezenet_v1_1().total_params().unwrap();
        assert!((1_000_000..1_500_000).contains(&total), "params = {total}");
    }
}
