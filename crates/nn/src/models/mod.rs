//! The model zoo: the five networks of the paper's evaluation (Table 1)
//! plus LeNet-5 for quickstarts.
//!
//! | Network          | Class (paper §7.1)                          |
//! |------------------|---------------------------------------------|
//! | GoogLeNet        | divergent branches (Inception modules)      |
//! | SqueezeNet v1.1  | divergent branches (Fire modules)           |
//! | VGG-16           | early NN, large filters                     |
//! | AlexNet          | early NN, large filters                     |
//! | MobileNet v1     | small-scale, computation-minimizing         |
//!
//! Architectures follow the original papers; weights are synthetic (see
//! [`crate::weights`]). Pooling uses floor arithmetic with explicit
//! padding chosen to preserve the canonical feature-map sizes.

pub mod alexnet;
pub mod googlenet;
pub mod lenet;
pub mod miniature;
pub mod mobilenet;
pub mod resnet;
pub mod squeezenet;
pub mod vgg;

pub use alexnet::alexnet;
pub use googlenet::googlenet;
pub use lenet::lenet5;
pub use miniature::miniature;
pub use mobilenet::mobilenet_v1;
pub use resnet::resnet18;
pub use squeezenet::squeezenet_v1_1;
pub use vgg::vgg16;

use crate::graph::{Graph, NodeId};
use crate::layer::{LayerKind, PoolFunc};

/// The networks of the paper's evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum ModelId {
    /// GoogLeNet (Inception v1).
    GoogLeNet,
    /// SqueezeNet v1.1.
    SqueezeNet,
    /// VGG-16.
    Vgg16,
    /// AlexNet.
    AlexNet,
    /// MobileNet v1.
    MobileNet,
    /// ResNet-18 (zoo extra: appears in the paper's Figure 10 accuracy
    /// study, not in the latency evaluation).
    ResNet18,
    /// LeNet-5 (not part of the evaluation; used by examples).
    LeNet,
}

impl ModelId {
    /// The five evaluated networks, in the paper's Table 1 order.
    pub const EVALUATED: [ModelId; 5] = [
        ModelId::GoogLeNet,
        ModelId::SqueezeNet,
        ModelId::Vgg16,
        ModelId::AlexNet,
        ModelId::MobileNet,
    ];

    /// The network's display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ModelId::GoogLeNet => "GoogLeNet",
            ModelId::SqueezeNet => "SqueezeNet v1.1",
            ModelId::Vgg16 => "VGG-16",
            ModelId::AlexNet => "AlexNet",
            ModelId::MobileNet => "MobileNet v1",
            ModelId::ResNet18 => "ResNet-18",
            ModelId::LeNet => "LeNet-5",
        }
    }

    /// Builds the miniature variant (same structure, ~1/8 width, small
    /// input) used for functional cross-architecture testing.
    pub fn build_miniature(self) -> Graph {
        miniature(self)
    }

    /// Builds the network graph.
    pub fn build(self) -> Graph {
        match self {
            ModelId::GoogLeNet => googlenet(),
            ModelId::SqueezeNet => squeezenet_v1_1(),
            ModelId::Vgg16 => vgg16(),
            ModelId::AlexNet => alexnet(),
            ModelId::MobileNet => mobilenet_v1(),
            ModelId::ResNet18 => resnet18(),
            ModelId::LeNet => lenet5(),
        }
    }
}

/// Adds a ReLU-fused convolution.
pub(crate) fn conv(
    g: &mut Graph,
    name: &str,
    input: Option<NodeId>,
    oc: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> NodeId {
    let kind = LayerKind::Conv {
        oc,
        k,
        stride,
        pad,
        relu: true,
    };
    match input {
        Some(i) => g.add(name, kind, i),
        None => g.add_input_layer(name, kind),
    }
}

/// Adds a max-pooling layer.
pub(crate) fn maxpool(
    g: &mut Graph,
    name: &str,
    input: NodeId,
    k: usize,
    stride: usize,
    pad: usize,
) -> NodeId {
    g.add(
        name,
        LayerKind::Pool {
            func: PoolFunc::Max,
            k,
            stride,
            pad,
        },
        input,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::applicability;
    use crate::weights::Weights;

    #[test]
    fn all_models_infer_shapes() {
        for id in ModelId::EVALUATED.iter().chain([&ModelId::LeNet]) {
            let g = id.build();
            let shapes = g.infer_shapes().unwrap_or_else(|e| {
                panic!("{}: shape inference failed: {e}", id.name());
            });
            assert_eq!(shapes.len(), g.len());
        }
    }

    #[test]
    fn classifier_heads_are_1000_way() {
        for id in ModelId::EVALUATED {
            let g = id.build();
            let shapes = g.infer_shapes().unwrap();
            let out = &shapes[g.output().0];
            assert_eq!(out.c(), 1000, "{}", id.name());
            assert_eq!(out.numel(), 1000, "{}", id.name());
        }
    }

    #[test]
    fn table1_applicability_matches_paper() {
        // Table 1: all five support channel distribution and
        // processor-friendly quantization; only GoogLeNet and SqueezeNet
        // have divergent branches.
        for id in ModelId::EVALUATED {
            let app = applicability(&id.build());
            assert!(app.channel_distribution, "{}", id.name());
            assert!(app.processor_quantization, "{}", id.name());
            let expect_branches = matches!(id, ModelId::GoogLeNet | ModelId::SqueezeNet);
            assert_eq!(app.branch_distribution, expect_branches, "{}", id.name());
        }
    }

    #[test]
    fn mac_totals_in_canonical_ballpark() {
        let gmacs = |id: ModelId| id.build().total_macs().unwrap() as f64 / 1e9;
        // Canonical single-inference MAC counts (batch 1): VGG-16 ~15.5G,
        // GoogLeNet ~1.6G, AlexNet ~0.7G, MobileNet ~0.57G, SqueezeNet
        // v1.1 ~0.4G. Allow wide bands; pooling/LRN bookkeeping differs
        // across references.
        let v = gmacs(ModelId::Vgg16);
        assert!((14.0..17.5).contains(&v), "VGG-16: {v} GMACs");
        let g = gmacs(ModelId::GoogLeNet);
        assert!((1.2..2.2).contains(&g), "GoogLeNet: {g} GMACs");
        let a = gmacs(ModelId::AlexNet);
        assert!((0.6..1.2).contains(&a), "AlexNet: {a} GMACs");
        let m = gmacs(ModelId::MobileNet);
        assert!((0.45..0.8).contains(&m), "MobileNet: {m} GMACs");
        let s = gmacs(ModelId::SqueezeNet);
        assert!((0.25..0.6).contains(&s), "SqueezeNet: {s} GMACs");
        // Relative ordering from the paper's Figure 6 workloads.
        assert!(v > g && g > a && a > m && m > s);
    }

    #[test]
    fn parameter_counts_in_canonical_ballpark() {
        let mparams = |id: ModelId| id.build().total_params().unwrap() as f64 / 1e6;
        assert!((55.0..65.0).contains(&mparams(ModelId::AlexNet)));
        assert!((130.0..145.0).contains(&mparams(ModelId::Vgg16)));
        assert!((5.0..8.0).contains(&mparams(ModelId::GoogLeNet)));
        assert!((0.8..1.6).contains(&mparams(ModelId::SqueezeNet)));
        assert!((3.5..5.0).contains(&mparams(ModelId::MobileNet)));
    }

    #[test]
    fn weights_generate_for_all_models() {
        for id in ModelId::EVALUATED {
            let g = id.build();
            let w = Weights::random(&g, 1).unwrap();
            assert_eq!(w.len(), g.len(), "{}", id.name());
        }
    }

    #[test]
    fn names_stable() {
        assert_eq!(ModelId::GoogLeNet.name(), "GoogLeNet");
        assert_eq!(ModelId::SqueezeNet.build().name(), "SqueezeNet v1.1");
    }
}
