//! GoogLeNet / Inception v1 (Szegedy et al. 2015).
//!
//! The network of the paper's Figure 11a and the branch-distribution case
//! study (Figure 12): nine Inception modules, each a four-way divergent
//! branch group joined by a channel concat.

use utensor::Shape;

use crate::graph::{Graph, NodeId};
use crate::layer::{LayerKind, PoolFunc};
use crate::models::{conv, maxpool};

/// Output-channel configuration of one Inception module:
/// `(1x1, 3x3 reduce, 3x3, 5x5 reduce, 5x5, pool proj)`.
pub type InceptionCfg = (usize, usize, usize, usize, usize, usize);

/// The canonical configurations of the nine modules, 3a through 5b.
pub const INCEPTION_CFGS: [(&str, InceptionCfg); 9] = [
    ("3a", (64, 96, 128, 16, 32, 32)),
    ("3b", (128, 128, 192, 32, 96, 64)),
    ("4a", (192, 96, 208, 16, 48, 64)),
    ("4b", (160, 112, 224, 24, 64, 64)),
    ("4c", (128, 128, 256, 24, 64, 64)),
    ("4d", (112, 144, 288, 32, 64, 64)),
    ("4e", (256, 160, 320, 32, 128, 128)),
    ("5a", (256, 160, 320, 32, 128, 128)),
    ("5b", (384, 192, 384, 48, 128, 128)),
];

/// Appends one Inception module fed by `input`; returns the concat node.
pub fn inception(g: &mut Graph, name: &str, input: NodeId, cfg: InceptionCfg) -> NodeId {
    let (c1, c3r, c3, c5r, c5, pp) = cfg;
    // Branch 0: 1x1.
    let b0 = conv(g, &format!("{name}/1x1"), Some(input), c1, 1, 1, 0);
    // Branch 1: 1x1 reduce -> 3x3.
    let b1r = conv(g, &format!("{name}/3x3_reduce"), Some(input), c3r, 1, 1, 0);
    let b1 = conv(g, &format!("{name}/3x3"), Some(b1r), c3, 3, 1, 1);
    // Branch 2: 1x1 reduce -> 5x5.
    let b2r = conv(g, &format!("{name}/5x5_reduce"), Some(input), c5r, 1, 1, 0);
    let b2 = conv(g, &format!("{name}/5x5"), Some(b2r), c5, 5, 1, 2);
    // Branch 3: 3x3 maxpool -> 1x1 proj.
    let b3p = g.add(
        format!("{name}/pool"),
        LayerKind::Pool {
            func: PoolFunc::Max,
            k: 3,
            stride: 1,
            pad: 1,
        },
        input,
    );
    let b3 = conv(g, &format!("{name}/pool_proj"), Some(b3p), pp, 1, 1, 0);
    g.add_multi(
        format!("{name}/concat"),
        LayerKind::Concat,
        &[b0, b1, b2, b3],
    )
}

/// Builds GoogLeNet for 224×224 RGB ImageNet classification.
pub fn googlenet() -> Graph {
    let mut g = Graph::new("GoogLeNet", Shape::nchw(1, 3, 224, 224));
    let c1 = conv(&mut g, "conv1/7x7_s2", None, 64, 7, 2, 3); // 64 x 112
    let p1 = maxpool(&mut g, "pool1/3x3_s2", c1, 3, 2, 1); // 64 x 56
    let c2r = conv(&mut g, "conv2/3x3_reduce", Some(p1), 64, 1, 1, 0);
    let c2 = conv(&mut g, "conv2/3x3", Some(c2r), 192, 3, 1, 1); // 192 x 56
    let p2 = maxpool(&mut g, "pool2/3x3_s2", c2, 3, 2, 1); // 192 x 28

    let mut cur = p2;
    for (name, cfg) in INCEPTION_CFGS {
        cur = inception(&mut g, &format!("inception_{name}"), cur, cfg);
        if name == "3b" {
            cur = maxpool(&mut g, "pool3/3x3_s2", cur, 3, 2, 1); // -> 14
        } else if name == "4e" {
            cur = maxpool(&mut g, "pool4/3x3_s2", cur, 3, 2, 1); // -> 7
        }
    }

    let gap = g.add("pool5/gap", LayerKind::GlobalAvgPool, cur);
    let fc = g.add(
        "loss3/classifier",
        LayerKind::FullyConnected {
            out: 1000,
            relu: false,
        },
        gap,
    );
    g.add("softmax", LayerKind::Softmax, fc);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::find_branch_groups;

    #[test]
    fn canonical_module_channels() {
        let g = googlenet();
        let shapes = g.infer_shapes().unwrap();
        let by_name = |name: &str| {
            let idx = g.nodes().iter().position(|n| n.name == name).unwrap();
            shapes[idx].dims().to_vec()
        };
        assert_eq!(by_name("pool2/3x3_s2"), vec![1, 192, 28, 28]);
        assert_eq!(by_name("inception_3a/concat"), vec![1, 256, 28, 28]);
        assert_eq!(by_name("inception_3b/concat"), vec![1, 480, 28, 28]);
        assert_eq!(by_name("inception_4a/concat"), vec![1, 512, 14, 14]);
        assert_eq!(by_name("inception_4e/concat"), vec![1, 832, 14, 14]);
        assert_eq!(by_name("inception_5b/concat"), vec![1, 1024, 7, 7]);
        assert_eq!(by_name("pool5/gap"), vec![1, 1024, 1, 1]);
    }

    #[test]
    fn nine_branch_groups_of_four() {
        let g = googlenet();
        let groups = find_branch_groups(&g);
        assert_eq!(groups.len(), 9);
        for grp in &groups {
            assert_eq!(grp.branches.len(), 4);
            // 1x1 | reduce+3x3 | reduce+5x5 | pool+proj.
            let lens: Vec<usize> = grp.branches.iter().map(Vec::len).collect();
            assert_eq!(lens, vec![1, 2, 2, 2]);
        }
    }

    #[test]
    fn params_about_7m() {
        let total = googlenet().total_params().unwrap();
        assert!((5_500_000..7_500_000).contains(&total), "params = {total}");
    }
}
