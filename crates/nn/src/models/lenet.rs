//! LeNet-5 (LeCun et al. 1998), the paper's Figure 1a illustration.

use utensor::Shape;

use crate::graph::Graph;
use crate::layer::{LayerKind, PoolFunc};
use crate::models::conv;

/// Builds LeNet-5 for 32×32 grayscale digit recognition.
pub fn lenet5() -> Graph {
    let mut g = Graph::new("LeNet-5", Shape::nchw(1, 1, 32, 32));
    let c1 = conv(&mut g, "conv1", None, 6, 5, 1, 0); // 6 x 28x28
    let p1 = g.add(
        "pool1",
        LayerKind::Pool {
            func: PoolFunc::Avg,
            k: 2,
            stride: 2,
            pad: 0,
        },
        c1,
    ); // 6 x 14x14
    let c2 = conv(&mut g, "conv2", Some(p1), 16, 5, 1, 0); // 16 x 10x10
    let p2 = g.add(
        "pool2",
        LayerKind::Pool {
            func: PoolFunc::Avg,
            k: 2,
            stride: 2,
            pad: 0,
        },
        c2,
    ); // 16 x 5x5
    let f3 = g.add(
        "fc3",
        LayerKind::FullyConnected {
            out: 120,
            relu: true,
        },
        p2,
    );
    let f4 = g.add(
        "fc4",
        LayerKind::FullyConnected {
            out: 84,
            relu: true,
        },
        f3,
    );
    let f5 = g.add(
        "fc5",
        LayerKind::FullyConnected {
            out: 10,
            relu: false,
        },
        f4,
    );
    g.add("softmax", LayerKind::Softmax, f5);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_shapes() {
        let g = lenet5();
        let shapes = g.infer_shapes().unwrap();
        assert_eq!(shapes[0].dims(), &[1, 6, 28, 28]);
        assert_eq!(shapes[1].dims(), &[1, 6, 14, 14]);
        assert_eq!(shapes[2].dims(), &[1, 16, 10, 10]);
        assert_eq!(shapes[3].dims(), &[1, 16, 5, 5]);
        assert_eq!(shapes[4].dims(), &[1, 120, 1, 1]);
        assert_eq!(shapes[6].dims(), &[1, 10, 1, 1]);
    }

    #[test]
    fn parameter_count() {
        // conv1: 6*25+6, conv2: 16*6*25+16, fc3: 120*400+120,
        // fc4: 84*120+84, fc5: 10*84+10 = 61,706.
        assert_eq!(lenet5().total_params().unwrap(), 61_706);
    }
}
