//! AlexNet (Krizhevsky et al. 2012), single-column (no filter groups).

use utensor::Shape;

use crate::graph::Graph;
use crate::layer::LayerKind;
use crate::models::{conv, maxpool};

/// Builds AlexNet for 227×227 RGB ImageNet classification.
///
/// The Caffe single-column variant: grouped convolutions are widened to
/// full connections (the modern deployment form), LRN after conv1/conv2.
pub fn alexnet() -> Graph {
    let mut g = Graph::new("AlexNet", Shape::nchw(1, 3, 227, 227));
    let lrn = LayerKind::Lrn {
        n: 5,
        alpha: 1e-4,
        beta: 0.75,
        k: 1.0,
    };

    let c1 = conv(&mut g, "conv1", None, 96, 11, 4, 0); // 96 x 55x55
    let n1 = g.add("norm1", lrn.clone(), c1);
    let p1 = maxpool(&mut g, "pool1", n1, 3, 2, 0); // 96 x 27x27
    let c2 = conv(&mut g, "conv2", Some(p1), 256, 5, 1, 2); // 256 x 27x27
    let n2 = g.add("norm2", lrn, c2);
    let p2 = maxpool(&mut g, "pool2", n2, 3, 2, 0); // 256 x 13x13
    let c3 = conv(&mut g, "conv3", Some(p2), 384, 3, 1, 1);
    let c4 = conv(&mut g, "conv4", Some(c3), 384, 3, 1, 1);
    let c5 = conv(&mut g, "conv5", Some(c4), 256, 3, 1, 1);
    let p5 = maxpool(&mut g, "pool5", c5, 3, 2, 0); // 256 x 6x6
    let f6 = g.add(
        "fc6",
        LayerKind::FullyConnected {
            out: 4096,
            relu: true,
        },
        p5,
    );
    let f7 = g.add(
        "fc7",
        LayerKind::FullyConnected {
            out: 4096,
            relu: true,
        },
        f6,
    );
    let f8 = g.add(
        "fc8",
        LayerKind::FullyConnected {
            out: 1000,
            relu: false,
        },
        f7,
    );
    g.add("softmax", LayerKind::Softmax, f8);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_shapes() {
        let g = alexnet();
        let shapes = g.infer_shapes().unwrap();
        let by_name = |name: &str| {
            let idx = g.nodes().iter().position(|n| n.name == name).unwrap();
            shapes[idx].dims().to_vec()
        };
        assert_eq!(by_name("conv1"), vec![1, 96, 55, 55]);
        assert_eq!(by_name("pool1"), vec![1, 96, 27, 27]);
        assert_eq!(by_name("conv2"), vec![1, 256, 27, 27]);
        assert_eq!(by_name("pool2"), vec![1, 256, 13, 13]);
        assert_eq!(by_name("conv5"), vec![1, 256, 13, 13]);
        assert_eq!(by_name("pool5"), vec![1, 256, 6, 6]);
        assert_eq!(by_name("fc6"), vec![1, 4096, 1, 1]);
    }

    #[test]
    fn fc_layers_dominate_parameters() {
        // fc6 alone holds 9216*4096 ≈ 37.7M of AlexNet's ~60M params.
        let g = alexnet();
        let total = g.total_params().unwrap();
        assert!(total > 55_000_000 && total < 65_000_000, "total = {total}");
    }
}
