//! ResNet-18 (He et al. 2016).
//!
//! The paper's accuracy study (Figure 10) covers ResNet-v1/v2; this
//! builds the 18-layer v1 variant as a zoo extra. Residual blocks
//! exercise the [`crate::layer::LayerKind::Add`] join, whose quantized
//! form requires dual-input rescaling (unlike Inception's concat joins).

use utensor::Shape;

use crate::graph::{Graph, NodeId};
use crate::layer::LayerKind;
use crate::models::{conv, maxpool};

/// Appends one basic residual block (two 3×3 convs plus a skip).
///
/// When `stride != 1` or the channel count changes, the skip goes
/// through a 1×1 projection convolution, as in the original.
pub fn basic_block(
    g: &mut Graph,
    name: &str,
    input: NodeId,
    in_ch: usize,
    out_ch: usize,
    stride: usize,
) -> NodeId {
    let c1 = conv(
        g,
        &format!("{name}/conv1"),
        Some(input),
        out_ch,
        3,
        stride,
        1,
    );
    // Second conv without fused ReLU: the activation comes after the add.
    let c2 = g.add(
        format!("{name}/conv2"),
        LayerKind::Conv {
            oc: out_ch,
            k: 3,
            stride: 1,
            pad: 1,
            relu: false,
        },
        c1,
    );
    let skip = if stride != 1 || in_ch != out_ch {
        g.add(
            format!("{name}/downsample"),
            LayerKind::Conv {
                oc: out_ch,
                k: 1,
                stride,
                pad: 0,
                relu: false,
            },
            input,
        )
    } else {
        input
    };
    let sum = g.add_multi(
        format!("{name}/add"),
        LayerKind::Add { relu: false },
        &[c2, skip],
    );
    g.add(format!("{name}/relu"), LayerKind::Relu, sum)
}

/// Builds ResNet-18 for 224×224 RGB ImageNet classification.
pub fn resnet18() -> Graph {
    let mut g = Graph::new("ResNet-18", Shape::nchw(1, 3, 224, 224));
    let c1 = conv(&mut g, "conv1", None, 64, 7, 2, 3); // 64 x 112
    let mut cur = maxpool(&mut g, "pool1", c1, 3, 2, 1); // 64 x 56
    let stages: [(usize, usize); 4] = [(64, 1), (128, 2), (256, 2), (512, 2)];
    let mut in_ch = 64;
    for (si, (ch, first_stride)) in stages.iter().enumerate() {
        for b in 0..2 {
            let stride = if b == 0 { *first_stride } else { 1 };
            cur = basic_block(
                &mut g,
                &format!("layer{}.{b}", si + 1),
                cur,
                in_ch,
                *ch,
                stride,
            );
            in_ch = *ch;
        }
    }
    let gap = g.add("gap", LayerKind::GlobalAvgPool, cur);
    let fc = g.add(
        "fc",
        LayerKind::FullyConnected {
            out: 1000,
            relu: false,
        },
        gap,
    );
    g.add("softmax", LayerKind::Softmax, fc);
    g
}

/// A miniature ResNet with two residual blocks for functional tests.
pub fn mini_resnet() -> Graph {
    let mut g = Graph::new("ResNet-mini", Shape::nchw(1, 3, 32, 32));
    let c1 = conv(&mut g, "conv1", None, 8, 3, 2, 1); // 8 x 16
    let b1 = basic_block(&mut g, "layer1.0", c1, 8, 8, 1);
    let b2 = basic_block(&mut g, "layer2.0", b1, 8, 16, 2);
    let gap = g.add("gap", LayerKind::GlobalAvgPool, b2);
    let fc = g.add(
        "fc",
        LayerKind::FullyConnected {
            out: 10,
            relu: false,
        },
        gap,
    );
    g.add("softmax", LayerKind::Softmax, fc);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::applicability;

    #[test]
    fn canonical_shapes() {
        let g = resnet18();
        let shapes = g.infer_shapes().unwrap();
        let by_name = |name: &str| {
            let idx = g.nodes().iter().position(|n| n.name == name).unwrap();
            shapes[idx].dims().to_vec()
        };
        assert_eq!(by_name("conv1"), vec![1, 64, 112, 112]);
        assert_eq!(by_name("pool1"), vec![1, 64, 56, 56]);
        assert_eq!(by_name("layer1.1/relu"), vec![1, 64, 56, 56]);
        assert_eq!(by_name("layer2.0/relu"), vec![1, 128, 28, 28]);
        assert_eq!(by_name("layer4.1/relu"), vec![1, 512, 7, 7]);
        assert_eq!(by_name("gap"), vec![1, 512, 1, 1]);
    }

    #[test]
    fn params_about_11_7m() {
        let total = resnet18().total_params().unwrap();
        assert!(
            (11_000_000..12_500_000).contains(&total),
            "ResNet-18 params = {total}"
        );
    }

    #[test]
    fn macs_about_1_8g() {
        let gmacs = resnet18().total_macs().unwrap() as f64 / 1e9;
        assert!((1.5..2.2).contains(&gmacs), "ResNet-18 = {gmacs} GMACs");
    }

    #[test]
    fn add_joins_are_not_branch_groups() {
        // Branch distribution targets concat joins (Table 1); residual
        // adds must not be misdetected as distributable branch groups.
        let app = applicability(&resnet18());
        assert!(app.channel_distribution);
        assert!(!app.branch_distribution);
    }

    #[test]
    fn projection_skips_only_where_shapes_change() {
        let g = resnet18();
        let downsamples = g
            .nodes()
            .iter()
            .filter(|n| n.name.ends_with("/downsample"))
            .count();
        // Stages 2-4 change shape in their first block.
        assert_eq!(downsamples, 3);
    }

    #[test]
    fn mini_resnet_is_small() {
        let g = mini_resnet();
        assert!(g.total_macs().unwrap() < 5_000_000);
        assert!(g.infer_shapes().is_ok());
    }
}
