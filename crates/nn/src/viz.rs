//! Graphviz (DOT) export of NN graphs.
//!
//! `dot -Tpng` on the output renders the network's DAG with per-node
//! operator, name, and output shape — handy for inspecting the zoo
//! architectures and for documenting custom graphs.

use std::fmt::Write as _;

use crate::graph::Graph;

/// Renders the graph in Graphviz DOT syntax.
///
/// Falls back to `?` shapes if shape inference fails (the structure is
/// still drawable).
pub fn to_dot(graph: &Graph) -> String {
    let shapes = graph.infer_shapes().ok();
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(graph.name()));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontsize=10];");
    let _ = writeln!(
        out,
        "  input [label=\"input\\n{}\", shape=ellipse];",
        graph.input_shape()
    );
    let output = if graph.is_empty() {
        None
    } else {
        Some(graph.output())
    };
    for (i, node) in graph.nodes().iter().enumerate() {
        let shape = shapes
            .as_ref()
            .map(|s| s[i].to_string())
            .unwrap_or_else(|| "?".into());
        // The designated output gets a double border: after a rewrite
        // pass it need not be the last-added node, so make it visible.
        let peripheries = if output == Some(crate::graph::NodeId(i)) {
            ", peripheries=2"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  n{i} [label=\"{}\\n{}\\n{}\"{peripheries}];",
            escape(&node.name),
            node.kind.op_name(),
            shape
        );
        if node.inputs.is_empty() {
            let _ = writeln!(out, "  input -> n{i};");
        }
        for dep in &node.inputs {
            let _ = writeln!(out, "  n{} -> n{i};", dep.0);
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelId;

    #[test]
    fn dot_renders_structure() {
        let g = ModelId::LeNet.build();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("input ->"));
        assert!(dot.contains("conv1"));
        assert!(dot.contains("softmax"));
        // One node statement per layer plus the input ellipse.
        let nodes = dot.matches("[label=").count();
        assert_eq!(nodes, g.len() + 1);
        // Edge count: one per node input plus the source edges.
        let edges = dot.matches("->").count();
        let expected: usize = g.nodes().iter().map(|n| n.inputs.len().max(1)).sum();
        assert_eq!(edges, expected);
    }

    #[test]
    fn branchy_graphs_have_fan_out_edges() {
        let g = ModelId::SqueezeNet.build_miniature();
        let dot = to_dot(&g);
        // A fire module's squeeze output feeds two expand nodes.
        let squeeze_idx = g
            .nodes()
            .iter()
            .position(|n| n.name == "fire2/squeeze1x1")
            .unwrap();
        let fan_out = dot.matches(&format!("n{squeeze_idx} -> ")).count();
        assert_eq!(fan_out, 2);
    }

    #[test]
    fn output_node_is_marked() {
        let g = ModelId::LeNet.build();
        let dot = to_dot(&g);
        assert_eq!(dot.matches("peripheries=2").count(), 1);
        let out_idx = g.output().0;
        assert!(dot
            .lines()
            .any(|l| l.starts_with(&format!("  n{out_idx} ")) && l.contains("peripheries=2")));
    }

    #[test]
    fn names_are_escaped() {
        let mut g = Graph::new("with\"quote", utensor::Shape::nchw(1, 1, 4, 4));
        g.add_input_layer("layer\"x", crate::layer::LayerKind::Relu);
        let dot = to_dot(&g);
        assert!(dot.contains("with\\\"quote"));
        assert!(dot.contains("layer\\\"x"));
    }
}
