//! The NN graph: a DAG of layers with shape and cost inference.
//!
//! Graphs are built in topological order (every node's inputs must already
//! exist), which makes validation and inference single forward passes. The
//! graph is the unit every execution mechanism consumes: the baselines walk
//! it layer by layer, μLayer's partitioner annotates it with split ratios,
//! and the branch distributor analyzes its fork/join structure.

use std::collections::BTreeMap;
use std::fmt;

use utensor::{Shape, TensorError};

use crate::layer::LayerKind;

/// Identifies a node within a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One layer instance in a graph.
#[derive(Clone, Debug)]
pub struct Node {
    /// Human-readable unique name (e.g. `"conv1"`, `"inception3a/b1/3x3"`).
    pub name: String,
    /// The operator.
    pub kind: LayerKind,
    /// Producing nodes (empty = reads the graph input).
    pub inputs: Vec<NodeId>,
}

/// A feed-forward NN as a DAG of layers with a single input and output.
///
/// # Examples
///
/// ```
/// use unn::{Graph, LayerKind};
/// use utensor::Shape;
///
/// let mut g = Graph::new("tiny", Shape::nchw(1, 3, 8, 8));
/// let conv = g.add_input_layer(
///     "conv",
///     LayerKind::Conv { oc: 16, k: 3, stride: 1, pad: 1, relu: true },
/// );
/// g.add("fc", LayerKind::FullyConnected { out: 10, relu: false }, conv);
///
/// let shapes = g.infer_shapes().unwrap();
/// assert_eq!(shapes[0].dims(), &[1, 16, 8, 8]);
/// assert_eq!(g.total_macs().unwrap(), 16 * 8 * 8 * 27 + 10 * 1024);
/// ```
#[derive(Clone, Debug)]
pub struct Graph {
    name: String,
    input_shape: Shape,
    nodes: Vec<Node>,
    /// The designated output node. Defaults to the last node added;
    /// rewrite passes carry it through explicitly so deleting or
    /// appending nodes cannot silently change what the graph computes.
    output: Option<NodeId>,
}

impl Graph {
    /// Creates an empty graph for a given input shape.
    pub fn new(name: impl Into<String>, input_shape: Shape) -> Graph {
        Graph {
            name: name.into(),
            input_shape,
            nodes: Vec::new(),
            output: None,
        }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The graph input shape (NCHW).
    pub fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    /// Adds a node fed by the graph input.
    pub fn add_input_layer(&mut self, name: impl Into<String>, kind: LayerKind) -> NodeId {
        self.push(name, kind, Vec::new())
    }

    /// Adds a node fed by `input`.
    pub fn add(&mut self, name: impl Into<String>, kind: LayerKind, input: NodeId) -> NodeId {
        self.push(name, kind, vec![input])
    }

    /// Adds a multi-input node (concat).
    pub fn add_multi(
        &mut self,
        name: impl Into<String>,
        kind: LayerKind,
        inputs: &[NodeId],
    ) -> NodeId {
        self.push(name, kind, inputs.to_vec())
    }

    fn push(&mut self, name: impl Into<String>, kind: LayerKind, inputs: Vec<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len());
        for dep in &inputs {
            assert!(
                dep.0 < id.0,
                "graph must be built in topological order: {dep} referenced by {id}"
            );
        }
        self.nodes.push(Node {
            name: name.into(),
            kind,
            inputs,
        });
        self.output = Some(id);
        id
    }

    /// All nodes, in topological (insertion) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// A node by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// The designated output node (by default the last node added; see
    /// [`Graph::set_output`]).
    ///
    /// # Panics
    ///
    /// Panics on an empty graph.
    pub fn output(&self) -> NodeId {
        self.output.expect("empty graph has no output")
    }

    /// Designates `id` as the graph output.
    ///
    /// Builders call this when the output is not the last-added node
    /// (e.g. a graph carrying auxiliary heads); rewrite passes use it to
    /// preserve the output across node deletions.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set_output(&mut self, id: NodeId) {
        assert!(id.0 < self.nodes.len(), "output {id} out of range");
        self.output = Some(id);
    }

    /// Decomposes the graph into its raw parts
    /// `(name, input_shape, nodes, output)` for a rewrite pass.
    ///
    /// # Panics
    ///
    /// Panics on an empty graph.
    pub fn into_parts(self) -> (String, Shape, Vec<Node>, NodeId) {
        let output = self.output.expect("empty graph has no output");
        (self.name, self.input_shape, self.nodes, output)
    }

    /// Reassembles a graph from rewritten parts, revalidating the
    /// topological-order invariant and the output designation.
    pub fn from_parts(
        name: impl Into<String>,
        input_shape: Shape,
        nodes: Vec<Node>,
        output: NodeId,
    ) -> Result<Graph, TensorError> {
        for (i, node) in nodes.iter().enumerate() {
            for dep in &node.inputs {
                if dep.0 >= i {
                    return Err(TensorError::BadGraph(format!(
                        "node {i} ({}) references {dep}, violating topological order",
                        node.name
                    )));
                }
            }
        }
        if output.0 >= nodes.len() {
            return Err(TensorError::BadGraph(format!(
                "output {output} out of range for {} nodes",
                nodes.len()
            )));
        }
        Ok(Graph {
            name: name.into(),
            input_shape,
            nodes,
            output: Some(output),
        })
    }

    /// Consumers of each node's output (and of the graph input at key
    /// `None`).
    pub fn consumers(&self) -> BTreeMap<Option<NodeId>, Vec<NodeId>> {
        let mut m: BTreeMap<Option<NodeId>, Vec<NodeId>> = BTreeMap::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if n.inputs.is_empty() {
                m.entry(None).or_default().push(NodeId(i));
            }
            for dep in &n.inputs {
                m.entry(Some(*dep)).or_default().push(NodeId(i));
            }
        }
        m
    }

    /// Infers every node's output shape.
    ///
    /// Fails if any layer's geometry is inconsistent — this doubles as
    /// whole-graph validation and is cheap enough to run per inference.
    pub fn infer_shapes(&self) -> Result<Vec<Shape>, TensorError> {
        let mut shapes: Vec<Shape> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let input_shapes: Vec<&Shape> = if node.inputs.is_empty() {
                vec![&self.input_shape]
            } else {
                node.inputs.iter().map(|d| &shapes[d.0]).collect()
            };
            shapes.push(node.kind.infer_shape(&input_shapes)?);
        }
        Ok(shapes)
    }

    /// Per-node MAC counts (same order as [`Graph::nodes`]).
    ///
    /// Multi-input nodes (concat, add) are costed over *all* of their
    /// input shapes — costing from the first input alone undercounts the
    /// merged data volume on fork/join networks.
    pub fn macs(&self) -> Result<Vec<u64>, TensorError> {
        let shapes = self.infer_shapes()?;
        Ok(self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let ins = self.node_input_shapes(NodeId(i), &shapes);
                n.kind.macs_multi(&ins, &shapes[i])
            })
            .collect())
    }

    /// Total MACs of one inference.
    pub fn total_macs(&self) -> Result<u64, TensorError> {
        Ok(self.macs()?.iter().sum())
    }

    /// Total trainable parameter count (weights + biases).
    ///
    /// Weight-bearing operators are all single-input; the per-node count
    /// is taken over every input shape so a future multi-input weighted
    /// op cannot silently fall back to its first input.
    pub fn total_params(&self) -> Result<usize, TensorError> {
        let shapes = self.infer_shapes()?;
        Ok(self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let ins = self.node_input_shapes(NodeId(i), &shapes);
                ins.iter()
                    .map(|s| n.kind.weight_count(s) + n.kind.bias_count(s))
                    .max()
                    .unwrap_or(0)
            })
            .sum())
    }

    /// The *primary* input shape a node consumes (first input's shape, or
    /// the graph input shape for source nodes). Geometry of single-input
    /// operators (conv window arithmetic, weight shapes) keys off this;
    /// cost accounting for multi-input nodes must use
    /// [`Graph::node_input_shapes`] instead.
    pub fn node_input_shape<'a>(&'a self, id: NodeId, shapes: &'a [Shape]) -> &'a Shape {
        self.nodes[id.0]
            .inputs
            .first()
            .map(|d| &shapes[d.0])
            .unwrap_or(&self.input_shape)
    }

    /// Every input shape a node consumes, in input order (the graph input
    /// shape for source nodes).
    pub fn node_input_shapes<'a>(&'a self, id: NodeId, shapes: &'a [Shape]) -> Vec<&'a Shape> {
        let node = &self.nodes[id.0];
        if node.inputs.is_empty() {
            vec![&self.input_shape]
        } else {
            node.inputs.iter().map(|d| &shapes[d.0]).collect()
        }
    }

    /// A one-line-per-layer structural summary.
    pub fn summary(&self) -> Result<String, TensorError> {
        let shapes = self.infer_shapes()?;
        let macs = self.macs()?;
        let mut out = String::new();
        out.push_str(&format!(
            "{} (input {}, {} layers, {:.1} MMACs)\n",
            self.name,
            self.input_shape,
            self.nodes.len(),
            self.total_macs()? as f64 / 1e6
        ));
        for (i, n) in self.nodes.iter().enumerate() {
            out.push_str(&format!(
                "  {:>3} {:<28} {:<8} -> {:<18} {:>10.2} MMACs\n",
                i,
                n.name,
                n.kind.op_name(),
                shapes[i].to_string(),
                macs[i] as f64 / 1e6
            ));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::PoolFunc;

    fn tiny_graph() -> Graph {
        let mut g = Graph::new("tiny", Shape::nchw(1, 3, 8, 8));
        let c1 = g.add_input_layer(
            "conv1",
            LayerKind::Conv {
                oc: 4,
                k: 3,
                stride: 1,
                pad: 1,
                relu: true,
            },
        );
        let p1 = g.add(
            "pool1",
            LayerKind::Pool {
                func: PoolFunc::Max,
                k: 2,
                stride: 2,
                pad: 0,
            },
            c1,
        );
        let f1 = g.add(
            "fc1",
            LayerKind::FullyConnected {
                out: 10,
                relu: false,
            },
            p1,
        );
        g.add("softmax", LayerKind::Softmax, f1);
        g
    }

    #[test]
    fn shapes_flow_through() {
        let g = tiny_graph();
        let shapes = g.infer_shapes().unwrap();
        assert_eq!(shapes[0].dims(), &[1, 4, 8, 8]);
        assert_eq!(shapes[1].dims(), &[1, 4, 4, 4]);
        assert_eq!(shapes[2].dims(), &[1, 10, 1, 1]);
        assert_eq!(shapes[3].dims(), &[1, 10, 1, 1]);
    }

    #[test]
    fn macs_and_params() {
        let g = tiny_graph();
        let macs = g.macs().unwrap();
        assert_eq!(macs[0], 4 * 8 * 8 * 27);
        assert_eq!(macs[2], 10 * 64);
        // conv: 4*3*3*3 + 4, fc: 10*64 + 10.
        assert_eq!(g.total_params().unwrap(), 108 + 4 + 640 + 10);
    }

    #[test]
    fn consumers_map() {
        let mut g = Graph::new("fork", Shape::nchw(1, 2, 4, 4));
        let a = g.add_input_layer("a", LayerKind::Relu);
        let b = g.add("b", LayerKind::Relu, a);
        let c = g.add("c", LayerKind::Relu, a);
        g.add_multi("j", LayerKind::Concat, &[b, c]);
        let cons = g.consumers();
        assert_eq!(cons[&Some(a)], vec![b, c]);
        assert_eq!(cons[&None], vec![a]);
    }

    #[test]
    #[should_panic(expected = "topological order")]
    fn forward_reference_panics() {
        let mut g = Graph::new("bad", Shape::nchw(1, 1, 2, 2));
        g.add_multi("x", LayerKind::Relu, &[NodeId(3)]);
    }

    #[test]
    fn invalid_geometry_caught_by_inference() {
        let mut g = Graph::new("bad", Shape::nchw(1, 1, 4, 4));
        g.add_input_layer(
            "huge",
            LayerKind::Conv {
                oc: 1,
                k: 9,
                stride: 1,
                pad: 0,
                relu: false,
            },
        );
        assert!(g.infer_shapes().is_err());
    }

    #[test]
    fn summary_renders() {
        let s = tiny_graph().summary().unwrap();
        assert!(s.contains("conv1"));
        assert!(s.contains("MMACs"));
    }

    #[test]
    fn output_is_last() {
        let g = tiny_graph();
        assert_eq!(g.output(), NodeId(3));
    }

    #[test]
    fn output_is_explicit() {
        let mut g = tiny_graph();
        g.set_output(NodeId(2));
        assert_eq!(g.output(), NodeId(2));
        // Adding a node moves the default output to it again.
        g.add("relu", LayerKind::Relu, NodeId(2));
        assert_eq!(g.output(), NodeId(4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_output_rejects_dangling() {
        tiny_graph().set_output(NodeId(99));
    }

    #[test]
    fn parts_round_trip_and_validate() {
        let g = tiny_graph();
        let (name, input_shape, nodes, output) = g.clone().into_parts();
        let rebuilt = Graph::from_parts(name, input_shape, nodes, output).unwrap();
        assert_eq!(rebuilt.output(), g.output());
        assert_eq!(rebuilt.len(), g.len());

        // Non-topological wiring is rejected.
        let (name, input_shape, mut nodes, output) = g.clone().into_parts();
        nodes[0].inputs = vec![NodeId(2)];
        assert!(Graph::from_parts(name, input_shape, nodes, output).is_err());

        // Dangling output is rejected.
        let (name, input_shape, nodes, _) = g.into_parts();
        assert!(Graph::from_parts(name, input_shape, nodes, NodeId(9)).is_err());
    }

    #[test]
    fn multi_input_nodes_expose_all_input_shapes() {
        // Inception-style fork/join with *unequal* branch widths: costing
        // the join from its first input alone would see 2 channels out
        // of 5.
        let mut g = Graph::new("fork", Shape::nchw(1, 3, 4, 4));
        let a = g.add_input_layer(
            "a",
            LayerKind::Conv {
                oc: 2,
                k: 1,
                stride: 1,
                pad: 0,
                relu: true,
            },
        );
        let b = g.add_input_layer(
            "b",
            LayerKind::Conv {
                oc: 3,
                k: 1,
                stride: 1,
                pad: 0,
                relu: true,
            },
        );
        let j = g.add_multi("join", LayerKind::Concat, &[a, b]);
        let shapes = g.infer_shapes().unwrap();
        let ins = g.node_input_shapes(j, &shapes);
        assert_eq!(ins.len(), 2);
        assert_eq!(ins[0].c(), 2);
        assert_eq!(ins[1].c(), 3);
        // Source nodes consume the graph input.
        assert_eq!(g.node_input_shapes(a, &shapes), vec![g.input_shape()]);
    }
}
