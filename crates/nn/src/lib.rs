//! NN layer IR, graph, model zoo, and reference execution for the μLayer
//! reproduction.
//!
//! This crate is the "network" half of the substrate:
//!
//! - [`layer`] / [`graph`] — the operator vocabulary and the DAG the
//!   execution mechanisms consume, with shape and MAC inference.
//! - [`models`] — from-scratch architecture definitions of the paper's
//!   five evaluated networks (GoogLeNet, SqueezeNet v1.1, VGG-16,
//!   AlexNet, MobileNet v1) plus LeNet-5.
//! - [`weights`] — synthetic weight generation and quantization
//!   calibration (the §4.2 "pre-trained quantization information").
//! - [`exec`] — single-host reference execution in any dtype; every
//!   device executor routes through the same [`exec::run_layer`], so all
//!   mechanisms share numerics by construction.
//! - [`analysis`] — divergent-branch detection (§5) and the Table 1
//!   applicability matrix.

pub mod analysis;
pub mod exec;
pub mod graph;
pub mod layer;
pub mod models;
pub mod passes;
pub mod viz;
pub mod weights;

pub use analysis::{applicability, find_branch_groups, Applicability, BranchGroup};
pub use exec::{calibrate, filter_for_dtype, forward, run_layer};
pub use graph::{Graph, Node, NodeId};
pub use layer::{LayerKind, PoolFunc};
pub use models::ModelId;
pub use passes::{
    optimize, ElideConcats, ElideQuantPairs, EliminateDeadNodes, FuseActivations, Module, Pass,
    PassReport, PassRunner,
};
pub use viz::to_dot;
pub use weights::{Calibration, LayerWeights, Weights};
