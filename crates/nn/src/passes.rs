//! Graph rewrite passes: activation fusion, quantize-pair elision,
//! dead-node elimination, and concat-elision annotation.
//!
//! A [`Module`] bundles a [`Graph`] with its per-node side tables
//! (weights, calibration) so a rewrite keeps all three consistent. A
//! [`Pass`] transforms a module in place and reports what it changed; a
//! [`PassRunner`] applies an ordered pass list, revalidating the graph
//! and the output designation after every pass.
//!
//! Every pass here is *provably output-preserving* in every dtype the
//! executors support:
//!
//! - **Activation fusion** folds a standalone `Relu` into its
//!   single-consumer producer (`Conv` / `DepthwiseConv` /
//!   `FullyConnected` / `Add` with `relu: false`). The fused kernels
//!   apply the activation with the exact expression the standalone
//!   `relu` kernel uses (`max(x, 0)` on floats, clamping codes at the
//!   zero point on QUInt8), and quantization-preserving layers store
//!   with their input's params, so the fused output is bit-identical.
//! - **Quantize-pair elision** drops the second of two adjacent
//!   `Quantize` nodes with equal params. Fake-quantization is
//!   idempotent (`snap ∘ snap == snap` exactly), so the drop changes no
//!   output bit.
//! - **Dead-node elimination** removes nodes that cannot reach the
//!   designated output.
//! - **Concat elision** does not rewrite the graph at all: it marks
//!   concats whose producers can write their channel ranges directly
//!   into the join buffer (each input single-consumer), letting the
//!   scheduler skip the merge copy. The numerics of the join are
//!   unchanged; only the timing engine's task graph shrinks.

use std::collections::{BTreeMap, BTreeSet};

use utensor::TensorError;

use crate::graph::{Graph, Node, NodeId};
use crate::layer::LayerKind;
use crate::weights::{Calibration, Weights};

/// A graph plus the per-node side tables a rewrite must keep aligned.
#[derive(Clone, Debug)]
pub struct Module {
    /// The (possibly rewritten) graph.
    pub graph: Graph,
    /// Per-node weights, if the module carries numerics.
    pub weights: Option<Weights>,
    /// Per-node quantization calibration, if present.
    pub calib: Option<Calibration>,
    /// Concat nodes (current-graph ids) whose merge the scheduler may
    /// elide because every producer can write in place.
    pub elided_concats: BTreeSet<NodeId>,
    /// Current id of every node of the *original* graph this module was
    /// created from (`None` once eliminated as dead). A node absorbed
    /// into another (fusion, pair elision) maps to its absorber, so the
    /// original output stays traceable across every rewrite.
    node_map: Vec<Option<NodeId>>,
    /// The original graph's designated output.
    original_output: NodeId,
}

impl Module {
    /// Wraps a graph with no side tables (structure-only rewriting).
    pub fn new(graph: Graph) -> Module {
        let n = graph.len();
        let original_output = graph.output();
        Module {
            graph,
            weights: None,
            calib: None,
            elided_concats: BTreeSet::new(),
            node_map: (0..n).map(|i| Some(NodeId(i))).collect(),
            original_output,
        }
    }

    /// Wraps a graph with its weights and calibration, validating that
    /// the side tables match the graph's node count.
    pub fn with_tables(
        graph: Graph,
        weights: Weights,
        calib: Calibration,
    ) -> Result<Module, TensorError> {
        if weights.len() != graph.len() {
            return Err(TensorError::BadGraph(format!(
                "weights cover {} nodes but the graph has {}",
                weights.len(),
                graph.len()
            )));
        }
        if calib.act_params.len() != graph.len() {
            return Err(TensorError::BadGraph(format!(
                "calibration covers {} nodes but the graph has {}",
                calib.act_params.len(),
                graph.len()
            )));
        }
        let mut m = Module::new(graph);
        m.weights = Some(weights);
        m.calib = Some(calib);
        Ok(m)
    }

    /// The current id of an original-graph node (`None` once dead-code
    /// eliminated; nodes absorbed by fusion map to their absorber).
    pub fn current_id(&self, original: NodeId) -> Option<NodeId> {
        self.node_map.get(original.0).copied().flatten()
    }

    /// The original graph's output, as a current-graph id.
    pub fn output_now(&self) -> Option<NodeId> {
        self.current_id(self.original_output)
    }
}

/// What one pass did to a module.
#[derive(Clone, Debug)]
pub struct PassReport {
    /// The pass's name.
    pub pass: &'static str,
    /// Number of rewrites applied (0 = the pass was a no-op here).
    pub rewrites: usize,
    /// Human-readable summary of the changes.
    pub detail: String,
}

/// A graph rewrite (or annotation) pass.
pub trait Pass {
    /// Stable pass name (used in reports and pass-list configs).
    fn name(&self) -> &'static str;
    /// Transforms the module in place.
    fn run(&self, module: &mut Module) -> Result<PassReport, TensorError>;
}

/// One pass's node-level decisions against the current graph, applied
/// atomically by [`apply_rewrite`].
#[derive(Clone, Debug, Default)]
struct Rewrite {
    /// Kept nodes whose kind changes (fusion flips `relu` flags).
    new_kinds: BTreeMap<usize, LayerKind>,
    /// Dropped nodes whose consumers re-read another (pre-rewrite) node.
    /// The target must be an ancestor, so redirect chains terminate.
    absorb: BTreeMap<usize, NodeId>,
    /// Dropped nodes with no consumers left (dead code).
    dead: BTreeSet<usize>,
}

impl Rewrite {
    fn is_empty(&self) -> bool {
        self.new_kinds.is_empty() && self.absorb.is_empty() && self.dead.is_empty()
    }
}

/// Rebuilds the module's graph and side tables under a [`Rewrite`],
/// remapping node ids everywhere they appear: node inputs, the output
/// designation, weights, calibration entries, elision annotations, and
/// the original-node map.
fn apply_rewrite(module: &mut Module, rw: &Rewrite) -> Result<(), TensorError> {
    let n = module.graph.len();

    // Resolve a pre-rewrite id to the pre-rewrite node that survives in
    // its place (following absorb chains, e.g. q3 -> q2 -> q1).
    let resolve = |mut id: NodeId| -> Result<NodeId, TensorError> {
        for _ in 0..=n {
            match rw.absorb.get(&id.0) {
                Some(&target) => id = target,
                None => return Ok(id),
            }
        }
        Err(TensorError::BadGraph(format!(
            "rewrite redirect cycle at {id}"
        )))
    };

    let keep: Vec<bool> = (0..n)
        .map(|i| !rw.absorb.contains_key(&i) && !rw.dead.contains(&i))
        .collect();
    let mut new_index = vec![usize::MAX; n];
    let mut next = 0usize;
    for (i, &k) in keep.iter().enumerate() {
        if k {
            new_index[i] = next;
            next += 1;
        }
    }
    let remap = |id: NodeId| -> Result<NodeId, TensorError> {
        let r = resolve(id)?;
        if !keep[r.0] {
            return Err(TensorError::BadGraph(format!(
                "rewrite redirects {id} to eliminated node {r}"
            )));
        }
        Ok(NodeId(new_index[r.0]))
    };

    let (name, input_shape, old_nodes, old_output) = module.graph.clone().into_parts();
    let mut nodes = Vec::with_capacity(next);
    for (i, node) in old_nodes.into_iter().enumerate() {
        if !keep[i] {
            continue;
        }
        let kind = rw.new_kinds.get(&i).cloned().unwrap_or(node.kind);
        let inputs = node
            .inputs
            .iter()
            .map(|&d| remap(d))
            .collect::<Result<Vec<_>, _>>()?;
        nodes.push(Node {
            name: node.name,
            kind,
            inputs,
        });
    }
    if rw.dead.contains(&old_output.0) {
        return Err(TensorError::BadGraph(format!(
            "rewrite eliminated the graph output {old_output}"
        )));
    }
    let output = remap(old_output)?;
    module.graph = Graph::from_parts(name, input_shape, nodes, output)?;

    // Side tables keep the entries of surviving nodes, in order.
    let filter_kept = |len: usize| -> Result<(), TensorError> {
        if len != n {
            return Err(TensorError::BadGraph(format!(
                "side table covers {len} nodes but the graph had {n}"
            )));
        }
        Ok(())
    };
    if let Some(w) = module.weights.take() {
        filter_kept(w.len())?;
        let kept = w
            .into_per_node()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| keep[*i])
            .map(|(_, lw)| lw)
            .collect();
        module.weights = Some(Weights::from_per_node(kept));
    }
    if let Some(c) = module.calib.take() {
        filter_kept(c.act_params.len())?;
        let act_params = c
            .act_params
            .iter()
            .enumerate()
            .filter(|(i, _)| keep[*i])
            .map(|(_, p)| *p)
            .collect();
        let weight_params = c
            .weight_params
            .iter()
            .enumerate()
            .filter(|(i, _)| keep[*i])
            .map(|(_, p)| *p)
            .collect();
        module.calib = Some(Calibration {
            input_params: c.input_params,
            act_params,
            weight_params,
        });
    }
    module.elided_concats = module
        .elided_concats
        .iter()
        .filter(|id| keep[id.0])
        .map(|id| NodeId(new_index[id.0]))
        .collect();
    for slot in module.node_map.iter_mut() {
        *slot = match slot {
            Some(cur) => {
                if rw.dead.contains(&cur.0) {
                    None
                } else {
                    Some(remap(*cur)?)
                }
            }
            None => None,
        };
    }
    Ok(())
}

/// Folds standalone `Relu` nodes into their single-consumer producer
/// when the producer supports a fused activation (`Conv`,
/// `DepthwiseConv`, `FullyConnected`, `Add` — all with `relu: false`).
///
/// Sound in every dtype: the fused kernels apply the activation exactly
/// as the standalone kernel would to their output, and a standalone
/// ReLU stores with its input's quantization params, so consumers see
/// bit-identical tensors.
pub struct FuseActivations;

impl Pass for FuseActivations {
    fn name(&self) -> &'static str {
        "fuse-activations"
    }

    fn run(&self, module: &mut Module) -> Result<PassReport, TensorError> {
        let g = &module.graph;
        let consumers = g.consumers();
        let mut rw = Rewrite::default();
        let mut fused = Vec::new();
        for (i, node) in g.nodes().iter().enumerate() {
            if !matches!(node.kind, LayerKind::Relu) {
                continue;
            }
            let [producer] = node.inputs[..] else {
                continue; // reads the graph input, or malformed
            };
            // The producer's pre-activation output must not be observed
            // by anyone else.
            if consumers.get(&Some(producer)).map(Vec::as_slice) != Some(&[NodeId(i)]) {
                continue;
            }
            let fused_kind = match &g.node(producer).kind {
                LayerKind::Conv {
                    oc,
                    k,
                    stride,
                    pad,
                    relu: false,
                } => LayerKind::Conv {
                    oc: *oc,
                    k: *k,
                    stride: *stride,
                    pad: *pad,
                    relu: true,
                },
                LayerKind::DepthwiseConv {
                    k,
                    stride,
                    pad,
                    relu: false,
                } => LayerKind::DepthwiseConv {
                    k: *k,
                    stride: *stride,
                    pad: *pad,
                    relu: true,
                },
                LayerKind::FullyConnected { out, relu: false } => LayerKind::FullyConnected {
                    out: *out,
                    relu: true,
                },
                LayerKind::Add { relu: false } => LayerKind::Add { relu: true },
                _ => continue,
            };
            rw.new_kinds.insert(producer.0, fused_kind);
            rw.absorb.insert(i, producer);
            fused.push(g.node(producer).name.clone());
        }
        let rewrites = rw.absorb.len();
        if !rw.is_empty() {
            apply_rewrite(module, &rw)?;
        }
        Ok(PassReport {
            pass: self.name(),
            rewrites,
            detail: if fused.is_empty() {
                "no fusable activations".into()
            } else {
                format!("fused relu into: {}", fused.join(", "))
            },
        })
    }
}

/// Drops the second of two adjacent `Quantize` nodes carrying equal
/// params. Fake-quantization is idempotent on its own grid in every
/// dtype, so all consumers of the second node can read the first's
/// output bit-for-bit.
pub struct ElideQuantPairs;

impl Pass for ElideQuantPairs {
    fn name(&self) -> &'static str {
        "elide-quant-pairs"
    }

    fn run(&self, module: &mut Module) -> Result<PassReport, TensorError> {
        let g = &module.graph;
        let mut rw = Rewrite::default();
        let mut elided = Vec::new();
        for (i, node) in g.nodes().iter().enumerate() {
            let LayerKind::Quantize { params } = node.kind else {
                continue;
            };
            let [producer] = node.inputs[..] else {
                continue;
            };
            let LayerKind::Quantize { params: prev } = g.node(producer).kind else {
                continue;
            };
            if prev == params {
                // Chains (q1 -> q2 -> q3) resolve transitively when the
                // rewrite is applied.
                rw.absorb.insert(i, producer);
                elided.push(node.name.clone());
            }
        }
        let rewrites = rw.absorb.len();
        if !rw.is_empty() {
            apply_rewrite(module, &rw)?;
        }
        Ok(PassReport {
            pass: self.name(),
            rewrites,
            detail: if elided.is_empty() {
                "no redundant quantize pairs".into()
            } else {
                format!("elided: {}", elided.join(", "))
            },
        })
    }
}

/// Removes nodes that cannot reach the designated output.
pub struct EliminateDeadNodes;

impl Pass for EliminateDeadNodes {
    fn name(&self) -> &'static str {
        "eliminate-dead-nodes"
    }

    fn run(&self, module: &mut Module) -> Result<PassReport, TensorError> {
        let g = &module.graph;
        let mut live = vec![false; g.len()];
        let mut stack = vec![g.output()];
        while let Some(id) = stack.pop() {
            if live[id.0] {
                continue;
            }
            live[id.0] = true;
            stack.extend(g.node(id).inputs.iter().copied());
        }
        let mut rw = Rewrite::default();
        let mut removed = Vec::new();
        for (i, l) in live.iter().enumerate() {
            if !l {
                rw.dead.insert(i);
                removed.push(g.node(NodeId(i)).name.clone());
            }
        }
        let rewrites = rw.dead.len();
        if !rw.is_empty() {
            apply_rewrite(module, &rw)?;
        }
        Ok(PassReport {
            pass: self.name(),
            rewrites,
            detail: if removed.is_empty() {
                "no dead nodes".into()
            } else {
                format!("removed: {}", removed.join(", "))
            },
        })
    }
}

/// Marks concat nodes whose merge copy the scheduler may skip: every
/// input branch ends in a node consumed *only* by this concat, so each
/// branch can write its channel range directly into the join buffer.
///
/// Purely an annotation — the graph is untouched and the functional
/// numerics are unchanged; the timing engine replaces the concat's
/// compute-and-copy with a zero-span merge point. Concats fed by
/// another elided concat are skipped (the inner buffer would itself
/// have to be a view), which a topological sweep handles naturally.
pub struct ElideConcats;

impl Pass for ElideConcats {
    fn name(&self) -> &'static str {
        "elide-concats"
    }

    fn run(&self, module: &mut Module) -> Result<PassReport, TensorError> {
        let g = &module.graph;
        let consumers = g.consumers();
        let mut elided = BTreeSet::new();
        let mut names = Vec::new();
        for (i, node) in g.nodes().iter().enumerate() {
            if !matches!(node.kind, LayerKind::Concat) || node.inputs.len() < 2 {
                continue;
            }
            let eligible = node.inputs.iter().all(|&b| {
                consumers.get(&Some(b)).map(Vec::as_slice) == Some(&[NodeId(i)])
                    && !elided.contains(&b)
            });
            if eligible {
                elided.insert(NodeId(i));
                names.push(node.name.clone());
            }
        }
        let rewrites = elided.len();
        module.elided_concats = elided;
        Ok(PassReport {
            pass: self.name(),
            rewrites,
            detail: if names.is_empty() {
                "no elidable concats".into()
            } else {
                format!("elided merge of: {}", names.join(", "))
            },
        })
    }
}

/// Applies an ordered pass list, revalidating after every pass.
pub struct PassRunner {
    passes: Vec<Box<dyn Pass>>,
}

impl PassRunner {
    /// A runner over an explicit pass list.
    pub fn new(passes: Vec<Box<dyn Pass>>) -> PassRunner {
        PassRunner { passes }
    }

    /// The default pipeline: fusion, quantize-pair elision, dead-node
    /// elimination, then concat elision (annotation last, so it sees
    /// final node ids).
    pub fn default_pipeline() -> PassRunner {
        PassRunner::new(vec![
            Box::new(FuseActivations),
            Box::new(ElideQuantPairs),
            Box::new(EliminateDeadNodes),
            Box::new(ElideConcats),
        ])
    }

    /// The passes' names, in run order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass in order, returning one report per pass.
    ///
    /// After each pass the graph is revalidated (shape inference doubles
    /// as structural validation) and the original output must still be
    /// reachable through the module's node map.
    pub fn run(&self, module: &mut Module) -> Result<Vec<PassReport>, TensorError> {
        let mut reports = Vec::with_capacity(self.passes.len());
        for pass in &self.passes {
            let report = pass.run(module)?;
            module.graph.infer_shapes()?;
            let out = module.output_now().ok_or_else(|| {
                TensorError::BadGraph(format!(
                    "pass '{}' eliminated the original output",
                    report.pass
                ))
            })?;
            debug_assert_eq!(
                out,
                module.graph.output(),
                "pass '{}' moved the output without updating the designation",
                report.pass
            );
            if let Some(w) = &module.weights {
                debug_assert_eq!(w.len(), module.graph.len());
            }
            if let Some(c) = &module.calib {
                debug_assert_eq!(c.act_params.len(), module.graph.len());
            }
            reports.push(report);
        }
        Ok(reports)
    }
}

/// Runs the default pipeline over a bare graph, returning the optimized
/// graph, the concat-elision set, and the per-pass reports.
pub fn optimize(graph: Graph) -> Result<(Graph, BTreeSet<NodeId>, Vec<PassReport>), TensorError> {
    let mut module = Module::new(graph);
    let reports = PassRunner::default_pipeline().run(&mut module)?;
    Ok((module.graph, module.elided_concats, reports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelId;
    use utensor::{QuantParams, Shape};

    fn conv(oc: usize, relu: bool) -> LayerKind {
        LayerKind::Conv {
            oc,
            k: 3,
            stride: 1,
            pad: 1,
            relu,
        }
    }

    #[test]
    fn fuses_relu_into_single_consumer_producer() {
        let mut g = Graph::new("f", Shape::nchw(1, 3, 8, 8));
        let c = g.add_input_layer("conv", conv(4, false));
        let r = g.add("relu", LayerKind::Relu, c);
        g.add(
            "fc",
            LayerKind::FullyConnected {
                out: 10,
                relu: false,
            },
            r,
        );
        let mut m = Module::new(g);
        let report = FuseActivations.run(&mut m).unwrap();
        assert_eq!(report.rewrites, 1);
        assert_eq!(m.graph.len(), 2);
        assert!(matches!(
            m.graph.node(NodeId(0)).kind,
            LayerKind::Conv { relu: true, .. }
        ));
        // The fc now reads the fused conv.
        assert_eq!(m.graph.node(NodeId(1)).inputs, vec![NodeId(0)]);
        // The original relu maps to its absorber; the output moved with
        // the renumbering.
        assert_eq!(m.current_id(NodeId(1)), Some(NodeId(0)));
        assert_eq!(m.graph.output(), NodeId(1));
    }

    #[test]
    fn fusion_respects_other_consumers_of_the_preactivation() {
        // conv feeds both a relu and a second consumer: the
        // pre-activation tensor is observed, so fusion must not fire.
        let mut g = Graph::new("f", Shape::nchw(1, 3, 8, 8));
        let c = g.add_input_layer("conv", conv(4, false));
        let r = g.add("relu", LayerKind::Relu, c);
        let p = g.add(
            "pool",
            LayerKind::Pool {
                func: crate::layer::PoolFunc::Max,
                k: 2,
                stride: 2,
                pad: 0,
            },
            c,
        );
        let _ = (r, p);
        g.add_multi("join", LayerKind::Concat, &[r, p]);
        let mut m = Module::new(g);
        let report = FuseActivations.run(&mut m).unwrap();
        assert_eq!(report.rewrites, 0);
        assert_eq!(m.graph.len(), 4);
    }

    #[test]
    fn fusion_fires_on_resnet_add() {
        let g = ModelId::ResNet18.build_miniature();
        let before_relu = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, LayerKind::Relu))
            .count();
        assert!(before_relu > 0, "resnet has standalone relus");
        let mut m = Module::new(g);
        let report = FuseActivations.run(&mut m).unwrap();
        assert_eq!(report.rewrites, before_relu);
        assert!(m
            .graph
            .nodes()
            .iter()
            .all(|n| !matches!(n.kind, LayerKind::Relu)));
        assert!(m
            .graph
            .nodes()
            .iter()
            .any(|n| matches!(n.kind, LayerKind::Add { relu: true })));
        m.graph.infer_shapes().unwrap();
    }

    #[test]
    fn quant_pair_chain_elides_transitively() {
        let p = QuantParams::from_range(-2.0, 2.0).unwrap();
        let other = QuantParams::from_range(-4.0, 4.0).unwrap();
        let mut g = Graph::new("q", Shape::nchw(1, 3, 4, 4));
        let c = g.add_input_layer("conv", conv(4, true));
        let q1 = g.add("q1", LayerKind::Quantize { params: p }, c);
        let q2 = g.add("q2", LayerKind::Quantize { params: p }, q1);
        let q3 = g.add("q3", LayerKind::Quantize { params: p }, q2);
        let qx = g.add("qx", LayerKind::Quantize { params: other }, q3);
        g.add("softmax", LayerKind::Softmax, qx);
        let mut m = Module::new(g);
        let report = ElideQuantPairs.run(&mut m).unwrap();
        // q2 and q3 collapse into q1; qx has different params and stays.
        assert_eq!(report.rewrites, 2);
        assert_eq!(m.graph.len(), 4);
        let names: Vec<&str> = m.graph.nodes().iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, vec!["conv", "q1", "qx", "softmax"]);
        assert_eq!(m.graph.node(NodeId(2)).inputs, vec![NodeId(1)]);
    }

    #[test]
    fn dead_nodes_eliminated_but_output_kept() {
        let mut g = Graph::new("d", Shape::nchw(1, 3, 8, 8));
        let c = g.add_input_layer("conv", conv(4, true));
        let live = g.add("live", conv(4, true), c);
        let _dead = g.add("dead", conv(2, true), c);
        let _deader = g.add("deader", LayerKind::Relu, _dead);
        g.set_output(live);
        let mut m = Module::new(g);
        let report = EliminateDeadNodes.run(&mut m).unwrap();
        assert_eq!(report.rewrites, 2);
        assert_eq!(m.graph.len(), 2);
        assert_eq!(m.graph.output(), NodeId(1));
        assert_eq!(m.current_id(NodeId(2)), None);
        assert_eq!(m.current_id(NodeId(3)), None);
    }

    #[test]
    fn concat_elision_marks_single_consumer_joins_only() {
        let mut g = Graph::new("c", Shape::nchw(1, 4, 8, 8));
        let stem = g.add_input_layer("stem", conv(4, true));
        let a = g.add("a", conv(2, true), stem);
        let b = g.add("b", conv(3, true), stem);
        let j1 = g.add_multi("j1", LayerKind::Concat, &[a, b]);
        // Second join re-reads branch `a`'s producer? No — feed it the
        // stem (multi-consumer) and the first join.
        let j2 = g.add_multi("j2", LayerKind::Concat, &[j1, stem]);
        g.add("gap", LayerKind::GlobalAvgPool, j2);
        let mut m = Module::new(g);
        let report = ElideConcats.run(&mut m).unwrap();
        // j1 is elidable (a and b each feed only j1). j2 is not: stem
        // has three consumers, and j1 is already elided.
        assert_eq!(report.rewrites, 1);
        assert_eq!(m.elided_concats, BTreeSet::from([j1]));
    }

    #[test]
    fn nested_eligible_concats_elide_outer_only_inner() {
        // Both joins structurally single-consumer: the inner one wins,
        // the outer is skipped (no views-of-views).
        let mut g = Graph::new("n", Shape::nchw(1, 4, 8, 8));
        let stem = g.add_input_layer("stem", conv(4, true));
        let a = g.add("a", conv(2, true), stem);
        let b = g.add("b", conv(3, true), stem);
        let inner = g.add_multi("inner", LayerKind::Concat, &[a, b]);
        let c = g.add("c", conv(2, true), stem);
        let outer = g.add_multi("outer", LayerKind::Concat, &[inner, c]);
        g.add("gap", LayerKind::GlobalAvgPool, outer);
        let mut m = Module::new(g);
        ElideConcats.run(&mut m).unwrap();
        assert_eq!(m.elided_concats, BTreeSet::from([inner]));
    }

    #[test]
    fn googlenet_concats_all_elide() {
        let g = ModelId::GoogLeNet.build_miniature();
        let concats = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, LayerKind::Concat))
            .count();
        let mut m = Module::new(g);
        let report = ElideConcats.run(&mut m).unwrap();
        assert_eq!(report.rewrites, concats);
        assert!(concats >= 2, "miniature googlenet keeps its inceptions");
    }

    #[test]
    fn default_pipeline_is_noop_on_already_fused_zoo_nets() {
        for id in ModelId::EVALUATED {
            let g = id.build_miniature();
            let n = g.len();
            let (opt, elided, reports) = optimize(g).unwrap();
            // The zoo pre-fuses conv activations and has no quantize
            // pairs or dead nodes: only concat elision may fire.
            assert_eq!(opt.len(), n, "{}", id.name());
            for r in &reports {
                if r.pass != "elide-concats" {
                    assert_eq!(r.rewrites, 0, "{}: {}", id.name(), r.pass);
                }
            }
            if matches!(id, ModelId::GoogLeNet | ModelId::SqueezeNet) {
                assert!(!elided.is_empty(), "{} has elidable concats", id.name());
            }
        }
    }

    #[test]
    fn runner_keeps_side_tables_aligned() {
        let g = ModelId::ResNet18.build_miniature();
        let w = Weights::random(&g, 3).unwrap();
        let calib = Calibration::synthetic(&g, &w);
        let mut m = Module::with_tables(g.clone(), w, calib).unwrap();
        let reports = PassRunner::default_pipeline().run(&mut m).unwrap();
        assert!(reports.iter().any(|r| r.rewrites > 0));
        let w = m.weights.as_ref().unwrap();
        let c = m.calib.as_ref().unwrap();
        assert_eq!(w.len(), m.graph.len());
        assert_eq!(c.act_params.len(), m.graph.len());
        // Fused convs kept their filters: every conv node still has one.
        for (i, node) in m.graph.nodes().iter().enumerate() {
            if matches!(node.kind, LayerKind::Conv { .. }) {
                assert!(
                    w.of(NodeId(i)).filter.is_some(),
                    "{} lost weights",
                    node.name
                );
            }
        }
        // The original output still resolves.
        assert_eq!(m.output_now(), Some(m.graph.output()));
    }

    #[test]
    fn mismatched_side_tables_rejected() {
        let g = ModelId::LeNet.build_miniature();
        let other = ModelId::AlexNet.build_miniature();
        let w = Weights::random(&other, 1).unwrap();
        let calib = Calibration::synthetic(&other, &w);
        assert!(Module::with_tables(g, w, calib).is_err());
    }
}
