//! Graph structure analysis: divergent-branch detection (§5) and the
//! Table 1 applicability matrix.
//!
//! The branch distributor needs to know which parts of a network form
//! *divergent data-parallel branches*: a fork node whose output feeds two
//! or more disjoint layer chains that reconverge at a single concat
//! (GoogLeNet's Inception modules, SqueezeNet's Fire modules).

use std::collections::BTreeMap;

use crate::graph::{Graph, NodeId};
use crate::layer::LayerKind;

/// A detected fork/join region of divergent branches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BranchGroup {
    /// The node whose output all branches consume (`None` = the graph
    /// input).
    pub fork: Option<NodeId>,
    /// The concat node where the branches reconverge.
    pub join: NodeId,
    /// The branches, each a chain of node ids in execution order. A
    /// branch may be empty (the fork wired straight into the join).
    pub branches: Vec<Vec<NodeId>>,
}

impl BranchGroup {
    /// Total number of nodes across all branches.
    pub fn node_count(&self) -> usize {
        self.branches.iter().map(Vec::len).sum()
    }
}

/// Finds every fork/join branch group in the graph.
///
/// A concat qualifies when each of its inputs is reached from a common
/// fork through a chain of single-input, single-consumer nodes. Concats
/// whose inputs converge from different forks (or that share interior
/// nodes) are skipped — branch distribution simply does not apply there.
pub fn find_branch_groups(graph: &Graph) -> Vec<BranchGroup> {
    let consumers = graph.consumers();
    let n_consumers = |id: NodeId| consumers.get(&Some(id)).map_or(0, Vec::len);

    let mut groups = Vec::new();
    for (i, node) in graph.nodes().iter().enumerate() {
        if !matches!(node.kind, LayerKind::Concat) || node.inputs.len() < 2 {
            continue;
        }
        let join = NodeId(i);
        let mut branches: Vec<Vec<NodeId>> = Vec::new();
        let mut forks: Vec<Option<NodeId>> = Vec::new();
        let mut ok = true;
        for &end in &node.inputs {
            let mut chain = Vec::new();
            let mut cur = end;
            let fork = loop {
                if n_consumers(cur) != 1 {
                    // `cur` feeds other nodes too: it is the fork itself
                    // and does not belong to the branch.
                    break Some(cur);
                }
                chain.push(cur);
                let ins = &graph.node(cur).inputs;
                match ins.as_slice() {
                    [] => break None, // reached the graph input
                    [single] => {
                        if n_consumers(*single) == 1 {
                            cur = *single;
                        } else {
                            break Some(*single);
                        }
                    }
                    _ => {
                        // Multi-input node inside a branch (nested concat):
                        // treat this chain as ending here, forked at the
                        // multi-input node itself.
                        break Some(cur);
                    }
                }
            };
            chain.reverse();
            // A chain that "ends at the fork" with an empty chain means
            // the join consumes the fork's output directly.
            if chain.is_empty() && fork != Some(end) {
                ok = false;
                break;
            }
            branches.push(chain);
            forks.push(fork);
        }
        if !ok || branches.len() < 2 {
            continue;
        }
        // All branches must leave from the same fork.
        let fork = forks[0];
        if !forks.iter().all(|f| *f == fork) {
            continue;
        }
        groups.push(BranchGroup {
            fork,
            join,
            branches,
        });
    }
    groups
}

/// Whether each μLayer mechanism applies to a network (Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Applicability {
    /// Channel-wise workload distribution (§3.2): the network has
    /// splittable conv / FC / pooling layers.
    pub channel_distribution: bool,
    /// Processor-friendly quantization (§4.2): the network can run with
    /// 8-bit linear quantization (always true for these CNNs).
    pub processor_quantization: bool,
    /// Branch distribution (§5): the network has divergent branches.
    pub branch_distribution: bool,
}

/// Computes the Table 1 row for a network.
pub fn applicability(graph: &Graph) -> Applicability {
    Applicability {
        channel_distribution: graph.nodes().iter().any(|n| n.kind.is_distributable()),
        processor_quantization: !graph.is_empty(),
        branch_distribution: !find_branch_groups(graph).is_empty(),
    }
}

/// Per-operator MAC totals, for workload characterization reports.
pub fn macs_by_op(graph: &Graph) -> BTreeMap<&'static str, u64> {
    let mut m = BTreeMap::new();
    if let Ok(macs) = graph.macs() {
        for (node, &cost) in graph.nodes().iter().zip(macs.iter()) {
            *m.entry(node.kind.op_name()).or_insert(0) += cost;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use utensor::Shape;

    fn conv(oc: usize) -> LayerKind {
        LayerKind::Conv {
            oc,
            k: 1,
            stride: 1,
            pad: 0,
            relu: true,
        }
    }

    /// stem -> {b0: conv} {b1: conv->conv} {b2: (fork direct)} -> concat
    fn inception_like() -> (Graph, NodeId, NodeId) {
        let mut g = Graph::new("incep", Shape::nchw(1, 8, 8, 8));
        let stem = g.add_input_layer("stem", conv(8));
        let b0 = g.add("b0", conv(4), stem);
        let b1a = g.add("b1a", conv(2), stem);
        let b1b = g.add("b1b", conv(6), b1a);
        let join = g.add_multi("join", LayerKind::Concat, &[b0, b1b, stem]);
        (g, stem, join)
    }

    #[test]
    fn detects_fork_join() {
        let (g, stem, join) = inception_like();
        let groups = find_branch_groups(&g);
        assert_eq!(groups.len(), 1);
        let grp = &groups[0];
        assert_eq!(grp.fork, Some(stem));
        assert_eq!(grp.join, join);
        assert_eq!(grp.branches.len(), 3);
        assert_eq!(grp.branches[0].len(), 1);
        assert_eq!(grp.branches[1].len(), 2);
        assert!(grp.branches[2].is_empty()); // direct fork -> join wire
        assert_eq!(grp.node_count(), 3);
    }

    #[test]
    fn linear_graph_has_no_groups() {
        let mut g = Graph::new("linear", Shape::nchw(1, 3, 8, 8));
        let a = g.add_input_layer("a", conv(4));
        let b = g.add("b", conv(4), a);
        g.add("c", conv(4), b);
        assert!(find_branch_groups(&g).is_empty());
        let app = applicability(&g);
        assert!(app.channel_distribution);
        assert!(app.processor_quantization);
        assert!(!app.branch_distribution);
    }

    #[test]
    fn branches_from_graph_input() {
        let mut g = Graph::new("input-fork", Shape::nchw(1, 3, 4, 4));
        let a = g.add_input_layer("a", conv(2));
        let b = g.add_input_layer("b", conv(3));
        g.add_multi("join", LayerKind::Concat, &[a, b]);
        let groups = find_branch_groups(&g);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].fork, None);
    }

    #[test]
    fn concat_from_different_forks_skipped() {
        let mut g = Graph::new("two-forks", Shape::nchw(1, 3, 4, 4));
        let f1 = g.add_input_layer("f1", conv(4));
        let f2 = g.add("f2", conv(4), f1);
        // f1 has two consumers (f2, a); f2 has two consumers (b, c).
        let a = g.add("a", conv(2), f1);
        let b = g.add("b", conv(2), f2);
        let c = g.add("c", conv(2), f2);
        g.add_multi("j1", LayerKind::Concat, &[a, b]);
        // j2 is a clean fork/join on f2.
        g.add_multi("j2", LayerKind::Concat, &[b, c]);
        let groups = find_branch_groups(&g);
        // j1 mixes forks f1 and f2 -> skipped. j2: b and c both fork at
        // f2, but b is consumed by j1 AND j2 -> not single-consumer ->
        // empty chain with fork == b itself... fork mismatch -> skipped.
        assert!(groups.is_empty());
    }

    #[test]
    fn nested_modules_detected_independently() {
        // Two sequential inception-like modules.
        let mut g = Graph::new("two-modules", Shape::nchw(1, 4, 4, 4));
        let stem = g.add_input_layer("stem", conv(4));
        let a0 = g.add("m1b0", conv(2), stem);
        let a1 = g.add("m1b1", conv(2), stem);
        let j1 = g.add_multi("m1join", LayerKind::Concat, &[a0, a1]);
        let b0 = g.add("m2b0", conv(3), j1);
        let b1 = g.add("m2b1", conv(1), j1);
        g.add_multi("m2join", LayerKind::Concat, &[b0, b1]);
        let groups = find_branch_groups(&g);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].fork, Some(stem));
        assert_eq!(groups[1].fork, Some(j1));
    }

    #[test]
    fn macs_by_op_sums() {
        let (g, _, _) = inception_like();
        let m = macs_by_op(&g);
        assert!(m["conv"] > 0);
        // A concat moves every input element once: its op count is the
        // total input volume (== its output volume), not zero.
        let join = g.output();
        let join_numel = g.infer_shapes().unwrap()[join.0].numel() as u64;
        assert_eq!(m.get("concat").copied().unwrap_or(0), join_numel);
    }
}
