//! Layer IR: the operator vocabulary of the five evaluated networks.

use utensor::{QuantParams, Shape, TensorError};

/// The window function of a pooling layer (mirror of the kernel-side enum,
/// kept separate so the IR does not depend on kernel implementations).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PoolFunc {
    /// Maximum over the window.
    Max,
    /// Average over the window.
    Avg,
}

/// One layer's operator and hyperparameters.
///
/// Spatial convention: square kernels, symmetric stride/padding — all five
/// evaluated networks satisfy this.
#[derive(Clone, Debug, PartialEq)]
pub enum LayerKind {
    /// Standard convolution with `oc` output channels and an optional
    /// fused ReLU.
    Conv {
        /// Output channels.
        oc: usize,
        /// Square kernel side.
        k: usize,
        /// Stride.
        stride: usize,
        /// Symmetric zero padding.
        pad: usize,
        /// Fused ReLU.
        relu: bool,
    },
    /// Depthwise convolution (one filter per input channel).
    DepthwiseConv {
        /// Square kernel side.
        k: usize,
        /// Stride.
        stride: usize,
        /// Symmetric zero padding.
        pad: usize,
        /// Fused ReLU.
        relu: bool,
    },
    /// Fully-connected layer over the flattened input.
    FullyConnected {
        /// Output neurons.
        out: usize,
        /// Fused ReLU.
        relu: bool,
    },
    /// Spatial pooling.
    Pool {
        /// Window function.
        func: PoolFunc,
        /// Square window side.
        k: usize,
        /// Stride.
        stride: usize,
        /// Symmetric padding.
        pad: usize,
    },
    /// Global average pooling to `1x1`.
    GlobalAvgPool,
    /// Across-channel local response normalization (AlexNet).
    Lrn {
        /// Window size across channels.
        n: usize,
        /// Scaling coefficient.
        alpha: f32,
        /// Exponent.
        beta: f32,
        /// Additive constant.
        k: f32,
    },
    /// Standalone ReLU.
    Relu,
    /// Channel concatenation of all inputs (Inception / Fire joins).
    Concat,
    /// Elementwise addition of two inputs (residual skip connections)
    /// with an optional fused ReLU (ResNet joins activate after the sum).
    Add {
        /// Fused ReLU applied to the sum.
        relu: bool,
    },
    /// Fake-quantization through an explicit 8-bit affine grid
    /// (quantize→dequantize against `params`). Boundary lowering inserts
    /// these where a tensor crosses a CPU↔GPU part boundary; adjacent
    /// pairs that agree on `params` are redundant (fake-quant is
    /// idempotent) and elided by the quant-pair elision pass.
    Quantize {
        /// The affine grid the tensor is snapped through.
        params: QuantParams,
    },
    /// Softmax over the flattened input (classifier head).
    Softmax,
}

impl LayerKind {
    /// Short operator name for reports.
    pub fn op_name(&self) -> &'static str {
        match self {
            LayerKind::Conv { .. } => "conv",
            LayerKind::DepthwiseConv { .. } => "dwconv",
            LayerKind::FullyConnected { .. } => "fc",
            LayerKind::Pool {
                func: PoolFunc::Max,
                ..
            } => "maxpool",
            LayerKind::Pool {
                func: PoolFunc::Avg,
                ..
            } => "avgpool",
            LayerKind::GlobalAvgPool => "gavgpool",
            LayerKind::Lrn { .. } => "lrn",
            LayerKind::Relu => "relu",
            LayerKind::Concat => "concat",
            LayerKind::Add { .. } => "add",
            LayerKind::Quantize { .. } => "quantize",
            LayerKind::Softmax => "softmax",
        }
    }

    /// True for layers that hold trainable weights (filters + bias).
    pub fn has_weights(&self) -> bool {
        matches!(
            self,
            LayerKind::Conv { .. }
                | LayerKind::DepthwiseConv { .. }
                | LayerKind::FullyConnected { .. }
        )
    }

    /// True for the layer classes the channel-wise workload distribution
    /// (§3.2) can split: conv / FC (output channels) and pooling (input
    /// channels).
    pub fn is_distributable(&self) -> bool {
        matches!(
            self,
            LayerKind::Conv { .. }
                | LayerKind::DepthwiseConv { .. }
                | LayerKind::FullyConnected { .. }
                | LayerKind::Pool { .. }
                | LayerKind::GlobalAvgPool
        )
    }

    /// Infers the output shape from the input shapes.
    ///
    /// Single-input layers get a one-element slice; [`LayerKind::Concat`]
    /// accepts any positive number of inputs.
    pub fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape, TensorError> {
        let one = || -> Result<&Shape, TensorError> {
            if inputs.len() == 1 {
                Ok(inputs[0])
            } else {
                Err(TensorError::BadConcat(format!(
                    "{} expects exactly 1 input, got {}",
                    self.op_name(),
                    inputs.len()
                )))
            }
        };
        match self {
            LayerKind::Conv {
                oc, k, stride, pad, ..
            } => {
                let s = one()?;
                let oh = ukernels::out_dim(s.h(), *k, *stride, *pad);
                let ow = ukernels::out_dim(s.w(), *k, *stride, *pad);
                match (oh, ow) {
                    (Some(oh), Some(ow)) => Ok(Shape::nchw(s.n(), *oc, oh, ow)),
                    _ => Err(TensorError::BadConcat(format!(
                        "conv k={k} s={stride} p={pad} does not fit {s}"
                    ))),
                }
            }
            LayerKind::DepthwiseConv { k, stride, pad, .. } => {
                let s = one()?;
                let oh = ukernels::out_dim(s.h(), *k, *stride, *pad);
                let ow = ukernels::out_dim(s.w(), *k, *stride, *pad);
                match (oh, ow) {
                    (Some(oh), Some(ow)) => Ok(Shape::nchw(s.n(), s.c(), oh, ow)),
                    _ => Err(TensorError::BadConcat(format!(
                        "dwconv k={k} s={stride} p={pad} does not fit {s}"
                    ))),
                }
            }
            LayerKind::FullyConnected { out, .. } => {
                let s = one()?;
                Ok(Shape::nchw(s.dim(0), *out, 1, 1))
            }
            LayerKind::Pool { k, stride, pad, .. } => {
                let s = one()?;
                let oh = ukernels::out_dim(s.h(), *k, *stride, *pad);
                let ow = ukernels::out_dim(s.w(), *k, *stride, *pad);
                match (oh, ow) {
                    (Some(oh), Some(ow)) => Ok(Shape::nchw(s.n(), s.c(), oh, ow)),
                    _ => Err(TensorError::BadConcat(format!(
                        "pool k={k} s={stride} p={pad} does not fit {s}"
                    ))),
                }
            }
            LayerKind::GlobalAvgPool => {
                let s = one()?;
                Ok(Shape::nchw(s.n(), s.c(), 1, 1))
            }
            LayerKind::Lrn { .. }
            | LayerKind::Relu
            | LayerKind::Quantize { .. }
            | LayerKind::Softmax => Ok(one()?.clone()),
            LayerKind::Add { .. } => {
                if inputs.len() != 2 {
                    return Err(TensorError::BadConcat(format!(
                        "add expects exactly 2 inputs, got {}",
                        inputs.len()
                    )));
                }
                if inputs[0] != inputs[1] {
                    return Err(TensorError::ShapeMismatch {
                        expected: inputs[0].clone(),
                        found: inputs[1].clone(),
                    });
                }
                Ok(inputs[0].clone())
            }
            LayerKind::Concat => {
                let first = inputs.first().ok_or_else(|| {
                    TensorError::BadConcat("concat expects at least 1 input".into())
                })?;
                let mut c = 0usize;
                for s in inputs {
                    if s.rank() != 4
                        || s.n() != first.n()
                        || s.h() != first.h()
                        || s.w() != first.w()
                    {
                        return Err(TensorError::BadConcat(format!(
                            "concat inputs disagree: {s} vs {first}"
                        )));
                    }
                    c += s.c();
                }
                Ok(Shape::nchw(first.n(), c, first.h(), first.w()))
            }
        }
    }

    /// Multiply-accumulate count of the layer (the unit of the timing
    /// model's compute roofline). Non-MAC layers report elementwise-op
    /// counts on the same scale.
    pub fn macs(&self, input: &Shape, output: &Shape) -> u64 {
        match self {
            LayerKind::Conv { k, .. } => output.numel() as u64 * (input.c() * k * k) as u64,
            LayerKind::DepthwiseConv { k, .. } => output.numel() as u64 * (k * k) as u64,
            LayerKind::FullyConnected { .. } => {
                (output.numel() * input.numel() / input.dim(0).max(1)) as u64
            }
            LayerKind::Pool { k, .. } => output.numel() as u64 * (k * k) as u64,
            LayerKind::GlobalAvgPool => input.numel() as u64,
            LayerKind::Lrn { n, .. } => input.numel() as u64 * (*n as u64 + 8),
            LayerKind::Relu | LayerKind::Quantize { .. } | LayerKind::Softmax => {
                input.numel() as u64
            }
            LayerKind::Add { .. } => input.numel() as u64,
            // A concat moves every element of every input once; its op
            // count is the total input volume, which tiles the output
            // exactly. (Reporting 0 here undercounted merge work on
            // fork/join networks.)
            LayerKind::Concat => output.numel() as u64,
        }
    }

    /// [`LayerKind::macs`] generalized over a node's full input set:
    /// multi-input nodes (concat, add) are costed over *all* input
    /// shapes instead of the first input alone.
    pub fn macs_multi(&self, inputs: &[&Shape], output: &Shape) -> u64 {
        match self {
            LayerKind::Concat => inputs.iter().map(|s| s.numel() as u64).sum(),
            LayerKind::Add { .. } => output.numel() as u64,
            _ => self.macs(inputs.first().copied().unwrap_or(output), output),
        }
    }

    /// Number of filter/weight elements (0 for weight-free layers).
    pub fn weight_count(&self, input: &Shape) -> usize {
        match self {
            LayerKind::Conv { oc, k, .. } => oc * input.c() * k * k,
            LayerKind::DepthwiseConv { k, .. } => input.c() * k * k,
            LayerKind::FullyConnected { out, .. } => out * (input.numel() / input.dim(0).max(1)),
            _ => 0,
        }
    }

    /// Number of bias elements (0 for weight-free layers).
    pub fn bias_count(&self, input: &Shape) -> usize {
        match self {
            LayerKind::Conv { oc, .. } => *oc,
            LayerKind::DepthwiseConv { .. } => input.c(),
            LayerKind::FullyConnected { out, .. } => *out,
            _ => 0,
        }
    }

    /// The shape of the layer's filter tensor, if it has one.
    pub fn weight_shape(&self, input: &Shape) -> Option<Shape> {
        match self {
            LayerKind::Conv { oc, k, .. } => Some(Shape::oihw(*oc, input.c(), *k, *k)),
            LayerKind::DepthwiseConv { k, .. } => Some(Shape::new(vec![input.c(), 1, *k, *k])),
            LayerKind::FullyConnected { out, .. } => {
                Some(Shape::new(vec![*out, input.numel() / input.dim(0).max(1)]))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_and_macs() {
        let kind = LayerKind::Conv {
            oc: 64,
            k: 3,
            stride: 1,
            pad: 1,
            relu: true,
        };
        let input = Shape::nchw(1, 3, 224, 224);
        let out = kind.infer_shape(&[&input]).unwrap();
        assert_eq!(out.dims(), &[1, 64, 224, 224]);
        assert_eq!(kind.macs(&input, &out), 64 * 224 * 224 * 27);
        assert_eq!(kind.weight_count(&input), 64 * 3 * 3 * 3);
        assert_eq!(kind.bias_count(&input), 64);
        assert_eq!(kind.weight_shape(&input).unwrap().dims(), &[64, 3, 3, 3]);
    }

    #[test]
    fn depthwise_preserves_channels() {
        let kind = LayerKind::DepthwiseConv {
            k: 3,
            stride: 2,
            pad: 1,
            relu: true,
        };
        let input = Shape::nchw(1, 64, 112, 112);
        let out = kind.infer_shape(&[&input]).unwrap();
        assert_eq!(out.dims(), &[1, 64, 56, 56]);
        assert_eq!(kind.macs(&input, &out), 64 * 56 * 56 * 9);
    }

    #[test]
    fn fc_shape() {
        let kind = LayerKind::FullyConnected {
            out: 4096,
            relu: true,
        };
        let input = Shape::nchw(1, 512, 7, 7);
        let out = kind.infer_shape(&[&input]).unwrap();
        assert_eq!(out.dims(), &[1, 4096, 1, 1]);
        assert_eq!(kind.macs(&input, &out), 4096 * 512 * 49);
        assert_eq!(kind.weight_shape(&input).unwrap().dims(), &[4096, 512 * 49]);
    }

    #[test]
    fn pool_shapes() {
        let kind = LayerKind::Pool {
            func: PoolFunc::Max,
            k: 3,
            stride: 2,
            pad: 1,
        };
        let input = Shape::nchw(1, 64, 112, 112);
        let out = kind.infer_shape(&[&input]).unwrap();
        assert_eq!(out.dims(), &[1, 64, 56, 56]);
        let g = LayerKind::GlobalAvgPool;
        assert_eq!(g.infer_shape(&[&input]).unwrap().dims(), &[1, 64, 1, 1]);
    }

    #[test]
    fn concat_sums_channels() {
        let kind = LayerKind::Concat;
        let a = Shape::nchw(1, 64, 28, 28);
        let b = Shape::nchw(1, 128, 28, 28);
        let c = Shape::nchw(1, 32, 28, 28);
        let out = kind.infer_shape(&[&a, &b, &c]).unwrap();
        assert_eq!(out.dims(), &[1, 224, 28, 28]);
        // The op count covers ALL inputs (== the output volume), not the
        // first input alone.
        assert_eq!(kind.macs_multi(&[&a, &b, &c], &out), out.numel() as u64);
        assert_eq!(kind.macs(&a, &out), out.numel() as u64);
        // Mismatched spatial dims rejected.
        let bad = Shape::nchw(1, 8, 27, 28);
        assert!(kind.infer_shape(&[&a, &bad]).is_err());
        assert!(kind.infer_shape(&[]).is_err());
    }

    #[test]
    fn single_input_arity_enforced() {
        let kind = LayerKind::Relu;
        let a = Shape::nchw(1, 2, 2, 2);
        assert!(kind.infer_shape(&[&a, &a]).is_err());
        assert!(kind.infer_shape(&[&a]).is_ok());
    }

    #[test]
    fn window_fit_checked() {
        let kind = LayerKind::Conv {
            oc: 8,
            k: 7,
            stride: 1,
            pad: 0,
            relu: false,
        };
        let tiny = Shape::nchw(1, 3, 5, 5);
        assert!(kind.infer_shape(&[&tiny]).is_err());
    }

    #[test]
    fn distributable_classification() {
        assert!(LayerKind::Conv {
            oc: 1,
            k: 1,
            stride: 1,
            pad: 0,
            relu: false
        }
        .is_distributable());
        assert!(LayerKind::Pool {
            func: PoolFunc::Avg,
            k: 2,
            stride: 2,
            pad: 0
        }
        .is_distributable());
        assert!(!LayerKind::Concat.is_distributable());
        assert!(!LayerKind::Softmax.is_distributable());
        assert!(!LayerKind::Relu.is_distributable());
        assert!(!LayerKind::Add { relu: false }.is_distributable());
        assert!(!LayerKind::Quantize {
            params: QuantParams::default()
        }
        .is_distributable());
    }

    #[test]
    fn add_and_quantize_shapes() {
        let a = Shape::nchw(1, 8, 4, 4);
        let add = LayerKind::Add { relu: true };
        assert_eq!(add.infer_shape(&[&a, &a]).unwrap(), a);
        assert!(add.infer_shape(&[&a]).is_err());
        assert_eq!(add.macs_multi(&[&a, &a], &a), a.numel() as u64);

        let q = LayerKind::Quantize {
            params: QuantParams::default(),
        };
        assert_eq!(q.infer_shape(&[&a]).unwrap(), a);
        assert!(q.infer_shape(&[&a, &a]).is_err());
        assert!(!q.has_weights());
        assert_eq!(q.op_name(), "quantize");
        assert_eq!(q.macs(&a, &a), a.numel() as u64);
    }
}
