//! Reference (single-host) graph execution and range calibration.
//!
//! [`run_layer`] is the single entry point that maps a [`LayerKind`] onto
//! the compute kernels; both this module's whole-graph [`forward`] and the
//! device executors in the runtime crates go through it, so the numerics
//! of every execution mechanism are identical by construction.

use utensor::{DType, QuantParams, Tensor, TensorError};

use crate::graph::{Graph, NodeId};
use crate::layer::{LayerKind, PoolFunc};
use crate::weights::{Calibration, Weights};

/// Executes one layer on already-prepared inputs and weights.
///
/// `filter`/`bias` must be present exactly when the layer has weights,
/// and `filter` must already be in the input's dtype. `out_params` is
/// required for QUInt8 execution of conv / FC / concat (the §4.2
/// pre-trained output range) and ignored otherwise.
pub fn run_layer(
    kind: &LayerKind,
    inputs: &[&Tensor],
    filter: Option<&Tensor>,
    bias: Option<&[f32]>,
    out_params: Option<QuantParams>,
) -> Result<Tensor, TensorError> {
    let single = || -> Result<&Tensor, TensorError> {
        inputs
            .first()
            .copied()
            .ok_or_else(|| TensorError::BadConcat(format!("{} got no inputs", kind.op_name())))
    };
    let need_filter = || -> Result<&Tensor, TensorError> {
        let f = filter.ok_or_else(|| {
            TensorError::BadConcat(format!("{} is missing its filter tensor", kind.op_name()))
        })?;
        // The filter must match the layer's declared geometry — weights
        // from a different model must not silently change the layer.
        let x = inputs
            .first()
            .copied()
            .ok_or_else(|| TensorError::BadConcat(format!("{} got no inputs", kind.op_name())))?;
        if let Some(expected) = kind.weight_shape(x.shape()) {
            // Channel-split parts carry a row-sliced filter: dim 0 may be
            // any value up to the declared output-channel count, but all
            // inner dimensions must match exactly.
            let fs = f.shape();
            let rank_ok = fs.rank() == expected.rank();
            let inner_ok = rank_ok
                && (1..expected.rank()).all(|d| fs.dim(d) == expected.dim(d))
                && fs.dim(0) <= expected.dim(0);
            if !inner_ok {
                return Err(TensorError::ShapeMismatch {
                    expected,
                    found: fs.clone(),
                });
            }
        }
        Ok(f)
    };
    match kind {
        LayerKind::Conv {
            stride, pad, relu, ..
        } => {
            let x = single()?;
            let quant = (x.dtype() == DType::QUInt8).then_some(out_params).flatten();
            ukernels::conv2d(
                x,
                need_filter()?,
                bias,
                &ukernels::Conv2dParams {
                    stride: *stride,
                    pad: *pad,
                    relu: *relu,
                },
                quant,
            )
        }
        LayerKind::DepthwiseConv {
            stride, pad, relu, ..
        } => {
            let x = single()?;
            let quant = (x.dtype() == DType::QUInt8).then_some(out_params).flatten();
            ukernels::depthwise_conv2d(
                x,
                need_filter()?,
                bias,
                &ukernels::Conv2dParams {
                    stride: *stride,
                    pad: *pad,
                    relu: *relu,
                },
                quant,
            )
        }
        LayerKind::FullyConnected { relu, .. } => {
            let x = single()?;
            let quant = (x.dtype() == DType::QUInt8).then_some(out_params).flatten();
            ukernels::fully_connected(x, need_filter()?, bias, *relu, quant)
        }
        LayerKind::Pool {
            func,
            k,
            stride,
            pad,
        } => ukernels::pool2d(
            single()?,
            &ukernels::PoolParams {
                kind: match func {
                    PoolFunc::Max => ukernels::PoolKind::Max,
                    PoolFunc::Avg => ukernels::PoolKind::Avg,
                },
                k: *k,
                stride: *stride,
                pad: *pad,
            },
        ),
        LayerKind::GlobalAvgPool => ukernels::global_avg_pool(single()?),
        LayerKind::Lrn { n, alpha, beta, k } => ukernels::lrn(
            single()?,
            &ukernels::LrnParams {
                n: *n,
                alpha: *alpha,
                beta: *beta,
                k: *k,
            },
        ),
        LayerKind::Relu => ukernels::relu(single()?),
        LayerKind::Concat => {
            if inputs.is_empty() {
                return Err(TensorError::BadConcat("concat got no inputs".into()));
            }
            if inputs[0].dtype() == DType::QUInt8 {
                // Branch outputs carry different ranges; requantize all of
                // them to the concat's own output range first (the TFLite
                // approach), then merge codes directly.
                let target = out_params.ok_or_else(|| {
                    TensorError::BadQuantParams("QUInt8 concat needs output params".into())
                })?;
                let requantized: Vec<Tensor> = inputs
                    .iter()
                    .map(|t| t.cast(DType::QUInt8, Some(target)))
                    .collect::<Result<_, _>>()?;
                let refs: Vec<&Tensor> = requantized.iter().collect();
                Tensor::concat_axis(1, &refs)
            } else {
                Tensor::concat_axis(1, inputs)
            }
        }
        LayerKind::Add { relu } => {
            if inputs.len() != 2 {
                return Err(TensorError::BadConcat(format!(
                    "add expects 2 inputs, got {}",
                    inputs.len()
                )));
            }
            let quant = (inputs[0].dtype() == DType::QUInt8)
                .then_some(out_params)
                .flatten();
            ukernels::add_fused(inputs[0], inputs[1], quant, *relu)
        }
        LayerKind::Quantize { params } => ukernels::fake_quant(single()?, *params),
        LayerKind::Softmax => {
            // Classifier head: always produces f32 probabilities.
            let x = single()?;
            let logits = x.to_f32_vec();
            let n = x.shape().dim(0).max(1);
            let per = logits.len() / n;
            let mut out = Vec::with_capacity(logits.len());
            for b in 0..n {
                out.extend(ukernels::softmax_f32(&logits[b * per..(b + 1) * per]));
            }
            Tensor::from_f32(x.shape().clone(), out)
        }
    }
}

/// Prepares a node's filter in the dtype the executing processor wants.
///
/// Mirrors §6: the f32 master is narrowed to F16 for GPU upload or
/// quantized with the calibrated weight range for the CPU.
pub fn filter_for_dtype(
    weights: &Weights,
    calib: &Calibration,
    id: NodeId,
    dtype: DType,
) -> Result<Option<Tensor>, TensorError> {
    match &weights.of(id).filter {
        None => Ok(None),
        Some(f) => Ok(Some(f.cast(dtype, calib.weight_params[id.0])?)),
    }
}

/// Runs the whole graph in `dtype`, returning every node's output.
///
/// - `F32` — the float reference.
/// - `F16` — all arithmetic in binary16.
/// - `QUInt8` — the 8-bit linear-quantized network, using the calibrated
///   ranges for every activation (requires `calib`).
pub fn forward(
    graph: &Graph,
    weights: &Weights,
    calib: &Calibration,
    input: &Tensor,
    dtype: DType,
) -> Result<Vec<Tensor>, TensorError> {
    let x = input.cast(dtype, Some(calib.input_params))?;
    let mut outputs: Vec<Tensor> = Vec::with_capacity(graph.len());
    for (i, node) in graph.nodes().iter().enumerate() {
        let id = NodeId(i);
        let inputs: Vec<&Tensor> = if node.inputs.is_empty() {
            vec![&x]
        } else {
            node.inputs.iter().map(|d| &outputs[d.0]).collect()
        };
        let filter = filter_for_dtype(weights, calib, id, dtype)?;
        let out = run_layer(
            &node.kind,
            &inputs,
            filter.as_ref(),
            weights.of(id).bias.as_deref(),
            Some(calib.act_params[i]),
        )?;
        outputs.push(out);
    }
    Ok(outputs)
}

/// Runs the f32 reference over `samples` and derives [`Calibration`] from
/// the observed per-node output ranges — the reproduction's analogue of
/// TensorFlow's fake-quantization range learning (§4.3).
pub fn calibrate(
    graph: &Graph,
    weights: &Weights,
    samples: &[Tensor],
) -> Result<Calibration, TensorError> {
    if samples.is_empty() {
        return Err(TensorError::BadConcat("calibration needs samples".into()));
    }
    let mut input_range = (f32::MAX, f32::MIN);
    let mut ranges = vec![(f32::MAX, f32::MIN); graph.len()];
    // A provisional calibration lets us run the f32 forward pass (f32
    // execution ignores the quantization ranges).
    let provisional = Calibration::synthetic(graph, weights);
    for sample in samples {
        for v in sample.to_f32_vec() {
            input_range.0 = input_range.0.min(v);
            input_range.1 = input_range.1.max(v);
        }
        let outs = forward(graph, weights, &provisional, sample, DType::F32)?;
        for (i, out) in outs.iter().enumerate() {
            for v in out.to_f32_vec() {
                ranges[i].0 = ranges[i].0.min(v);
                ranges[i].1 = ranges[i].1.max(v);
            }
        }
    }
    Calibration::from_ranges(graph, weights, input_range, &ranges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use utensor::Shape;

    fn branchy_graph() -> Graph {
        let mut g = Graph::new("branchy", Shape::nchw(1, 3, 8, 8));
        let stem = g.add_input_layer(
            "stem",
            LayerKind::Conv {
                oc: 4,
                k: 3,
                stride: 1,
                pad: 1,
                relu: true,
            },
        );
        let b0 = g.add(
            "b0",
            LayerKind::Conv {
                oc: 2,
                k: 1,
                stride: 1,
                pad: 0,
                relu: true,
            },
            stem,
        );
        let b1 = g.add(
            "b1",
            LayerKind::Conv {
                oc: 3,
                k: 3,
                stride: 1,
                pad: 1,
                relu: true,
            },
            stem,
        );
        let j = g.add_multi("join", LayerKind::Concat, &[b0, b1]);
        let gp = g.add("gap", LayerKind::GlobalAvgPool, j);
        let fc = g.add(
            "fc",
            LayerKind::FullyConnected {
                out: 6,
                relu: false,
            },
            gp,
        );
        g.add("softmax", LayerKind::Softmax, fc);
        g
    }

    fn sample(seed: usize) -> Tensor {
        let shape = Shape::nchw(1, 3, 8, 8);
        let data: Vec<f32> = (0..shape.numel())
            .map(|i| ((((i + seed) * 131) % 255) as f32) / 255.0)
            .collect();
        Tensor::from_f32(shape, data).unwrap()
    }

    #[test]
    fn f32_forward_produces_probabilities() {
        let g = branchy_graph();
        let w = Weights::random(&g, 3).unwrap();
        let calib = Calibration::synthetic(&g, &w);
        let outs = forward(&g, &w, &calib, &sample(0), DType::F32).unwrap();
        let probs = outs.last().unwrap().as_f32().unwrap().to_vec();
        assert_eq!(probs.len(), 6);
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn calibrated_quint8_tracks_f32() {
        let g = branchy_graph();
        let w = Weights::random(&g, 3).unwrap();
        let samples: Vec<Tensor> = (0..4).map(sample).collect();
        let calib = calibrate(&g, &w, &samples).unwrap();
        let f32_out = forward(&g, &w, &calib, &sample(9), DType::F32).unwrap();
        let q_out = forward(&g, &w, &calib, &sample(9), DType::QUInt8).unwrap();
        // Compare the logits (node before softmax).
        let fl = &f32_out[f32_out.len() - 2];
        let ql = &q_out[q_out.len() - 2];
        assert!(
            ql.max_abs_diff(fl) < 0.3,
            "quantized logits diverged: {}",
            ql.max_abs_diff(fl)
        );
    }

    #[test]
    fn f16_forward_tracks_f32_closely() {
        let g = branchy_graph();
        let w = Weights::random(&g, 3).unwrap();
        let calib = Calibration::synthetic(&g, &w);
        let f32_out = forward(&g, &w, &calib, &sample(5), DType::F32).unwrap();
        let f16_out = forward(&g, &w, &calib, &sample(5), DType::F16).unwrap();
        let fl = &f32_out[f32_out.len() - 2];
        let hl = &f16_out[f16_out.len() - 2];
        assert!(hl.max_abs_diff(fl) < 0.05);
    }

    #[test]
    fn quint8_concat_requantizes_mismatched_branches() {
        let a = Tensor::from_f32_quantized(
            Shape::nchw(1, 1, 1, 1),
            &[1.0],
            QuantParams::from_range(0.0, 2.0).unwrap(),
        )
        .unwrap();
        let b = Tensor::from_f32_quantized(
            Shape::nchw(1, 1, 1, 1),
            &[3.0],
            QuantParams::from_range(0.0, 4.0).unwrap(),
        )
        .unwrap();
        let target = QuantParams::from_range(0.0, 4.0).unwrap();
        let out = run_layer(&LayerKind::Concat, &[&a, &b], None, None, Some(target)).unwrap();
        let vals = out.to_f32_vec();
        assert!((vals[0] - 1.0).abs() < target.scale);
        assert!((vals[1] - 3.0).abs() < target.scale);
        // Without out_params it must fail.
        assert!(run_layer(&LayerKind::Concat, &[&a, &b], None, None, None).is_err());
    }

    #[test]
    fn missing_filter_is_an_error() {
        let x = sample(0);
        let kind = LayerKind::Conv {
            oc: 2,
            k: 1,
            stride: 1,
            pad: 0,
            relu: false,
        };
        assert!(run_layer(&kind, &[&x], None, None, None).is_err());
    }

    #[test]
    fn calibration_requires_samples() {
        let g = branchy_graph();
        let w = Weights::random(&g, 3).unwrap();
        assert!(calibrate(&g, &w, &[]).is_err());
    }

    #[test]
    fn forward_deterministic() {
        let g = branchy_graph();
        let w = Weights::random(&g, 3).unwrap();
        let calib = Calibration::synthetic(&g, &w);
        let a = forward(&g, &w, &calib, &sample(1), DType::QUInt8).unwrap();
        let b = forward(&g, &w, &calib, &sample(1), DType::QUInt8).unwrap();
        assert!(a.last().unwrap().bit_equal(b.last().unwrap()));
    }
}
